//! BAT construction: Morton sort → shallow tree → parallel treelets →
//! bitmaps (paper §III-C, Figure 1c).
//!
//! Aggregators call [`BatBuilder::build`] on the particles they received.
//! The build is parallel in the paper's two ways: the shallow radix tree is
//! Karras-parallel, and the per-leaf treelet builds are independent and run
//! under rayon (the paper uses TBB).

use crate::attr::AttributeDesc;
use crate::bitmap::Bitmap32;
use crate::particles::ParticleSet;
use crate::radix::NodeRef;
use crate::shallow::ShallowTree;
use crate::treelet::{self, Treelet, TreeletConfig};
use bat_geom::{morton, Aabb};
use rayon::prelude::*;

/// Build parameters for a BAT (paper defaults: 12-bit subprefix, 8 LOD
/// particles per inner node, up to 128 particles per leaf; §III-C1, §VI-B).
#[derive(Debug, Clone, Copy)]
pub struct BatConfig {
    /// Morton subprefix length for the shallow tree, in bits. `0` selects
    /// automatically from the particle count (capped at the paper's 12):
    /// enough cells for ~8 leaves' worth of particles per treelet, so small
    /// aggregator populations don't shatter into page-aligned
    /// micro-treelets. Realistic populations (≥ ~4M particles) resolve to
    /// the paper's 12 bits.
    pub subprefix_bits: u32,
    /// Treelet parameters.
    pub treelet: TreeletConfig,
}

impl Default for BatConfig {
    fn default() -> BatConfig {
        BatConfig {
            subprefix_bits: 12,
            treelet: TreeletConfig::default(),
        }
    }
}

impl BatConfig {
    /// Paper parameters but with automatic subprefix selection.
    pub fn auto() -> BatConfig {
        BatConfig {
            subprefix_bits: 0,
            ..BatConfig::default()
        }
    }

    /// Resolve an automatic subprefix length for `n` particles.
    pub fn resolve_subprefix(&self, n: usize) -> u32 {
        if self.subprefix_bits != 0 {
            return self.subprefix_bits;
        }
        let per_treelet = 8 * self.treelet.max_leaf.max(1) as u64;
        let cells = (n as u64 / per_treelet).max(1);
        let bits = 64 - (cells - 1).leading_zeros().min(63); // ceil(log2(cells))
        bits.clamp(3, 12)
    }
}

/// A fully built, in-memory Binned Attribute Tree.
///
/// Compact it with [`Bat::to_bytes`] for writing to disk or in-transit use;
/// the compacted form is what [`crate::BatFile`] queries.
#[derive(Debug, Clone)]
pub struct Bat {
    /// Build parameters (with any auto values resolved).
    pub config: BatConfig,
    /// The bounds particles were Morton-quantized against (aggregator-local).
    pub domain: Aabb,
    /// Particles in final build order (treelet blocks, LOD-first spans).
    pub particles: ParticleSet,
    /// Aggregator-local `(min, max)` per attribute — the bitmap bin ranges.
    pub attr_ranges: Vec<(f64, f64)>,
    /// The shallow radix tree over merged Morton subprefixes.
    pub shallow: ShallowTree,
    /// One treelet per shallow leaf.
    pub treelets: Vec<Treelet>,
    /// Deepest treelet depth (drives the quality → depth mapping).
    pub max_treelet_depth: u32,
}

impl Bat {
    /// Number of particles stored.
    pub fn num_particles(&self) -> usize {
        self.particles.len()
    }

    /// The attribute schema.
    pub fn descs(&self) -> &[AttributeDesc] {
        self.particles.descs()
    }

    /// Root bitmap of attribute `a`: the union over all treelet roots. This
    /// is what each aggregator reports to rank 0 for the top-level metadata
    /// (paper §III-D).
    pub fn root_bitmap(&self, a: usize) -> Bitmap32 {
        self.treelets
            .iter()
            .fold(Bitmap32::EMPTY, |acc, t| acc.or(t.bitmaps[0][a]))
    }

    /// Compact into the on-disk byte form (paper §III-C3). The result is
    /// what the aggregator writes to its file, and what
    /// [`crate::BatFile::from_bytes`] queries in transit.
    pub fn to_bytes(&self) -> Vec<u8> {
        let bytes = bat_obs::time("bat.compact_ns", || crate::format::write_bat(self));
        bat_obs::counter_add("bat.compact_bytes", bytes.len() as u64);
        bytes
    }

    /// A precomputed streaming writer for this BAT. Use when the compacted
    /// form goes straight to a file: [`crate::format::BatWriter::write_to`]
    /// emits the same bytes as [`Bat::to_bytes`] without ever materializing
    /// the treelet payload in memory.
    pub fn writer(&self) -> crate::format::BatWriter<'_> {
        crate::format::BatWriter::new(self)
    }

    /// Like [`Bat::writer`] but with an explicit treelet codec, ignoring
    /// `BAT_TREELET_CODEC`. Use [`crate::codec::Codec::V1`] to pin the
    /// uncompressed format regardless of environment.
    pub fn writer_with(&self, codec: crate::codec::Codec) -> crate::format::BatWriter<'_> {
        crate::format::BatWriter::with_codec(self, codec)
    }

    /// Stream the compacted form to `w` (byte-identical to
    /// [`Bat::to_bytes`]). Wrap file sinks in a `BufWriter`.
    pub fn write_to<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<u64> {
        let writer = self.writer();
        bat_obs::time("bat.compact_ns", || writer.write_to(w))?;
        bat_obs::counter_add("bat.compact_bytes", writer.file_size() as u64);
        Ok(writer.file_size() as u64)
    }

    /// Compact and open for querying in one step — the in-transit analysis
    /// path (§III-C: the tree "can be used for in transit visualization and
    /// analysis on the aggregators before or instead of being written").
    pub fn to_file(&self) -> crate::BatFile {
        crate::BatFile::from_bytes(self.to_bytes()).expect("a just-built BAT is always valid")
    }

    /// Per-inner-shallow-node bitmaps for attribute `a` (union of treelet
    /// roots in each node's leaf range), bottom-up. Index = shallow node id.
    pub fn shallow_bitmaps(&self, a: usize) -> Vec<Bitmap32> {
        let nodes = &self.shallow.nodes;
        let mut out = vec![Bitmap32::EMPTY; nodes.len()];
        // Children have strictly longer prefixes than parents, so processing
        // nodes in descending prefix-length order is bottom-up. Shallow node
        // counts are small (≤ subprefix leaves), so the sort is cheap.
        let mut order: Vec<usize> = (0..nodes.len()).collect();
        order.sort_by(|&x, &y| {
            let px = nodes[x].last_leaf - nodes[x].first_leaf;
            let py = nodes[y].last_leaf - nodes[y].first_leaf;
            px.cmp(&py) // smaller range = deeper; process first
        });
        for ni in order {
            let n = &nodes[ni];
            let mut bm = Bitmap32::EMPTY;
            for c in [n.left, n.right] {
                bm = bm.or(match c {
                    NodeRef::Leaf(l) => self.treelets[l as usize].bitmaps[0][a],
                    NodeRef::Inner(i) => out[i as usize],
                });
            }
            out[ni] = bm;
        }
        out
    }
}

/// Time a build phase through `bat_obs` and also record its effective
/// parallelism — pool busy-time over wall-time — as a `*_speedup` gauge
/// (e.g. `bat.morton_sort_ns` → `bat.morton_sort_speedup`). The gauge
/// reads 0 when the engine was bypassed entirely (a 1-thread pool runs
/// every construct inline on the caller). The engine excludes nested
/// `parallel_for` wall time from the enclosing task's busy time, so
/// phases with nested parallelism (treelet build) are not double-counted;
/// the counter is still process-global, so the gauge assumes one build in
/// flight at a time (true for the write pipeline).
fn timed_phase<T>(timer: &'static str, f: impl FnOnce() -> T) -> T {
    let busy0 = rayon::pool_stats().busy_ns;
    let t0 = std::time::Instant::now();
    let out = bat_obs::time(timer, f);
    let wall = t0.elapsed().as_nanos() as u64;
    let busy = rayon::pool_stats().busy_ns - busy0;
    if wall > 0 {
        let gauge = format!("{}_speedup", timer.trim_end_matches("_ns"));
        bat_obs::gauge_set(&gauge, busy as f64 / wall as f64);
    }
    out
}

/// Builds [`Bat`]s from received particle sets.
#[derive(Debug, Clone, Default)]
pub struct BatBuilder {
    config: BatConfig,
}

impl BatBuilder {
    /// A builder with the given parameters.
    pub fn new(config: BatConfig) -> BatBuilder {
        BatBuilder { config }
    }

    /// Build the BAT over `set`, quantizing Morton codes against `domain`
    /// (normally the union of the leaf's rank bounds; must contain every
    /// particle — out-of-bounds positions are clamped into the edge cells).
    pub fn build(&self, set: ParticleSet, domain: Aabb) -> Bat {
        debug_assert!(set.validate().is_ok());
        let n = set.len();
        let mut config = self.config;
        config.subprefix_bits = config.resolve_subprefix(n);
        if n == 0 {
            return Bat {
                config,
                domain,
                attr_ranges: vec![(0.0, 0.0); set.num_attrs()],
                shallow: ShallowTree::build(&[], config.subprefix_bits, &domain),
                treelets: Vec::new(),
                max_treelet_depth: 0,
                particles: set,
            };
        }

        let pool_before = rayon::pool_stats();

        // 1. Morton codes + parallel radix sort (the specialized LSD
        //    kernel in [`crate::morton_sort`]).
        let (sorted, sorted_codes) = timed_phase("bat.morton_sort_ns", || {
            let codes: Vec<u64> = set
                .positions
                .par_iter()
                .map(|&p| morton::encode_point(p, &domain))
                .collect();
            let perm = crate::morton_sort::sorted_perm(&codes);
            let sorted_codes: Vec<u64> = perm.par_iter().map(|&i| codes[i as usize]).collect();
            (set.permute(&perm), sorted_codes)
        });

        // 2. Shallow tree over merged subprefixes.
        let shallow = timed_phase("bat.shallow_tree_ns", || {
            ShallowTree::build(&sorted_codes, config.subprefix_bits, &domain)
        });

        // 3. Independent treelet builds per shallow leaf (parallel).
        let structures: Vec<treelet::TreeletStructure> =
            timed_phase("bat.treelet_build_ns", || {
                shallow
                    .leaf_ranges
                    .par_iter()
                    .map(|&(s, e)| {
                        let span = &sorted.positions[s as usize..e as usize];
                        treelet::build_structure(span, &config.treelet, s as u64)
                    })
                    .collect()
            });

        // 4. Compose the treelet-local orders into one global permutation
        //    and reorder the particle arrays once.
        let particles = timed_phase("bat.permute_ns", || {
            let mut final_perm: Vec<u32> = Vec::with_capacity(n);
            for (&(s, _), st) in shallow.leaf_ranges.iter().zip(&structures) {
                final_perm.extend(st.order.iter().map(|&o| s + o));
            }
            sorted.permute(&final_perm)
        });

        // 5. Aggregator-local attribute ranges, then per-node bitmaps.
        let _span = bat_obs::span("bat.bitmap_bin_ns");
        let attr_ranges: Vec<(f64, f64)> = (0..particles.num_attrs())
            .map(|a| particles.attr(a).value_range())
            .collect();

        let max_treelet_depth = structures.iter().map(|s| s.max_depth).max().unwrap_or(0);
        let treelets: Vec<Treelet> = shallow
            .leaf_ranges
            .par_iter()
            .zip(structures)
            .map(|(&(s, e), st)| {
                let bitmaps =
                    treelet::compute_bitmaps(&st.nodes, &particles, s as usize, &attr_ranges);
                Treelet {
                    nodes: st.nodes,
                    bitmaps,
                    first_particle: s as u64,
                    num_particles: e - s,
                    max_depth: st.max_depth,
                }
            })
            .collect();
        drop(_span);
        bat_obs::counter_add("bat.treelets", treelets.len() as u64);
        bat_obs::counter_add("bat.particles", n as u64);

        // Engine counters for this build, so traces show how parallel the
        // build actually was (ISSUE 3: the shim used to fake all of this).
        let pool_after = rayon::pool_stats();
        bat_obs::gauge_set("pool.threads", pool_after.threads as f64);
        bat_obs::counter_add(
            "pool.tasks_executed",
            pool_after.tasks_executed - pool_before.tasks_executed,
        );
        bat_obs::counter_add(
            "pool.tasks_stolen",
            pool_after.tasks_stolen - pool_before.tasks_stolen,
        );

        Bat {
            config,
            domain,
            particles,
            attr_ranges,
            shallow,
            treelets,
            max_treelet_depth,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttributeDesc;
    use bat_geom::rng::Xoshiro256;
    use bat_geom::Vec3;

    pub(crate) fn random_set(n: usize, seed: u64) -> (ParticleSet, Aabb) {
        let mut rng = Xoshiro256::new(seed);
        let mut set =
            ParticleSet::new(vec![AttributeDesc::f64("mass"), AttributeDesc::f32("temp")]);
        for _ in 0..n {
            let p = Vec3::new(rng.next_f32(), rng.next_f32(), rng.next_f32());
            set.push(p, &[p.x as f64 * 10.0, p.y as f64 * 100.0]);
        }
        (set, Aabb::unit())
    }

    #[test]
    fn empty_build() {
        let (set, domain) = random_set(0, 1);
        let bat = BatBuilder::new(BatConfig::default()).build(set, domain);
        assert_eq!(bat.num_particles(), 0);
        assert!(bat.treelets.is_empty());
    }

    #[test]
    fn build_preserves_particles() {
        let (set, domain) = random_set(5000, 2);
        let before: f64 = (0..set.len()).map(|i| set.value(0, i)).sum();
        let bat = BatBuilder::new(BatConfig::default()).build(set, domain);
        assert_eq!(bat.num_particles(), 5000);
        let after: f64 = (0..5000).map(|i| bat.particles.value(0, i)).sum();
        assert!(
            (before - after).abs() < 1e-6,
            "no particle lost or duplicated"
        );
        bat.particles.validate().unwrap();
    }

    #[test]
    fn treelets_tile_the_particle_array() {
        let (set, domain) = random_set(20_000, 3);
        let bat = BatBuilder::new(BatConfig::default()).build(set, domain);
        let mut expect = 0u64;
        for t in &bat.treelets {
            assert_eq!(t.first_particle, expect);
            assert!(t.num_particles > 0);
            expect += t.num_particles as u64;
        }
        assert_eq!(expect, 20_000);
        assert_eq!(bat.treelets.len(), bat.shallow.num_leaves());
    }

    #[test]
    fn node_particles_inside_node_bounds() {
        let (set, domain) = random_set(10_000, 4);
        let bat = BatBuilder::new(BatConfig::default()).build(set, domain);
        for t in &bat.treelets {
            for node in &t.nodes {
                let begin = t.first_particle as usize + node.start as usize;
                for i in begin..begin + node.count as usize {
                    assert!(node.bounds.contains_point(bat.particles.positions[i]));
                }
            }
        }
    }

    #[test]
    fn attr_ranges_cover_values() {
        let (set, domain) = random_set(3000, 5);
        let bat = BatBuilder::new(BatConfig::default()).build(set, domain);
        let (lo, hi) = bat.attr_ranges[0];
        for i in 0..bat.num_particles() {
            let v = bat.particles.value(0, i);
            assert!(v >= lo && v <= hi);
        }
    }

    #[test]
    fn root_bitmap_covers_every_value() {
        let (set, domain) = random_set(2000, 6);
        let bat = BatBuilder::new(BatConfig::default()).build(set, domain);
        let root = bat.root_bitmap(0);
        let (lo, hi) = bat.attr_ranges[0];
        for i in 0..bat.num_particles() {
            let single = Bitmap32::from_values([bat.particles.value(0, i)], lo, hi);
            assert!(root.overlaps(single));
        }
    }

    #[test]
    fn shallow_bitmaps_nest() {
        let (set, domain) = random_set(30_000, 7);
        let bat = BatBuilder::new(BatConfig::default()).build(set, domain);
        if bat.shallow.nodes.is_empty() {
            return;
        }
        let sb = bat.shallow_bitmaps(0);
        for (ni, n) in bat.shallow.nodes.iter().enumerate() {
            for c in [n.left, n.right] {
                let cb = match c {
                    NodeRef::Leaf(l) => bat.treelets[l as usize].bitmaps[0][0],
                    NodeRef::Inner(i) => sb[i as usize],
                };
                assert_eq!(sb[ni].or(cb), sb[ni], "parent covers child");
            }
        }
    }

    #[test]
    fn deterministic_build() {
        let (set, domain) = random_set(4000, 8);
        let b1 = BatBuilder::new(BatConfig::default()).build(set.clone(), domain);
        let b2 = BatBuilder::new(BatConfig::default()).build(set, domain);
        assert_eq!(b1.particles.positions, b2.particles.positions);
        assert_eq!(b1.treelets.len(), b2.treelets.len());
    }

    #[test]
    fn clustered_distribution_fewer_treelets() {
        // Tightly clustered particles share subprefixes → few treelets.
        let mut rng = Xoshiro256::new(9);
        let mut set = ParticleSet::new(vec![AttributeDesc::f64("m")]);
        for _ in 0..5000 {
            set.push(
                Vec3::new(
                    0.5 + rng.next_f32() * 1e-4,
                    0.5 + rng.next_f32() * 1e-4,
                    0.5 + rng.next_f32() * 1e-4,
                ),
                &[1.0],
            );
        }
        let bat = BatBuilder::new(BatConfig::default()).build(set, Aabb::unit());
        assert!(bat.treelets.len() <= 8, "got {}", bat.treelets.len());
    }
}

#[cfg(test)]
mod auto_subprefix_tests {
    use super::*;
    use crate::build::tests::random_set;

    #[test]
    fn resolve_rules() {
        let auto = BatConfig::auto();
        // Tiny populations use coarse prefixes; huge ones cap at 12.
        assert_eq!(auto.resolve_subprefix(0), 3);
        assert_eq!(auto.resolve_subprefix(1000), 3);
        assert!(auto.resolve_subprefix(100_000) < 12);
        assert_eq!(auto.resolve_subprefix(8_000_000), 12);
        // Explicit settings pass through untouched.
        let fixed = BatConfig::default();
        assert_eq!(fixed.resolve_subprefix(10), 12);
    }

    #[test]
    fn auto_build_produces_fewer_treelets_on_small_data() {
        let (set, domain) = random_set(20_000, 44);
        let fixed = BatBuilder::new(BatConfig::default()).build(set.clone(), domain);
        let auto = BatBuilder::new(BatConfig::auto()).build(set, domain);
        assert!(auto.treelets.len() < fixed.treelets.len());
        assert_eq!(auto.num_particles(), fixed.num_particles());
        // And the resolved value is recorded in the config (and the file).
        assert!(auto.config.subprefix_bits > 0);
        let head = crate::format::read_head(&auto.to_bytes()).unwrap();
        assert_eq!(head.subprefix_bits, auto.config.subprefix_bits);
    }
}
