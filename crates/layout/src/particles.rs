//! SoA particle container: positions plus typed attribute arrays.

use crate::attr::{AttributeArray, AttributeDesc};
use crate::columns::ColumnarParticles;
use bat_geom::{Aabb, Vec3};
use bat_wire::{Decoder, Encoder, WireError, WireResult};
use rayon::prelude::*;
use std::sync::Arc;

/// A set of particles in structure-of-arrays form.
///
/// This is the unit of data a rank hands to the write pipeline and the unit
/// an aggregator assembles from its leaf's ranks. Invariant: every attribute
/// array has exactly `positions.len()` elements (checked by [`ParticleSet::validate`]
/// and maintained by the mutators).
///
/// The schema is reference-counted: cloning, slicing, and permuting a set
/// shares one `Arc<[AttributeDesc]>` instead of reallocating the descriptor
/// table per copy (the write pipeline used to clone it once per rank).
#[derive(Debug, Clone, PartialEq)]
pub struct ParticleSet {
    /// Particle positions (3 × f32 each, the paper's data model).
    pub positions: Vec<Vec3>,
    descs: Arc<[AttributeDesc]>,
    arrays: Vec<AttributeArray>,
}

impl ParticleSet {
    /// Empty set with the given attribute schema.
    pub fn new(descs: impl Into<Arc<[AttributeDesc]>>) -> ParticleSet {
        let descs = descs.into();
        let arrays = descs.iter().map(|d| AttributeArray::new(d.dtype)).collect();
        ParticleSet {
            positions: Vec::new(),
            descs,
            arrays,
        }
    }

    /// Empty set with reserved capacity.
    pub fn with_capacity(descs: impl Into<Arc<[AttributeDesc]>>, cap: usize) -> ParticleSet {
        let descs = descs.into();
        let arrays = descs
            .iter()
            .map(|d| AttributeArray::with_capacity(d.dtype, cap))
            .collect();
        ParticleSet {
            positions: Vec::with_capacity(cap),
            descs,
            arrays,
        }
    }

    /// Number of particles.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True when the set holds no particles.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The attribute schema.
    pub fn descs(&self) -> &[AttributeDesc] {
        &self.descs
    }

    /// Shared handle to the schema (refcount bump, no clone of the table).
    pub fn descs_arc(&self) -> Arc<[AttributeDesc]> {
        self.descs.clone()
    }

    /// Number of attributes.
    pub fn num_attrs(&self) -> usize {
        self.descs.len()
    }

    /// Attribute array `a`.
    pub fn attr(&self, a: usize) -> &AttributeArray {
        &self.arrays[a]
    }

    /// Index of the attribute named `name`.
    pub fn attr_index(&self, name: &str) -> Option<usize> {
        self.descs.iter().position(|d| d.name == name)
    }

    /// Append one particle with its attribute values (one per attribute, in
    /// schema order; `f32` attributes are narrowed).
    pub fn push(&mut self, pos: Vec3, values: &[f64]) {
        debug_assert_eq!(values.len(), self.arrays.len(), "one value per attribute");
        self.positions.push(pos);
        for (arr, &v) in self.arrays.iter_mut().zip(values) {
            arr.push(v);
        }
    }

    /// Append every particle of `other`. Panics if the schemas differ.
    pub fn append(&mut self, other: &ParticleSet) {
        assert_eq!(self.descs, other.descs, "schema mismatch in append");
        self.positions.extend_from_slice(&other.positions);
        for (a, b) in self.arrays.iter_mut().zip(&other.arrays) {
            a.extend_from(b);
        }
    }

    /// Bulk-append every particle of a columnar view (the receiver-side
    /// gather of the shuffle). Unlike [`ParticleSet::append`] this takes
    /// untrusted wire data, so a schema mismatch is an error, not a panic.
    /// The bytes copied here are charged to `shuffle.bytes_copied`.
    pub fn extend_from_columns(&mut self, cols: &ColumnarParticles) -> WireResult<()> {
        if self.descs() != cols.descs() {
            return Err(WireError::BadTag {
                what: "columnar frame schema",
                tag: cols.descs().len() as u64,
            });
        }
        crate::columns::extend_positions_raw(cols.positions_raw(), &mut self.positions)?;
        for (a, arr) in self.arrays.iter_mut().enumerate() {
            arr.extend_from_raw(cols.attr_raw(a), "columnar attribute column")?;
        }
        bat_obs::counter_add("shuffle.bytes_copied", cols.raw_bytes() as u64);
        Ok(())
    }

    /// Bytes per particle under this schema (3 × f32 position + attributes).
    pub fn bytes_per_particle(&self) -> usize {
        12 + self.descs.iter().map(|d| d.dtype.size()).sum::<usize>()
    }

    /// Total raw payload bytes for this set.
    pub fn raw_bytes(&self) -> usize {
        self.len() * self.bytes_per_particle()
    }

    /// Tight bounds over the particle positions (empty box when no particles).
    pub fn bounds(&self) -> Aabb {
        Aabb::from_points(&self.positions)
    }

    /// Attribute value of particle `i` for attribute `a`, widened to f64.
    #[inline]
    pub fn value(&self, a: usize, i: usize) -> f64 {
        self.arrays[a].get(i)
    }

    /// Check the SoA invariant; used by tests and debug assertions.
    pub fn validate(&self) -> Result<(), String> {
        for (d, a) in self.descs.iter().zip(&self.arrays) {
            if a.len() != self.positions.len() {
                return Err(format!(
                    "attribute '{}' has {} elements for {} particles",
                    d.name,
                    a.len(),
                    self.positions.len()
                ));
            }
            if a.dtype() != d.dtype {
                return Err(format!("attribute '{}' array type mismatch", d.name));
            }
        }
        Ok(())
    }

    /// Reordered copy: output particle `i` is input particle `perm[i]`.
    /// The gathers run on the pool — each output slot depends on exactly
    /// one input slot, so the parallel copy is trivially deterministic.
    pub fn permute(&self, perm: &[u32]) -> ParticleSet {
        debug_assert_eq!(perm.len(), self.len());
        ParticleSet {
            positions: perm
                .par_iter()
                .map(|&i| self.positions[i as usize])
                .collect(),
            descs: self.descs.clone(),
            arrays: self.arrays.iter().map(|a| a.permute(perm)).collect(),
        }
    }

    /// Copy of the contiguous subrange `[start, start+len)`.
    pub fn slice(&self, start: usize, len: usize) -> ParticleSet {
        ParticleSet {
            positions: self.positions[start..start + len].to_vec(),
            descs: self.descs.clone(),
            arrays: self.arrays.iter().map(|a| a.slice(start, len)).collect(),
        }
    }

    /// Serialize schema + data (the transfer payload of the write pipeline).
    pub fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.descs.len() as u64);
        for d in self.descs.iter() {
            d.encode(enc);
        }
        enc.put_u64(self.positions.len() as u64);
        for p in &self.positions {
            enc.put_f32(p.x);
            enc.put_f32(p.y);
            enc.put_f32(p.z);
        }
        for a in &self.arrays {
            a.encode(enc);
        }
    }

    /// Deserialize a set encoded by [`ParticleSet::encode`].
    pub fn decode(dec: &mut Decoder) -> WireResult<ParticleSet> {
        let na = dec.get_usize("attr count")?;
        let mut descs = Vec::with_capacity(na);
        for _ in 0..na {
            descs.push(AttributeDesc::decode(dec)?);
        }
        let n = dec.get_usize("particle count")?;
        // Guard against hostile counts before allocating.
        if (n as u128) * 12 > dec.remaining() as u128 {
            return Err(WireError::BadLength {
                what: "particle positions",
                len: n as u64,
                remaining: dec.remaining(),
            });
        }
        let mut positions = Vec::with_capacity(n);
        for _ in 0..n {
            let x = dec.get_f32("pos.x")?;
            let y = dec.get_f32("pos.y")?;
            let z = dec.get_f32("pos.z")?;
            positions.push(Vec3::new(x, y, z));
        }
        let mut arrays = Vec::with_capacity(na);
        for d in &descs {
            let a = AttributeArray::decode(dec, d.dtype)?;
            if a.len() != n {
                return Err(WireError::BadLength {
                    what: "attribute array length",
                    len: a.len() as u64,
                    remaining: dec.remaining(),
                });
            }
            arrays.push(a);
        }
        Ok(ParticleSet {
            positions,
            descs: descs.into(),
            arrays,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttributeType;

    fn sample() -> ParticleSet {
        let mut s = ParticleSet::new(vec![AttributeDesc::f64("mass"), AttributeDesc::f32("temp")]);
        s.push(Vec3::new(0.0, 1.0, 2.0), &[10.0, 100.0]);
        s.push(Vec3::new(3.0, 4.0, 5.0), &[20.0, 200.0]);
        s.push(Vec3::new(-1.0, 0.0, 1.0), &[30.0, 300.0]);
        s
    }

    #[test]
    fn push_and_access() {
        let s = sample();
        assert_eq!(s.len(), 3);
        assert_eq!(s.value(0, 1), 20.0);
        assert_eq!(s.value(1, 2), 300.0);
        assert_eq!(s.attr_index("temp"), Some(1));
        assert_eq!(s.attr_index("nope"), None);
        s.validate().unwrap();
    }

    #[test]
    fn byte_accounting() {
        let s = sample();
        // 12 (pos) + 8 (f64) + 4 (f32) per particle.
        assert_eq!(s.bytes_per_particle(), 24);
        assert_eq!(s.raw_bytes(), 72);
    }

    #[test]
    fn bounds() {
        let b = sample().bounds();
        assert_eq!(b.min, Vec3::new(-1.0, 0.0, 1.0));
        assert_eq!(b.max, Vec3::new(3.0, 4.0, 5.0));
    }

    #[test]
    fn append_merges() {
        let mut a = sample();
        let b = sample();
        a.append(&b);
        assert_eq!(a.len(), 6);
        assert_eq!(a.value(0, 4), 20.0);
        a.validate().unwrap();
    }

    #[test]
    #[should_panic]
    fn append_schema_mismatch_panics() {
        let mut a = sample();
        let b = ParticleSet::new(vec![AttributeDesc::f64("other")]);
        a.append(&b);
    }

    #[test]
    fn permute_keeps_rows_together() {
        let s = sample();
        let p = s.permute(&[2, 0, 1]);
        assert_eq!(p.positions[0], Vec3::new(-1.0, 0.0, 1.0));
        assert_eq!(p.value(0, 0), 30.0);
        assert_eq!(p.value(1, 0), 300.0);
        p.validate().unwrap();
    }

    #[test]
    fn slice_subrange() {
        let s = sample();
        let t = s.slice(1, 2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.value(0, 0), 20.0);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let s = sample();
        let mut e = Encoder::new();
        s.encode(&mut e);
        let buf = e.finish();
        let out = ParticleSet::decode(&mut Decoder::new(&buf)).unwrap();
        assert_eq!(out, s);
    }

    #[test]
    fn decode_rejects_truncation() {
        let s = sample();
        let mut e = Encoder::new();
        s.encode(&mut e);
        let buf = e.finish();
        for cut in [1, 10, buf.len() - 1] {
            assert!(ParticleSet::decode(&mut Decoder::new(&buf[..cut])).is_err());
        }
    }

    #[test]
    fn empty_set_roundtrip() {
        let s = ParticleSet::new(vec![AttributeDesc::new("x", AttributeType::F32)]);
        let mut e = Encoder::new();
        s.encode(&mut e);
        let buf = e.finish();
        let out = ParticleSet::decode(&mut Decoder::new(&buf)).unwrap();
        assert!(out.is_empty());
        assert!(out.bounds().is_empty());
    }
}
