//! The per-section CRC32C file footer the commit protocol appends to every
//! leaf file (DESIGN.md §11).
//!
//! The footer is a *trailing* section: it lives after the last treelet, in
//! bytes the head's section table never indexes, so a version-1 reader
//! opens a footered file unchanged and the golden byte hashes of the
//! payload stay valid. Its layout (all little-endian):
//!
//! ```text
//! u32 magic "BATC"        u32 version (=1)
//! u64 payload_len         u32 num_sections
//! num_sections × { u64 end_offset, u32 crc32c }
//! u32 footer_crc          (crc32c of every preceding footer byte)
//! u32 footer_len          (whole footer, including these 8 tail bytes)
//! u32 magic "BATC"        (tail sentinel: footers are found from EOF)
//! ```
//!
//! Sections partition the payload: section `i` spans
//! `[end[i-1], end[i])` with `end[-1] = 0` and `end[last] = payload_len`.
//! For a BAT file the boundaries are the head and each treelet block, so a
//! verifier can report *which treelet* a flipped bit landed in.

use crate::format::MAGIC;
use bat_wire::{crc32c, Crc32c, Decoder, Encoder, WireError, WireResult};
use std::io::{self, Write};

/// Footer magic: "BATC" (BAT Checksums).
pub const FOOTER_MAGIC: u32 = 0x4241_5443;
/// Footer format version.
pub const FOOTER_VERSION: u32 = 1;
/// Fixed tail: footer_crc + footer_len + magic.
const TAIL_BYTES: usize = 12;
/// Fixed head of the footer: magic + version + payload_len + num_sections.
const HEAD_BYTES: usize = 20;
/// Bytes per section entry.
const SECTION_BYTES: usize = 12;

/// One checksummed span of the payload, ending at `end` (exclusive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionCrc {
    /// Exclusive end offset of this section in the payload.
    pub end: u64,
    /// CRC32C of the section's bytes.
    pub crc: u32,
}

/// A decoded (or freshly computed) file footer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileFooter {
    /// Length of the checksummed payload (the file minus the footer).
    pub payload_len: u64,
    /// Per-section checksums; ends are strictly increasing and the last
    /// equals `payload_len`.
    pub sections: Vec<SectionCrc>,
}

/// One section's verification verdict from [`FileFooter::verify`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionMismatch {
    /// Index of the damaged section.
    pub section: usize,
    /// Byte range `[start, end)` of the section in the file.
    pub start: u64,
    /// Exclusive end.
    pub end: u64,
}

impl FileFooter {
    /// Total encoded size of a footer with `n` sections.
    pub fn encoded_len(n: usize) -> usize {
        HEAD_BYTES + n * SECTION_BYTES + TAIL_BYTES
    }

    /// Serialize the footer (self-checksummed, tail-discoverable).
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_u32(FOOTER_MAGIC);
        enc.put_u32(FOOTER_VERSION);
        enc.put_u64(self.payload_len);
        enc.put_u32(self.sections.len() as u32);
        for s in &self.sections {
            enc.put_u64(s.end);
            enc.put_u32(s.crc);
        }
        let mut bytes = enc.finish();
        let body_crc = crc32c(&bytes);
        let total = bytes.len() + TAIL_BYTES;
        bytes.extend_from_slice(&body_crc.to_le_bytes());
        bytes.extend_from_slice(&(total as u32).to_le_bytes());
        bytes.extend_from_slice(&FOOTER_MAGIC.to_le_bytes());
        debug_assert_eq!(bytes.len(), Self::encoded_len(self.sections.len()));
        bytes
    }

    /// Look for a footer at the tail of `file`.
    ///
    /// Returns `Ok(None)` when the file simply has no footer (legacy files
    /// written before the commit protocol — the tail sentinel is absent),
    /// and `Err` when a footer is present but damaged or inconsistent.
    pub fn detect(file: &[u8]) -> WireResult<Option<FileFooter>> {
        if file.len() < TAIL_BYTES {
            return Ok(None);
        }
        let tail = &file[file.len() - 8..];
        let magic = u32::from_le_bytes(tail[4..8].try_into().expect("len 4"));
        if magic != FOOTER_MAGIC {
            return Ok(None);
        }
        let footer_len = u32::from_le_bytes(tail[..4].try_into().expect("len 4")) as usize;
        if footer_len < HEAD_BYTES + TAIL_BYTES || footer_len > file.len() {
            return Err(WireError::BadLength {
                what: "file footer length",
                len: footer_len as u64,
                remaining: file.len(),
            });
        }
        let footer = &file[file.len() - footer_len..];
        let body = &footer[..footer.len() - TAIL_BYTES];
        let stored_crc = u32::from_le_bytes(
            footer[footer.len() - 12..footer.len() - 8]
                .try_into()
                .unwrap(),
        );
        if crc32c(body) != stored_crc {
            return Err(WireError::BadMagic {
                expected: stored_crc,
                found: crc32c(body),
            });
        }
        let mut dec = Decoder::new(body);
        let magic = dec.get_u32("footer magic")?;
        if magic != FOOTER_MAGIC {
            return Err(WireError::BadMagic {
                expected: FOOTER_MAGIC,
                found: magic,
            });
        }
        let version = dec.get_u32("footer version")?;
        if version != FOOTER_VERSION {
            return Err(WireError::BadTag {
                what: "footer version",
                tag: version as u64,
            });
        }
        let payload_len = dec.get_u64("footer payload len")?;
        let n = dec.get_u32("footer section count")? as usize;
        if body.len() != HEAD_BYTES + n * SECTION_BYTES {
            return Err(WireError::BadLength {
                what: "footer section table",
                len: n as u64,
                remaining: body.len(),
            });
        }
        let mut sections = Vec::with_capacity(n);
        let mut prev = 0u64;
        for i in 0..n {
            let end = dec.get_u64("section end")?;
            let crc = dec.get_u32("section crc")?;
            if end < prev || (i + 1 == n && end != payload_len) {
                return Err(WireError::BadLength {
                    what: "footer section bounds",
                    len: end,
                    remaining: payload_len as usize,
                });
            }
            prev = end;
            sections.push(SectionCrc { end, crc });
        }
        if payload_len as usize + footer_len != file.len() {
            return Err(WireError::BadLength {
                what: "footer payload length",
                len: payload_len,
                remaining: file.len(),
            });
        }
        Ok(Some(FileFooter {
            payload_len,
            sections,
        }))
    }

    /// Recompute every section checksum over `payload` (the file *without*
    /// the footer) and report the sections that do not match.
    pub fn verify(&self, payload: &[u8]) -> Vec<SectionMismatch> {
        let mut bad = Vec::new();
        let mut start = 0u64;
        for (i, s) in self.sections.iter().enumerate() {
            let range = payload.get(start as usize..s.end as usize);
            let ok = range.is_some_and(|bytes| crc32c(bytes) == s.crc);
            if !ok {
                bad.push(SectionMismatch {
                    section: i,
                    start,
                    end: s.end,
                });
            }
            start = s.end;
        }
        bad
    }
}

/// An `io::Write` adapter that accumulates per-section CRC32C as payload
/// bytes stream through, cutting sections at the caller-supplied
/// boundaries, then appends the footer on [`CrcSectionWriter::finish`].
///
/// `ends` are the exclusive end offsets of each section, strictly
/// increasing; the last must equal the total payload length (checked at
/// finish). The writer also keeps a whole-file CRC (payload + footer) —
/// that is what the commit manifest records per leaf file.
pub struct CrcSectionWriter<W: Write> {
    inner: W,
    ends: Vec<u64>,
    next: usize,
    written: u64,
    section: Crc32c,
    whole: Crc32c,
    sections: Vec<SectionCrc>,
}

impl<W: Write> CrcSectionWriter<W> {
    pub fn new(inner: W, ends: Vec<u64>) -> CrcSectionWriter<W> {
        debug_assert!(ends.windows(2).all(|w| w[0] < w[1]), "ends must ascend");
        CrcSectionWriter {
            inner,
            sections: Vec::with_capacity(ends.len()),
            ends,
            next: 0,
            written: 0,
            section: Crc32c::new(),
            whole: Crc32c::new(),
        }
    }

    fn absorb(&mut self, mut buf: &[u8]) {
        self.whole.update(buf);
        while !buf.is_empty() {
            let room = match self.ends.get(self.next) {
                Some(&end) => (end - self.written) as usize,
                // Bytes past the last declared boundary: finish() rejects
                // the mismatch, but keep the CRC state consistent.
                None => buf.len(),
            };
            let take = buf.len().min(room);
            self.section.update(&buf[..take]);
            self.written += take as u64;
            buf = &buf[take..];
            if Some(&self.written) == self.ends.get(self.next) {
                self.sections.push(SectionCrc {
                    end: self.written,
                    crc: self.section.finish(),
                });
                self.section = Crc32c::new();
                self.next += 1;
            }
        }
    }

    /// Close the last section, append the footer, and flush. Returns the
    /// inner writer, the footer, and `(total_file_len, whole_file_crc)`
    /// where both cover payload *plus* footer bytes.
    pub fn finish(mut self) -> io::Result<(W, FileFooter, u64, u32)> {
        let expected = self.ends.last().copied().unwrap_or(0);
        if self.written != expected {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "section writer: payload is {} bytes, boundaries declared {}",
                    self.written, expected
                ),
            ));
        }
        // An empty payload still gets one (empty) section so the footer is
        // well formed.
        if self.sections.is_empty() {
            self.sections.push(SectionCrc {
                end: 0,
                crc: Crc32c::new().finish(),
            });
        }
        let footer = FileFooter {
            payload_len: self.written,
            sections: self.sections,
        };
        let bytes = footer.encode();
        self.whole.update(&bytes);
        self.inner.write_all(&bytes)?;
        self.inner.flush()?;
        let total = self.written + bytes.len() as u64;
        Ok((self.inner, footer, total, self.whole.finish()))
    }
}

impl<W: Write> Write for CrcSectionWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.absorb(&buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// The section boundaries (exclusive ends) of a BAT payload: the head,
/// then each treelet block. Derived from the writer's precomputed layout.
pub fn bat_section_ends(writer: &crate::format::BatWriter<'_>) -> Vec<u64> {
    let mut ends: Vec<u64> = writer
        .treelet_offsets()
        .iter()
        .skip(1)
        .map(|&o| o as u64)
        .collect();
    if let Some(&first) = writer.treelet_offsets().first() {
        ends.insert(0, first as u64);
    }
    let size = writer.file_size() as u64;
    if ends.last() != Some(&size) {
        ends.push(size);
    }
    ends
}

/// Sanity guard: the footer magic must differ from the format magic so a
/// footer can never be mistaken for a file head.
const _: () = assert!(FOOTER_MAGIC != MAGIC);

#[cfg(test)]
mod tests {
    use super::*;

    fn footered(payload: &[u8], ends: Vec<u64>) -> Vec<u8> {
        let mut w = CrcSectionWriter::new(Vec::new(), ends);
        w.write_all(payload).unwrap();
        let (file, ..) = w.finish().unwrap();
        file
    }

    #[test]
    fn roundtrip_and_verify_clean() {
        let payload: Vec<u8> = (0..1000u32).map(|i| i as u8).collect();
        let file = footered(&payload, vec![100, 400, 1000]);
        let footer = FileFooter::detect(&file).unwrap().expect("footer present");
        assert_eq!(footer.payload_len, 1000);
        assert_eq!(footer.sections.len(), 3);
        assert!(footer.verify(&file[..1000]).is_empty());
    }

    #[test]
    fn legacy_file_without_footer_detects_as_none() {
        assert_eq!(FileFooter::detect(b"no footer here").unwrap(), None);
        assert_eq!(FileFooter::detect(b"").unwrap(), None);
    }

    #[test]
    fn flipped_bit_is_localized_to_its_section() {
        let payload = vec![7u8; 1000];
        let mut file = footered(&payload, vec![100, 400, 1000]);
        file[450] ^= 0x01; // lands in section 2: [400, 1000)
        let footer = FileFooter::detect(&file).unwrap().expect("footer intact");
        let bad = footer.verify(&file[..1000]);
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].section, 2);
        assert_eq!((bad[0].start, bad[0].end), (400, 1000));
    }

    #[test]
    fn damaged_footer_is_an_error_not_a_false_negative() {
        let payload = vec![1u8; 64];
        let mut file = footered(&payload, vec![64]);
        let crc_pos = file.len() - 12; // footer self-crc
        file[crc_pos] ^= 0xFF;
        assert!(FileFooter::detect(&file).is_err());
    }

    #[test]
    fn truncated_file_loses_the_footer_cleanly() {
        let payload = vec![2u8; 256];
        let file = footered(&payload, vec![256]);
        // Truncation chops the tail sentinel: reads as "no footer".
        let truncated = &file[..file.len() - 5];
        assert_eq!(FileFooter::detect(truncated).unwrap(), None);
    }

    #[test]
    fn empty_payload_gets_a_wellformed_footer() {
        let file = footered(&[], vec![]);
        let footer = FileFooter::detect(&file).unwrap().expect("footer");
        assert_eq!(footer.payload_len, 0);
        assert_eq!(footer.sections.len(), 1);
        assert!(footer.verify(&[]).is_empty());
    }

    #[test]
    fn short_write_against_declared_boundaries_fails_finish() {
        let mut w = CrcSectionWriter::new(Vec::new(), vec![100]);
        w.write_all(&[0u8; 50]).unwrap();
        assert!(w.finish().is_err());
    }
}
