//! Reading compacted BAT files: spatial, attribute, and progressive
//! multiresolution queries (paper §V).
//!
//! [`BatFile`] opens a compacted buffer either from memory or through a
//! memory mapping (the paper's read path; the OS page cache then serves
//! frequently accessed treelets). The file head is parsed eagerly; treelet
//! blocks are interpreted in place — node records are decoded as the
//! traversal touches them, and particle data is read directly out of the
//! mapped pages.

use crate::attr::AttributeType;
use crate::bitmap::Bitmap32;
use crate::cache::{self, PageCache};
use crate::format::{self, FileHead, LeafRec, TreeletLayout};
use crate::query::{contribution, quality_to_depth, PointRecord, Query};
use crate::radix::NodeRef;
use crate::source::{ByteSource, RangeConfig, RangeReader};
use crate::treelet::NO_CHILD;
use bat_geom::{Aabb, Vec3};
use bat_wire::{Block, WireError, WireResult};
use std::path::Path;
use std::sync::Arc;

/// Counters describing how much work a query did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Shallow + treelet nodes visited.
    pub nodes_visited: u64,
    /// Treelets whose blocks were touched.
    pub treelets_visited: u64,
    /// Points read and tested against exact filters.
    pub points_tested: u64,
    /// Points passed to the callback.
    pub points_returned: u64,
    /// Distinct 4 KiB pages covered by the treelet blocks touched (the
    /// I/O cost proxy for an mmap-backed read; §V).
    pub pages_touched: u64,
    /// Nodes whose bitmaps overlapped every filter mask (descended).
    pub bitmap_hits: u64,
    /// Nodes culled because a bitmap missed a filter mask.
    pub bitmap_skips: u64,
    /// Treelet blocks served from an attached [`PageCache`].
    pub cache_hits: u64,
    /// Treelet blocks materialized from the backing mapping (and offered
    /// to the attached cache, if any).
    pub cache_misses: u64,
    /// Points that survived the binned-bitmap pre-filter *and* passed the
    /// exact attribute filters (counted only for filtered queries).
    pub filter_hits: u64,
    /// Points that survived the bitmap pre-filter but failed the exact
    /// filters — the bins' measured false positives.
    pub filter_false_positives: u64,
}

/// How [`BatFile::plan`] culled treelets for an attribute-filtered query
/// (`BAT_PLAN_STRATEGY` forces a choice; `auto` picks by selectivity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanStrategy {
    /// No attribute-based culling: every bounds-surviving treelet is
    /// scanned and only the exact per-point filters reject.
    Scan,
    /// Binned-bitmap pre-filtering (the default paper path).
    Bitmap,
    /// Exact packed B-tree culling layered on top of the bitmap plan.
    Index,
}

impl PlanStrategy {
    pub fn name(self) -> &'static str {
        match self {
            PlanStrategy::Scan => "scan",
            PlanStrategy::Bitmap => "bitmap",
            PlanStrategy::Index => "index",
        }
    }
}

/// `BAT_PLAN_STRATEGY` override: `scan`, `bitmap`, or `index`; anything
/// else (including the default `auto`) lets the planner choose.
fn strategy_override() -> Option<PlanStrategy> {
    match std::env::var("BAT_PLAN_STRATEGY") {
        Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
            "scan" => Some(PlanStrategy::Scan),
            "bitmap" => Some(PlanStrategy::Bitmap),
            "index" => Some(PlanStrategy::Index),
            _ => None,
        },
        Err(_) => None,
    }
}

/// The per-file slice of a query plan (paper §V + DESIGN.md §12): the
/// treelets the query must materialize, in deterministic traversal order,
/// plus the shallow-tree pruning evidence. Produced by [`BatFile::plan`]
/// *before any treelet block is touched*, so a serving layer can order,
/// admit, or reject work using only file-head metadata.
#[derive(Debug, Clone)]
pub struct FilePlan {
    /// Treelet indices to materialize, in the order execution visits them.
    treelets: Vec<u32>,
    /// Precomputed per-filter query masks (reused by execution).
    masks: Vec<(usize, Bitmap32)>,
    /// Shallow inner nodes inspected while planning.
    pub shallow_nodes_visited: u64,
    /// Shallow subtrees pruned because their AABB missed the query bounds.
    pub pruned_bounds: u64,
    /// Shallow subtrees pruned by bitmap-index pre-filtering.
    pub pruned_bitmap: u64,
    /// Shallow nodes whose bitmaps overlapped every filter mask.
    pub shallow_bitmap_hits: u64,
    /// How attribute predicates culled treelets for this plan.
    pub strategy: PlanStrategy,
    /// Exact match fraction from the B-tree rank search, when one ran:
    /// `matching entries / file particles` for the most selective indexed
    /// filter.
    pub index_selectivity: Option<f64>,
}

impl FilePlan {
    /// Treelets the query must materialize, in execution order.
    pub fn treelets(&self) -> &[u32] {
        &self.treelets
    }

    /// Number of treelets the plan will materialize.
    pub fn num_treelets(&self) -> usize {
        self.treelets.len()
    }

    /// True when the plan proves the file contributes nothing.
    pub fn is_empty(&self) -> bool {
        self.treelets.is_empty()
    }

    /// Shallow subtrees pruned before materialization (bounds + bitmap).
    pub fn nodes_pruned(&self) -> u64 {
        self.pruned_bounds + self.pruned_bitmap
    }
}

/// Reusable per-query scratch for [`BatFile::execute_treelet`] so a
/// treelet-at-a-time execution loop does not allocate per treelet.
#[derive(Default)]
pub struct QueryScratch {
    attr_buf: Vec<f64>,
}

/// Where an opened file's bytes come from.
///
/// `Block` is the local path: the whole file is addressable as one
/// zero-copy byte window (owned buffer, message payload, or memory map).
/// `Range` is the remote path: only the head has been materialized, and
/// treelet blocks are fetched on demand — or prefetched in coalesced
/// requests — through a [`RangeReader`] (DESIGN.md §13).
enum Backing {
    Block(Block),
    Range(RangeReader),
}

impl Backing {
    fn len(&self) -> usize {
        match self {
            Backing::Block(b) => b.len(),
            Backing::Range(r) => r.len() as usize,
        }
    }
}

/// An opened, compacted BAT file.
///
/// The backing storage is either one [`Block`] (owned buffer, received
/// message payload, or memory map) or a [`ByteSource`] reached through
/// range requests; every open path shares the same treelet access and
/// returns byte-identical query results.
pub struct BatFile {
    backing: Backing,
    head: FileHead,
    /// Treelet-block cache consulted before the backing block; see
    /// [`crate::cache`]. `None` reads straight from the mapping (or, for
    /// range backings, fetches per touch).
    cache: Option<Arc<PageCache>>,
    /// Process-unique id keying this open file's cache entries.
    file_id: cache::FileId,
}

impl BatFile {
    /// Open from an in-memory buffer (also the in-transit path: aggregators
    /// can query the compacted tree before/instead of writing it; §III-C).
    pub fn from_bytes(bytes: Vec<u8>) -> WireResult<BatFile> {
        BatFile::from_block(Block::from_vec(bytes))
    }

    /// Open from any [`Block`] — e.g. a comm message payload or a slice of
    /// a larger mapped region — without copying the file bytes.
    pub fn from_block(block: Block) -> WireResult<BatFile> {
        let head = format::read_head(&block)?;
        Ok(BatFile {
            backing: Backing::Block(block),
            head,
            cache: None,
            file_id: cache::next_file_id(),
        })
    }

    /// Open from a remote-style [`ByteSource`] with config from the
    /// environment (`BAT_RANGE_*`; see [`RangeConfig::from_env`]).
    ///
    /// Only the file head is fetched here — typically one request for the
    /// first page plus one for the rest of the head. Treelet blocks are
    /// fetched on demand during execution, or ahead of it by
    /// [`BatFile::prefetch`] in coalesced range requests.
    pub fn from_source(source: Arc<dyn ByteSource>) -> WireResult<BatFile> {
        BatFile::from_source_with(source, RangeConfig::from_env())
    }

    /// As [`BatFile::from_source`] with an explicit [`RangeConfig`].
    pub fn from_source_with(source: Arc<dyn ByteSource>, cfg: RangeConfig) -> WireResult<BatFile> {
        let reader = RangeReader::new(source, cfg);
        let file_len = reader.len();
        let io_err = |what: &'static str| {
            move |e: std::io::Error| WireError::Io {
                what,
                message: e.to_string(),
            }
        };
        // First request: one page, enough for the fixed header of any
        // well-formed file. `head_end` sits at bytes 8..16.
        let prefix_len = (file_len as usize).min(bat_wire::PAGE_SIZE);
        let mut head_bytes = reader.fetch(0, prefix_len).map_err(io_err("file head"))?;
        if head_bytes.len() >= 16 {
            let head_end =
                u64::from_le_bytes(head_bytes[8..16].try_into().expect("len 8")) as usize;
            if head_end > head_bytes.len() && head_end as u64 <= file_len {
                let rest = reader
                    .fetch(prefix_len as u64, head_end - prefix_len)
                    .map_err(io_err("file head"))?;
                head_bytes.extend_from_slice(&rest);
            }
            // An out-of-bounds head_end falls through to the parser, which
            // reports it as a typed BadLength.
        }
        let head = format::read_head_bounded(&head_bytes, file_len as usize)?;
        Ok(BatFile {
            backing: Backing::Range(reader),
            head,
            cache: None,
            file_id: cache::next_file_id(),
        })
    }

    /// Open a file on disk through a memory mapping.
    ///
    /// The mapping assumes the file is not concurrently truncated or
    /// modified (the write-once model of simulation output). If a
    /// process-wide treelet cache is installed ([`crate::cache::global`],
    /// sized by `BAT_CACHE_BYTES`), the file attaches it.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<BatFile> {
        let file = std::fs::File::open(path)?;
        // SAFETY: BAT files follow a write-once-read-many model; mapping a
        // file nobody mutates is sound. A hostile concurrent writer could at
        // worst cause decode errors, which the panic-free parser reports.
        let map = unsafe { memmap2::Mmap::map(&file)? };
        let block = Block::from_arc(Arc::new(map));
        BatFile::from_block(block)
            .map(|f| f.with_cache(cache::global()))
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// This file with the given treelet cache attached (or detached, with
    /// `None`). Queries consult the cache before touching the backing
    /// block; results are byte-identical either way.
    pub fn with_cache(mut self, cache: Option<Arc<PageCache>>) -> BatFile {
        self.cache = cache;
        self
    }

    /// The attached treelet cache, if any.
    pub fn cache(&self) -> Option<&Arc<PageCache>> {
        self.cache.as_ref()
    }

    /// The process-unique id keying this open file's cache entries.
    pub fn file_id(&self) -> cache::FileId {
        self.file_id
    }

    /// The backing block (shared, zero-copy), when the file is block-backed.
    /// Range-backed files have no whole-file buffer and return `None`.
    pub fn block(&self) -> Option<&Block> {
        match &self.backing {
            Backing::Block(b) => Some(b),
            Backing::Range(_) => None,
        }
    }

    /// Cumulative range-request counters, when the file is range-backed.
    pub fn range_stats(&self) -> Option<crate::source::RangeStats> {
        match &self.backing {
            Backing::Block(_) => None,
            Backing::Range(r) => Some(r.stats()),
        }
    }

    /// Parsed file head (schema, ranges, shallow tree, dictionary).
    pub fn head(&self) -> &FileHead {
        &self.head
    }

    /// Total particle count in the file.
    pub fn num_particles(&self) -> u64 {
        self.head.num_particles
    }

    /// Raw byte size of the backing buffer or remote object.
    pub fn byte_size(&self) -> usize {
        self.backing.len()
    }

    /// Domain bounds the layout was built over.
    pub fn domain(&self) -> Aabb {
        self.head.domain
    }

    /// Run a query, invoking `cb` for every matching point, and return work
    /// counters. See [`Query`] for the knobs.
    pub fn query(&self, q: &Query, cb: impl FnMut(PointRecord<'_>)) -> WireResult<QueryStats> {
        let _span = bat_obs::span("read.query_ns");
        let result = self.query_impl(q, cb);
        if let (Ok(stats), true) = (&result, bat_obs::enabled()) {
            bat_obs::counter_add("read.query.count", 1);
            bat_obs::counter_add("read.query.treelets", stats.treelets_visited);
            bat_obs::counter_add("read.query.pages_4k", stats.pages_touched);
            bat_obs::counter_add("read.query.points_tested", stats.points_tested);
            bat_obs::counter_add("read.query.points_returned", stats.points_returned);
            bat_obs::counter_add("read.query.bitmap_hits", stats.bitmap_hits);
            bat_obs::counter_add("read.query.bitmap_skips", stats.bitmap_skips);
            bat_obs::counter_add("bitmap.hits", stats.filter_hits);
            bat_obs::counter_add("bitmap.false_positives", stats.filter_false_positives);
            let survived = stats.filter_hits + stats.filter_false_positives;
            if survived > 0 {
                bat_obs::gauge_set(
                    "bitmap.false_positive_rate",
                    stats.filter_false_positives as f64 / survived as f64,
                );
            }
        }
        result
    }

    fn query_impl(&self, q: &Query, cb: impl FnMut(PointRecord<'_>)) -> WireResult<QueryStats> {
        let plan = self.plan(q)?;
        self.execute_plan(q, &plan, cb)
    }

    /// Plan a query against this file **without materializing any treelet
    /// block**: walk the shallow tree, prune subtrees by node AABBs and by
    /// bitmap-index pre-filtering, and return the surviving treelets in
    /// deterministic traversal order. `execute_plan` (or a serving layer
    /// driving [`BatFile::execute_treelet`]) then does the page-touching
    /// work.
    pub fn plan(&self, q: &Query) -> WireResult<FilePlan> {
        let forced = strategy_override();
        let mut plan = FilePlan {
            treelets: Vec::new(),
            masks: Vec::with_capacity(q.filters.len()),
            shallow_nodes_visited: 0,
            pruned_bounds: 0,
            pruned_bitmap: 0,
            shallow_bitmap_hits: 0,
            strategy: if forced == Some(PlanStrategy::Scan) {
                PlanStrategy::Scan
            } else {
                PlanStrategy::Bitmap
            },
            index_selectivity: None,
        };
        let na = self.head.descs.len();

        // Per-filter query masks over this file's local ranges. An empty
        // mask proves no particle here can match (bins have no false
        // negatives), so the whole file is skipped. Under a forced `scan`
        // strategy no masks are built: every treelet the bounds admit is
        // scanned and only the exact per-point filters reject.
        for f in &q.filters {
            if f.attr >= na {
                return Err(WireError::BadTag {
                    what: "filter attribute index",
                    tag: f.attr as u64,
                });
            }
            if plan.strategy == PlanStrategy::Scan {
                continue;
            }
            let (lo, hi) = self.head.attr_ranges[f.attr];
            let mask = Bitmap32::query_mask(f.lo, f.hi, lo, hi);
            if mask == Bitmap32::EMPTY {
                plan.masks.clear();
                return Ok(Self::finish_plan(plan));
            }
            plan.masks.push((f.attr, mask));
        }

        let root = match self.head.leaves.len() {
            0 => return Ok(Self::finish_plan(plan)),
            1 => NodeRef::Leaf(0),
            _ => NodeRef::Inner(0),
        };

        let mut stack = vec![root];
        // Every shallow node is visited at most once in a well-formed tree;
        // corrupt child links that form a cycle exhaust this budget and
        // surface as an error instead of an infinite loop.
        let mut budget = self.head.inners.len() + self.head.leaves.len() + 1;
        while let Some(nref) = stack.pop() {
            if budget == 0 {
                return Err(WireError::BadTag {
                    what: "shallow tree traversal budget (cycle in child links)",
                    tag: plan.shallow_nodes_visited,
                });
            }
            budget -= 1;
            match nref {
                NodeRef::Inner(i) => {
                    plan.shallow_nodes_visited += 1;
                    let node = self.head.inners.get(i as usize).ok_or(WireError::BadTag {
                        what: "shallow inner index",
                        tag: i as u64,
                    })?;
                    if let Some(qb) = &q.bounds {
                        if !qb.overlaps(&node.bounds) {
                            plan.pruned_bounds += 1;
                            continue;
                        }
                    }
                    let mut bitmaps_pass = true;
                    for &(a, m) in &plan.masks {
                        let id = node.bitmap_ids[a];
                        let bm = self.head.dict.try_get(id).ok_or(WireError::BadTag {
                            what: "bitmap dictionary id",
                            tag: id as u64,
                        })?;
                        if !bm.overlaps(m) {
                            bitmaps_pass = false;
                            break;
                        }
                    }
                    if !bitmaps_pass {
                        plan.pruned_bitmap += 1;
                        continue;
                    }
                    if !plan.masks.is_empty() {
                        plan.shallow_bitmap_hits += 1;
                    }
                    stack.push(node.left);
                    stack.push(node.right);
                }
                NodeRef::Leaf(l) => {
                    if self.head.leaves.get(l as usize).is_none() {
                        return Err(WireError::BadTag {
                            what: "treelet index",
                            tag: l as u64,
                        });
                    }
                    plan.treelets.push(l);
                }
            }
        }

        // Exact B-tree refinement: when the query filters an indexed
        // attribute, rank-search the index for an exact match count; a
        // selective-enough predicate then culls every treelet without a
        // match (`auto` picks by selectivity, `index` forces it). A broken
        // index degrades to the bitmap plan — typed, never a query error.
        if forced != Some(PlanStrategy::Scan)
            && forced != Some(PlanStrategy::Bitmap)
            && !q.filters.is_empty()
            && !self.head.indexes.is_empty()
            && !plan.treelets.is_empty()
        {
            if let Err(err) = self.index_refine(q, &mut plan, forced == Some(PlanStrategy::Index)) {
                bat_obs::counter_add("index.errors", 1);
                let _ = err;
            }
        }
        Ok(Self::finish_plan(plan))
    }

    /// Emit the per-plan strategy counter and hand the plan back.
    fn finish_plan(plan: FilePlan) -> FilePlan {
        if bat_obs::enabled() {
            let name = match plan.strategy {
                PlanStrategy::Scan => "plan.strategy.scan",
                PlanStrategy::Bitmap => "plan.strategy.bitmap",
                PlanStrategy::Index => "plan.strategy.index",
            };
            bat_obs::counter_add(name, 1);
        }
        plan
    }

    /// Consult the attribute indexes for `q` and, when the most selective
    /// indexed filter is sparse enough (or `forced`), retain only the
    /// planned treelets that hold an exact match.
    fn index_refine(
        &self,
        q: &Query,
        plan: &mut FilePlan,
        forced: bool,
    ) -> Result<(), bat_index::IndexError> {
        /// `auto` cutoff: above this match fraction, pulling the payload
        /// list costs more pages than the bitmap plan would save.
        const INDEX_MAX_SELECTIVITY: f64 = 0.1;

        // Rank-search every indexed filter; the most selective one culls.
        let mut best: Option<(usize, u64, u64, u64)> = None; // (attr, r0, r1, count)
        let mut lookups = 0u64;
        let mut fetched = 0u64;
        for f in &q.filters {
            let Some(entry) = self.head.index_for(f.attr) else {
                continue;
            };
            let Some((klo, khi)) = bat_index::range_keys(f.lo, f.hi) else {
                // Inverted bounds match nothing; NaN bounds never get here
                // (`Query::validated` rejects them).
                best = Some((f.attr, 0, 0, 0));
                break;
            };
            let fetch = IndexBlobFetch::new(self, entry);
            let searcher = bat_index::IndexSearcher::open(&fetch, entry.len, entry.entries)?;
            let r0 = searcher.lower_bound(klo)?;
            let r1 = searcher.upper_bound(khi)?;
            lookups += 1;
            fetched += fetch.fetches.get();
            let count = r1.saturating_sub(r0);
            if best.is_none_or(|(.., c)| count < c) {
                best = Some((f.attr, r0, r1, count));
            }
            if count == 0 {
                break;
            }
        }
        bat_obs::counter_add("index.lookups", lookups);
        let Some((attr, r0, r1, count)) = best else {
            bat_obs::counter_add("index.nodes_fetched", fetched);
            return Ok(()); // no filter touches an indexed attribute
        };
        let selectivity = count as f64 / self.head.num_particles.max(1) as f64;
        plan.index_selectivity = Some(selectivity);
        if count == 0 {
            // Exact proof of emptiness: nothing in this file matches.
            plan.treelets.clear();
            plan.strategy = PlanStrategy::Index;
            bat_obs::counter_add("index.nodes_fetched", fetched);
            return Ok(());
        }
        if !forced && selectivity > INDEX_MAX_SELECTIVITY {
            bat_obs::counter_add("index.nodes_fetched", fetched);
            return Ok(()); // dense predicate: stay on the bitmap plan
        }

        // Pull the matching payloads (particle indices in file order) and
        // keep only the treelets that own at least one of them. The payload
        // read is one contiguous range; on remote backings it streams past
        // the page cache.
        let entry = self
            .head
            .index_for(attr)
            .expect("winning attribute came from the directory");
        let fetch = IndexBlobFetch::new(self, entry);
        let searcher = bat_index::IndexSearcher::open(&fetch, entry.len, entry.entries)?;
        let payloads = searcher.payloads(r0, r1)?;
        fetched += fetch.fetches.get();
        bat_obs::counter_add("index.nodes_fetched", fetched);
        let mut keep = vec![false; self.head.leaves.len()];
        for &p in &payloads {
            // Leaves are laid out in particle order: find the treelet whose
            // particle range contains payload `p`.
            let i = self
                .head
                .leaves
                .partition_point(|l| l.first_particle <= p as u64);
            if i > 0 {
                keep[i - 1] = true;
            }
        }
        plan.treelets.retain(|&t| keep[t as usize]);
        plan.strategy = PlanStrategy::Index;
        Ok(())
    }

    /// Execute a plan produced by [`BatFile::plan`] for the same query,
    /// folding the plan's shallow-traversal counters into the returned
    /// stats (so `plan` + `execute_plan` report exactly what
    /// [`BatFile::query`] would).
    pub fn execute_plan(
        &self,
        q: &Query,
        plan: &FilePlan,
        mut cb: impl FnMut(PointRecord<'_>),
    ) -> WireResult<QueryStats> {
        let mut stats = QueryStats {
            nodes_visited: plan.shallow_nodes_visited,
            bitmap_hits: plan.shallow_bitmap_hits,
            bitmap_skips: plan.pruned_bitmap,
            ..QueryStats::default()
        };
        let mut scratch = QueryScratch::default();
        self.prefetch(plan);
        self.decode_planned(plan);
        for &t in &plan.treelets {
            self.execute_treelet(q, plan, t, &mut scratch, &mut stats, &mut cb)?;
        }
        Ok(stats)
    }

    /// v2 + cache: decode the plan's not-yet-resident blocks in parallel
    /// through the rayon pool, populating the cache ahead of the (still
    /// sequential, deterministic) scan. Each block decodes independently to
    /// the same bytes regardless of pool size, so results are byte-identical
    /// with this warm-up disabled. Best-effort: any fetch/decode error is
    /// dropped here and surfaced as the typed error on the demand path.
    fn decode_planned(&self, plan: &FilePlan) {
        let Some(codecs) = &self.head.codecs else {
            return;
        };
        let Some(cache) = &self.cache else { return };
        let pending: Vec<u32> = plan
            .treelets
            .iter()
            .copied()
            .filter(|&t| !cache.contains(self.file_id, t))
            .collect();
        if pending.len() < 2 {
            return;
        }
        // Rayon workers don't inherit the query thread's cache-admission
        // priority (it's thread-local), so capture and pass it through.
        let priority = cache::thread_priority();
        use rayon::prelude::*;
        let _: Vec<()> = pending
            .par_iter()
            .map(|&t| {
                let (Some(leaf), Some(rec)) =
                    (self.head.leaves.get(t as usize), codecs.get(t as usize))
                else {
                    return;
                };
                let layout = TreeletLayout::compute(
                    leaf.num_nodes as usize,
                    leaf.num_particles as usize,
                    &self.head.descs,
                );
                let start = leaf.offset as usize;
                let stored = rec.stored_size();
                if start + stored > self.backing.len() {
                    return;
                }
                let decoded = match &self.backing {
                    Backing::Block(data) => format::decode_block(
                        &data[start..start + stored],
                        rec,
                        &layout,
                        &self.head.descs,
                        leaf.num_particles as usize,
                    ),
                    Backing::Range(reader) => {
                        let comp = match reader.take_staged(t) {
                            Some(arc) if arc.len() == stored => arc,
                            _ => match reader.fetch(start as u64, stored) {
                                Ok(bytes) => Arc::new(bytes),
                                Err(_) => return,
                            },
                        };
                        format::decode_block(
                            &comp,
                            rec,
                            &layout,
                            &self.head.descs,
                            leaf.num_particles as usize,
                        )
                    }
                };
                if let Ok(block) = decoded {
                    cache.insert(self.file_id, t, Arc::new(block), priority);
                }
            })
            .collect();
    }

    /// Speculatively fetch the plan's treelet blocks in coalesced range
    /// requests (a no-op for block-backed files, where the bytes are
    /// already addressable). Serving layers call this once per planned
    /// file before the treelet-at-a-time execution loop, so a remote
    /// backend sees a handful of merged GETs instead of one per treelet.
    ///
    /// Best-effort: blocks already resident in the attached cache or the
    /// staging area are skipped, and fetch failures are deferred to the
    /// demand path (which retries and returns the typed error).
    pub fn prefetch(&self, plan: &FilePlan) {
        let Backing::Range(reader) = &self.backing else {
            return;
        };
        if !reader.config().prefetch {
            return;
        }
        let mut wanted: Vec<(u32, u64, usize)> = Vec::with_capacity(plan.treelets.len());
        for &t in &plan.treelets {
            if reader.is_staged(t) {
                continue;
            }
            if let Some(cache) = &self.cache {
                if cache.contains(self.file_id, t) {
                    continue;
                }
            }
            let Some(leaf) = self.head.leaves.get(t as usize) else {
                continue;
            };
            // Stored size: compressed bytes for v2, layout size for v1 —
            // a remote prefetch only ever moves the on-disk bytes.
            let Some(size) = self.head.stored_block_size(t as usize) else {
                continue;
            };
            if leaf.offset as usize + size <= self.backing.len() {
                wanted.push((t, leaf.offset, size));
            }
        }
        reader.prefetch_blocks(&wanted);
    }

    /// Materialize and scan one planned treelet, accumulating into
    /// `stats`. This is the unit a serving layer interleaves with deadline
    /// checks: each call touches at most one treelet block.
    pub fn execute_treelet(
        &self,
        q: &Query,
        plan: &FilePlan,
        treelet: u32,
        scratch: &mut QueryScratch,
        stats: &mut QueryStats,
        cb: &mut impl FnMut(PointRecord<'_>),
    ) -> WireResult<()> {
        scratch.attr_buf.resize(self.head.descs.len(), 0.0);
        let mut attr_buf = std::mem::take(&mut scratch.attr_buf);
        let result = self.query_treelet(treelet, q, &plan.masks, &mut attr_buf, stats, cb);
        scratch.attr_buf = attr_buf;
        result
    }

    /// Count matching points without materializing them.
    pub fn count(&self, q: &Query) -> WireResult<u64> {
        let stats = self.query(q, |_| {})?;
        Ok(stats.points_returned)
    }

    #[allow(clippy::too_many_arguments)]
    fn query_treelet(
        &self,
        treelet: u32,
        q: &Query,
        masks: &[(usize, Bitmap32)],
        attr_buf: &mut [f64],
        stats: &mut QueryStats,
        cb: &mut impl FnMut(PointRecord<'_>),
    ) -> WireResult<()> {
        let leaf = self
            .head
            .leaves
            .get(treelet as usize)
            .ok_or(WireError::BadTag {
                what: "treelet index",
                tag: treelet as u64,
            })?;
        // Keeps a cache-resident copy of the block alive for the duration
        // of the scan; borrowed by the view when the cache path is taken.
        let mut storage: Option<Arc<Vec<u8>>> = None;
        let view = self.treelet_view(leaf, treelet, &mut storage, stats)?;
        stats.treelets_visited += 1;
        stats.pages_touched += view.pages_4k;

        // Quality maps to a depth within *this* treelet: the LOD particle
        // count roughly doubles per level of each treelet (§V-B), so the
        // log remap is applied against the treelet's own depth. This keeps
        // refinement uniform across regions even when treelet depths vary.
        let limit = quality_to_depth(q.quality, leaf.max_depth);
        let prev = quality_to_depth(q.prev_quality, leaf.max_depth);

        let mut stack: Vec<u32> = vec![0];
        // Same cycle guard as the shallow traversal: a well-formed treelet
        // visits each node once, so corrupt left/right links cannot hang.
        let mut budget = view.num_nodes() + 1;
        while let Some(ni) = stack.pop() {
            if budget == 0 {
                return Err(WireError::BadTag {
                    what: "treelet traversal budget (cycle in child links)",
                    tag: ni as u64,
                });
            }
            budget -= 1;
            stats.nodes_visited += 1;
            let node = view.node(ni as usize)?;
            if node.depth > limit.0 {
                continue;
            }
            if let Some(qb) = &q.bounds {
                if !qb.overlaps(&node.bounds) {
                    continue;
                }
            }
            let mut bitmaps_pass = true;
            for &(a, m) in masks {
                let id = view.bitmap_id(ni as usize, a)?;
                let bm = self.head.dict.try_get(id).ok_or(WireError::BadTag {
                    what: "bitmap dictionary id",
                    tag: id as u64,
                })?;
                if !bm.overlaps(m) {
                    bitmaps_pass = false;
                    break;
                }
            }
            if !bitmaps_pass {
                stats.bitmap_skips += 1;
                continue;
            }
            if !masks.is_empty() {
                stats.bitmap_hits += 1;
            }

            // Emit the progressive slice of this node's own particle block.
            let now = contribution(node.count, node.depth, limit.0, limit.1);
            let before = contribution(node.count, node.depth, prev.0, prev.1);
            for o in before..now {
                let local = node.start.checked_add(o).ok_or(WireError::BadTag {
                    what: "treelet particle offset overflow",
                    tag: node.start as u64,
                })?;
                stats.points_tested += 1;
                let pos = view.position(local as usize)?;
                if let Some(qb) = &q.bounds {
                    if !qb.contains_point(pos) {
                        continue;
                    }
                }
                for (a, slot) in attr_buf.iter_mut().enumerate() {
                    *slot = view.attr(a, local as usize)?;
                }
                // Exact false-positive rejection for attribute filters.
                // Points reaching here already survived the bitmap
                // pre-filter, so the reject/accept split is the bins'
                // measured false-positive rate.
                if !q.filters.is_empty() {
                    if q.filters
                        .iter()
                        .all(|f| attr_buf[f.attr] >= f.lo && attr_buf[f.attr] <= f.hi)
                    {
                        stats.filter_hits += 1;
                    } else {
                        stats.filter_false_positives += 1;
                        continue;
                    }
                }
                stats.points_returned += 1;
                cb(PointRecord {
                    position: pos,
                    attrs: attr_buf,
                    index: leaf.first_particle + local as u64,
                });
            }

            if node.depth < limit.0 && node.left != NO_CHILD {
                stack.push(node.left);
                stack.push(node.right);
            }
        }
        Ok(())
    }

    /// Interpret a treelet block in place, or from the page cache when one
    /// is attached. For v1 files, cached blocks are verbatim copies of the
    /// on-disk bytes; for v2 files the cache holds *decoded* blocks (the
    /// backing and any range fetch move only compressed bytes), and the
    /// decoded image is a verbatim v1-layout block — so every path is
    /// byte-identical by construction. `storage` keeps the materialized
    /// `Arc` alive for the borrow the returned view holds.
    fn treelet_view<'a>(
        &'a self,
        leaf: &LeafRec,
        treelet: u32,
        storage: &'a mut Option<Arc<Vec<u8>>>,
        stats: &mut QueryStats,
    ) -> WireResult<TreeletView<'a>> {
        let layout = TreeletLayout::compute(
            leaf.num_nodes as usize,
            leaf.num_particles as usize,
            &self.head.descs,
        );
        let start = leaf.offset as usize;
        let stored_size = self
            .head
            .stored_block_size(treelet as usize)
            .unwrap_or(layout.size);
        let end = start + stored_size;
        if end > self.backing.len() {
            return Err(WireError::Truncated {
                what: "treelet block",
                needed: end,
                remaining: self.backing.len(),
            });
        }
        if self.head.is_v2() {
            let arc = self.decoded_block(leaf, treelet, &layout, start, stored_size, stats)?;
            let block: &'a [u8] = storage.insert(arc).as_slice();
            return TreeletView::over(block, leaf, &layout, &self.head, start, end);
        }
        // Pre-slice the block's sections once: every per-point access below
        // is then a cheap in-bounds index (section lengths are exact by
        // construction, and node-supplied indices are range-checked against
        // `num_points`/`num_nodes` before use, so corrupt files surface as
        // errors, never panics).
        let block: &'a [u8] = match &self.backing {
            Backing::Block(data) => match &self.cache {
                Some(cache) => {
                    if let Some(arc) = cache.get(self.file_id, treelet) {
                        // A stale entry can only disagree in length if the file
                        // was rewritten under a reused id, which `FileId` makes
                        // impossible; the check still guards cache corruption.
                        if arc.len() == layout.size {
                            stats.cache_hits += 1;
                            storage.insert(arc).as_slice()
                        } else {
                            stats.cache_misses += 1;
                            let copy = Arc::new(data[start..end].to_vec());
                            cache.insert(
                                self.file_id,
                                treelet,
                                copy.clone(),
                                cache::thread_priority(),
                            );
                            storage.insert(copy).as_slice()
                        }
                    } else {
                        stats.cache_misses += 1;
                        let copy = Arc::new(data[start..end].to_vec());
                        cache.insert(
                            self.file_id,
                            treelet,
                            copy.clone(),
                            cache::thread_priority(),
                        );
                        storage.insert(copy).as_slice()
                    }
                }
                None => &data[start..end],
            },
            Backing::Range(reader) => {
                let arc = self.range_block(reader, treelet, start, layout.size, stats)?;
                storage.insert(arc).as_slice()
            }
        };
        TreeletView::over(block, leaf, &layout, &self.head, start, end)
    }

    /// Materialize one *decoded* v2 treelet block: attached cache first
    /// (which stores decoded blocks and charges their decoded size), then
    /// decode from the backing — a compressed slice of the block backing,
    /// or staged/fetched compressed bytes over a range backing.
    fn decoded_block(
        &self,
        leaf: &LeafRec,
        treelet: u32,
        layout: &TreeletLayout,
        start: usize,
        stored_size: usize,
        stats: &mut QueryStats,
    ) -> WireResult<Arc<Vec<u8>>> {
        if let Some(cache) = &self.cache {
            if let Some(arc) = cache.get(self.file_id, treelet) {
                if arc.len() == layout.size {
                    stats.cache_hits += 1;
                    return Ok(arc);
                }
            }
        }
        let rec = self
            .head
            .codec_rec(treelet as usize)
            .ok_or(WireError::BadTag {
                what: "treelet codec table index",
                tag: treelet as u64,
            })?;
        let num_points = leaf.num_particles as usize;
        let decoded = match &self.backing {
            Backing::Block(data) => format::decode_block(
                &data[start..start + stored_size],
                rec,
                layout,
                &self.head.descs,
                num_points,
            )?,
            Backing::Range(reader) => {
                let comp = match reader.take_staged(treelet) {
                    Some(arc) if arc.len() == stored_size => arc,
                    _ => Arc::new(reader.fetch(start as u64, stored_size).map_err(|e| {
                        WireError::Io {
                            what: "treelet block",
                            message: e.to_string(),
                        }
                    })?),
                };
                format::decode_block(&comp, rec, layout, &self.head.descs, num_points)?
            }
        };
        let arc = Arc::new(decoded);
        if let Some(cache) = &self.cache {
            stats.cache_misses += 1;
            cache.insert(self.file_id, treelet, arc.clone(), cache::thread_priority());
        }
        Ok(arc)
    }

    /// Materialize one treelet block over a range backing: attached cache
    /// first, then the prefetch staging area (promoting the block into the
    /// cache), then a demand range request. The verified-length fetch
    /// guarantees the returned block is exactly `size` bytes — a torn
    /// response becomes a typed error, never a short block.
    fn range_block(
        &self,
        reader: &RangeReader,
        treelet: u32,
        start: usize,
        size: usize,
        stats: &mut QueryStats,
    ) -> WireResult<Arc<Vec<u8>>> {
        if let Some(cache) = &self.cache {
            if let Some(arc) = cache.get(self.file_id, treelet) {
                if arc.len() == size {
                    stats.cache_hits += 1;
                    return Ok(arc);
                }
            }
        }
        let arc = match reader.take_staged(treelet) {
            Some(arc) if arc.len() == size => arc,
            _ => Arc::new(
                reader
                    .fetch(start as u64, size)
                    .map_err(|e| WireError::Io {
                        what: "treelet block",
                        message: e.to_string(),
                    })?,
            ),
        };
        if let Some(cache) = &self.cache {
            stats.cache_misses += 1;
            cache.insert(self.file_id, treelet, arc.clone(), cache::thread_priority());
        }
        Ok(arc)
    }
}

/// Cache key space for index-blob pages: the high bit separates index keys
/// from treelet-block indices, then 11 bits of attribute and 20 bits of
/// page number within the blob. Offsets past the encodable range simply
/// bypass the cache.
const INDEX_KEY_BASE: u32 = 0x8000_0000;
/// Index blobs are cached in 4 KiB pages, like everything else.
const INDEX_PAGE: u64 = 4096;

fn index_cache_key(attr: u32, page: u64) -> Option<u32> {
    if attr >= 1 << 11 || page >= 1 << 20 {
        return None;
    }
    Some(INDEX_KEY_BASE | (attr << 20) | page as u32)
}

/// [`bat_index::IndexFetch`] over an open file's backing: direct slices on
/// the block path, page-granular cached range requests on the remote path
/// (so a warm search costs zero GETs and a cold one `O(log_B n)`).
struct IndexBlobFetch<'a> {
    file: &'a BatFile,
    entry: &'a format::IndexDirEntry,
    /// Backing reads actually issued (each one a GET on the range path).
    fetches: std::cell::Cell<u64>,
}

impl<'a> IndexBlobFetch<'a> {
    fn new(file: &'a BatFile, entry: &'a format::IndexDirEntry) -> IndexBlobFetch<'a> {
        IndexBlobFetch {
            file,
            entry,
            fetches: std::cell::Cell::new(0),
        }
    }

    fn direct(
        &self,
        reader: &RangeReader,
        off: u64,
        len: usize,
    ) -> bat_index::IndexResult<Vec<u8>> {
        self.fetches.set(self.fetches.get() + 1);
        reader
            .fetch(self.entry.offset + off, len)
            .map_err(|e| bat_index::IndexError::Io {
                what: "index range fetch",
                message: e.to_string(),
            })
    }

    fn fetch_range(
        &self,
        reader: &RangeReader,
        off: u64,
        len: usize,
    ) -> bat_index::IndexResult<Vec<u8>> {
        let Some(cache) = &self.file.cache else {
            return self.direct(reader, off, len);
        };
        let p0 = off / INDEX_PAGE;
        let p1 = (off + len as u64 - 1) / INDEX_PAGE;
        // Node and leaf-block reads span at most two pages; anything larger
        // is a payload pull, which streams directly so it cannot evict the
        // search working set.
        if p1 - p0 > 1 {
            return self.direct(reader, off, len);
        }
        let mut out = Vec::with_capacity(len);
        for page in p0..=p1 {
            let Some(key) = index_cache_key(self.entry.attr, page) else {
                return self.direct(reader, off, len);
            };
            let page_off = page * INDEX_PAGE;
            let page_len = INDEX_PAGE.min(self.entry.len - page_off) as usize;
            let bytes = match cache.get(self.file.file_id, key) {
                Some(b) if b.len() == page_len => b,
                _ => {
                    let arc = Arc::new(self.direct(reader, page_off, page_len)?);
                    cache.insert(
                        self.file.file_id,
                        key,
                        arc.clone(),
                        cache::thread_priority(),
                    );
                    arc
                }
            };
            let s = (off.max(page_off) - page_off) as usize;
            let e = ((off + len as u64).min(page_off + page_len as u64) - page_off) as usize;
            out.extend_from_slice(&bytes[s..e]);
        }
        debug_assert_eq!(out.len(), len);
        Ok(out)
    }
}

impl bat_index::IndexFetch for IndexBlobFetch<'_> {
    fn fetch(&self, off: u64, len: usize) -> bat_index::IndexResult<Vec<u8>> {
        let end = off
            .checked_add(len as u64)
            .ok_or(bat_index::IndexError::Corrupt {
                what: "index fetch range",
                value: off,
            })?;
        if end > self.entry.len {
            return Err(bat_index::IndexError::Truncated {
                what: "index blob range",
                needed: end,
                have: self.entry.len,
            });
        }
        match &self.file.backing {
            Backing::Block(data) => {
                let lo = (self.entry.offset + off) as usize;
                let hi = lo + len;
                if hi > data.len() {
                    return Err(bat_index::IndexError::Truncated {
                        what: "index blob bytes",
                        needed: hi as u64,
                        have: data.len() as u64,
                    });
                }
                self.fetches.set(self.fetches.get() + 1);
                Ok(data[lo..hi].to_vec())
            }
            Backing::Range(reader) => self.fetch_range(reader, off, len),
        }
    }
}

/// Decoded treelet node (mirror of [`crate::treelet::TreeletNode`]).
#[derive(Debug, Clone, Copy)]
pub struct FileTreeletNode {
    /// Tight bounds of the node's subtree.
    pub bounds: Aabb,
    /// Treelet-local start of the node's own particle block.
    pub start: u32,
    /// Particle count of the node's own block.
    pub count: u32,
    /// Left child index; `NO_CHILD` for leaves.
    pub left: u32,
    /// Right child index; `NO_CHILD` for leaves.
    pub right: u32,
    /// Depth below the treelet root.
    pub depth: u32,
}

/// Zero-copy interpretation of one treelet block.
pub struct TreeletView<'a> {
    /// Node records section, exactly `num_nodes * node_record_bytes` long.
    nodes: &'a [u8],
    /// Positions section, exactly `num_points * 12` bytes.
    positions: &'a [u8],
    /// One section per attribute, exactly `num_points * elem_size` each.
    attr_sections: Vec<(&'a [u8], AttributeType)>,
    na: usize,
    num_nodes: usize,
    num_points: usize,
    /// Distinct 4 KiB pages the backing block spans.
    pages_4k: u64,
}

impl<'a> TreeletView<'a> {
    /// Slice a (decoded) block image into its sections. `block` must be
    /// exactly `layout.size` bytes — verbatim file bytes for v1, the
    /// decoded image for v2. `start..end` is the block's *stored* span in
    /// the file, which sizes `pages_4k` (compressed pages for v2: the I/O
    /// a reader actually performs).
    fn over(
        block: &'a [u8],
        leaf: &LeafRec,
        layout: &TreeletLayout,
        head: &FileHead,
        start: usize,
        end: usize,
    ) -> WireResult<TreeletView<'a>> {
        let num_nodes = leaf.num_nodes as usize;
        let num_points = leaf.num_particles as usize;
        let nodes = &block[layout.nodes_off
            ..layout.nodes_off + num_nodes * format::node_record_bytes(head.descs.len())];
        let positions = &block
            [layout.positions_off..layout.positions_off + num_points * format::POSITION_BYTES];
        let attr_sections = head
            .descs
            .iter()
            .zip(&layout.attr_offs)
            .map(|(d, &off)| (&block[off..off + num_points * d.dtype.size()], d.dtype))
            .collect();
        Ok(TreeletView {
            nodes,
            positions,
            attr_sections,
            na: head.descs.len(),
            num_nodes,
            num_points,
            // Distinct 4 KiB pages the stored block spans in the file — the
            // unit the OS faults in on the mmap read path.
            pages_4k: bat_wire::pages_spanned(start, end),
        })
    }

    /// Decode node `i`'s record.
    pub fn node(&self, i: usize) -> WireResult<FileTreeletNode> {
        if i >= self.num_nodes {
            return Err(WireError::BadTag {
                what: "treelet node index",
                tag: i as u64,
            });
        }
        let off = i * format::node_record_bytes(self.na);
        let rec = &self.nodes[off..off + format::NODE_FIXED_BYTES];
        let f = |k: usize| f32::from_le_bytes(rec[k..k + 4].try_into().expect("len 4"));
        let u = |k: usize| u32::from_le_bytes(rec[k..k + 4].try_into().expect("len 4"));
        Ok(FileTreeletNode {
            bounds: Aabb::new(Vec3::new(f(0), f(4), f(8)), Vec3::new(f(12), f(16), f(20))),
            start: u(24),
            count: u(28),
            left: u(32),
            right: u(36),
            depth: u(40),
        })
    }

    /// Dictionary ID of node `i`'s bitmap for attribute `a`.
    pub fn bitmap_id(&self, i: usize, a: usize) -> WireResult<u16> {
        if i >= self.num_nodes || a >= self.na {
            return Err(WireError::BadTag {
                what: "bitmap id index",
                tag: i as u64,
            });
        }
        let off = i * format::node_record_bytes(self.na) + format::NODE_FIXED_BYTES + 2 * a;
        Ok(u16::from_le_bytes(
            self.nodes[off..off + 2].try_into().expect("len 2"),
        ))
    }

    /// Position of treelet-local particle `i`.
    #[inline]
    pub fn position(&self, i: usize) -> WireResult<Vec3> {
        if i >= self.num_points {
            return Err(WireError::BadTag {
                what: "treelet particle index",
                tag: i as u64,
            });
        }
        let rec = &self.positions[i * format::POSITION_BYTES..(i + 1) * format::POSITION_BYTES];
        Ok(Vec3::new(
            f32::from_le_bytes(rec[0..4].try_into().expect("len 4")),
            f32::from_le_bytes(rec[4..8].try_into().expect("len 4")),
            f32::from_le_bytes(rec[8..12].try_into().expect("len 4")),
        ))
    }

    /// Attribute `a` of treelet-local particle `i`, widened to `f64`.
    #[inline]
    pub fn attr(&self, a: usize, i: usize) -> WireResult<f64> {
        if i >= self.num_points {
            return Err(WireError::BadTag {
                what: "treelet particle index",
                tag: i as u64,
            });
        }
        let (section, dtype) = self.attr_sections[a];
        Ok(match dtype {
            AttributeType::F32 => {
                f32::from_le_bytes(section[i * 4..i * 4 + 4].try_into().expect("len 4")) as f64
            }
            AttributeType::F64 => {
                f64::from_le_bytes(section[i * 8..i * 8 + 8].try_into().expect("len 8"))
            }
        })
    }

    /// Number of nodes in the treelet.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttributeDesc;
    use crate::build::{Bat, BatBuilder, BatConfig};
    use crate::particles::ParticleSet;
    use bat_geom::rng::Xoshiro256;
    use std::collections::HashSet;

    /// A particle cloud with two attributes correlated with position.
    fn sample(n: usize, seed: u64) -> (ParticleSet, Aabb) {
        let mut rng = Xoshiro256::new(seed);
        let mut set = ParticleSet::new(vec![
            AttributeDesc::f64("energy"),
            AttributeDesc::f32("speed"),
        ]);
        for _ in 0..n {
            let p = Vec3::new(rng.next_f32(), rng.next_f32(), rng.next_f32());
            set.push(p, &[p.x as f64 * 100.0, p.z as f64 * 10.0]);
        }
        (set, Aabb::unit())
    }

    /// Clustered cloud (dense treelets — the regime where v2 compression
    /// actually shrinks blocks; see `format::tests::clustered_bat`).
    fn clustered(n: usize, seed: u64) -> (ParticleSet, Aabb) {
        let mut rng = Xoshiro256::new(seed);
        let mut set = ParticleSet::new(vec![
            AttributeDesc::f64("energy"),
            AttributeDesc::f32("speed"),
        ]);
        let centers: Vec<Vec3> = (0..6)
            .map(|_| Vec3::new(rng.next_f32(), rng.next_f32(), rng.next_f32()))
            .collect();
        for i in 0..n {
            let c = centers[i % centers.len()];
            let j = |r: &mut Xoshiro256| (r.next_f32() - 0.5) * 0.04;
            let p = Vec3::new(
                (c.x + j(&mut rng)).clamp(0.0, 1.0),
                (c.y + j(&mut rng)).clamp(0.0, 1.0),
                (c.z + j(&mut rng)).clamp(0.0, 1.0),
            );
            set.push(p, &[p.x as f64 * 100.0, p.z as f64 * 10.0]);
        }
        (set, Aabb::unit())
    }

    fn build(n: usize, seed: u64) -> (Bat, BatFile) {
        let (set, domain) = sample(n, seed);
        let bat = BatBuilder::new(BatConfig::default()).build(set, domain);
        let file = BatFile::from_bytes(bat.to_bytes()).unwrap();
        (bat, file)
    }

    #[test]
    fn full_read_returns_every_particle_once() {
        let (bat, file) = build(10_000, 1);
        let mut seen = HashSet::new();
        let stats = file
            .query(&Query::new(), |p| {
                assert!(seen.insert(p.index), "particle {} duplicated", p.index);
            })
            .unwrap();
        assert_eq!(seen.len(), 10_000);
        assert_eq!(stats.points_returned, 10_000);
        let _ = bat;
    }

    #[test]
    fn spatial_query_matches_brute_force() {
        let (bat, file) = build(5_000, 2);
        let qb = Aabb::new(Vec3::new(0.2, 0.3, 0.1), Vec3::new(0.6, 0.7, 0.5));
        let expect = bat
            .particles
            .positions
            .iter()
            .filter(|p| qb.contains_point(**p))
            .count();
        let q = Query::new().with_bounds(qb);
        let mut got = 0;
        file.query(&q, |p| {
            assert!(qb.contains_point(p.position));
            got += 1;
        })
        .unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn attribute_query_matches_brute_force() {
        let (bat, file) = build(5_000, 3);
        let (lo, hi) = (25.0, 60.0);
        let expect = (0..bat.num_particles())
            .filter(|&i| {
                let v = bat.particles.value(0, i);
                v >= lo && v <= hi
            })
            .count();
        let q = Query::new().with_filter(0, lo, hi);
        let mut got = 0;
        let stats = file
            .query(&q, |p| {
                assert!(p.attrs[0] >= lo && p.attrs[0] <= hi);
                got += 1;
            })
            .unwrap();
        assert_eq!(got, expect);
        // Bitmap culling should have pruned work: we must not have tested
        // every particle in the file.
        assert!(
            stats.points_tested < 5_000,
            "bitmap filtering should prune: tested {}",
            stats.points_tested
        );
    }

    #[test]
    fn combined_spatial_and_attribute_query() {
        let (bat, file) = build(8_000, 4);
        let qb = Aabb::new(Vec3::ZERO, Vec3::splat(0.5));
        let (lo, hi) = (0.0, 30.0);
        let expect = (0..bat.num_particles())
            .filter(|&i| {
                let p = bat.particles.positions[i];
                let v = bat.particles.value(0, i);
                qb.contains_point(p) && v >= lo && v <= hi
            })
            .count();
        let q = Query::new().with_bounds(qb).with_filter(0, lo, hi);
        assert_eq!(file.count(&q).unwrap() as usize, expect);
    }

    #[test]
    fn disjoint_filter_skips_file_entirely() {
        let (_, file) = build(1_000, 5);
        // energy = x*100 is in [0, 100]; ask for 500..900.
        let q = Query::new().with_filter(0, 500.0, 900.0);
        let stats = file.query(&q, |_| panic!("no point should match")).unwrap();
        assert_eq!(
            stats.nodes_visited, 0,
            "empty mask must skip the whole file"
        );
    }

    #[test]
    fn quality_zero_returns_nothing_and_one_everything() {
        let (_, file) = build(3_000, 6);
        assert_eq!(file.count(&Query::new().with_quality(0.0)).unwrap(), 0);
        assert_eq!(file.count(&Query::new().with_quality(1.0)).unwrap(), 3_000);
    }

    #[test]
    fn quality_monotonically_adds_points() {
        let (_, file) = build(20_000, 7);
        let mut prev = 0;
        for i in 1..=10 {
            let q = Query::new().with_quality(i as f64 / 10.0);
            let n = file.count(&q).unwrap();
            assert!(n >= prev, "quality {i}: {n} < {prev}");
            prev = n;
        }
        assert_eq!(prev, 20_000);
    }

    #[test]
    fn progressive_reads_partition_the_data() {
        // Reading 0→0.3, 0.3→0.7, 0.7→1.0 must return every particle
        // exactly once (the paper's progressive streaming use case, §V-B).
        let (_, file) = build(15_000, 8);
        let mut seen = HashSet::new();
        for (prev, cur) in [(0.0, 0.3), (0.3, 0.7), (0.7, 1.0)] {
            let q = Query::new().with_prev_quality(prev).with_quality(cur);
            file.query(&q, |p| {
                assert!(seen.insert(p.index), "particle {} seen twice", p.index);
            })
            .unwrap();
        }
        assert_eq!(seen.len(), 15_000);
    }

    #[test]
    fn progressive_fine_steps_match_table_one_protocol() {
        // The Table I/II protocol: 0.1 steps from 0.1 to 1.0.
        let (_, file) = build(10_000, 9);
        let mut seen = HashSet::new();
        let mut prev = 0.0;
        for i in 1..=10 {
            let cur = i as f64 / 10.0;
            let q = Query::new().with_prev_quality(prev).with_quality(cur);
            file.query(&q, |p| {
                assert!(seen.insert(p.index));
            })
            .unwrap();
            prev = cur;
        }
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn low_quality_reads_fraction_of_data() {
        let (_, file) = build(50_000, 10);
        let n = file.count(&Query::new().with_quality(0.1)).unwrap();
        // ~10% of the data at quality 0.1, log-remapped: must be well under
        // half and nonzero.
        assert!(n > 0);
        assert!(n < 25_000, "quality 0.1 returned {n} of 50k");
    }

    #[test]
    fn mmap_open_matches_in_memory() {
        let (_, file) = build(4_000, 11);
        let dir = std::env::temp_dir().join(format!("battest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.bat");
        // Write the same bytes and re-open via mmap.
        let (bat, _) = build(4_000, 11);
        std::fs::write(&path, bat.to_bytes()).unwrap();
        let mapped = BatFile::open(&path).unwrap();
        assert_eq!(mapped.num_particles(), file.num_particles());
        let q = Query::new().with_bounds(Aabb::new(Vec3::ZERO, Vec3::splat(0.4)));
        assert_eq!(mapped.count(&q).unwrap(), file.count(&q).unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn range_source_matches_block_backing() {
        use crate::source::MemorySource;
        let (bat, file) = build(12_000, 20);
        let src = Arc::new(MemorySource::new(bat.to_bytes()));
        let cfg = RangeConfig {
            backoff_ms: 0,
            ..RangeConfig::default()
        };
        let ranged = BatFile::from_source_with(src.clone(), cfg.clone()).unwrap();
        let queries = [
            Query::new(),
            Query::new().with_bounds(Aabb::new(Vec3::ZERO, Vec3::splat(0.5))),
            Query::new().with_filter(0, 10.0, 70.0).with_quality(0.4),
        ];
        for q in &queries {
            let mut a: Vec<u64> = Vec::new();
            let mut b: Vec<u64> = Vec::new();
            file.query(q, |p| a.push(p.index)).unwrap();
            ranged.query(q, |p| b.push(p.index)).unwrap();
            assert_eq!(a, b);
        }
        let s = ranged.range_stats().unwrap();
        assert!(s.requests > 0);
        assert!(s.bytes_fetched > 0);
        assert!(
            s.prefetch_hits > 0,
            "execute_plan should consume prefetches"
        );
        assert!(s.retries == 0);

        // With a cache attached, repeat reads hit the cache instead of the
        // source: request count stays flat on the second pass.
        let cached = BatFile::from_source_with(src, cfg)
            .unwrap()
            .with_cache(Some(PageCache::new(64 << 20)));
        let first = cached.query(&Query::new(), |_| {}).unwrap();
        let reqs_after_first = cached.range_stats().unwrap().requests;
        let second = cached.query(&Query::new(), |_| {}).unwrap();
        assert_eq!(first.points_returned, second.points_returned);
        assert!(second.cache_hits > 0);
        assert_eq!(cached.range_stats().unwrap().requests, reqs_after_first);
    }

    #[test]
    fn truncated_source_is_a_typed_error() {
        use crate::source::MemorySource;
        let (bat, _) = build(5_000, 21);
        let bytes = bat.to_bytes();
        // Cut the object short of the last treelet: the head parses (its
        // offsets are validated against the *claimed* length), but
        // execution must fail with a typed error, never panic.
        let head_end = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
        let cut = (head_end + (bytes.len() - head_end) / 2).min(bytes.len() - 1);
        let src = Arc::new(MemorySource::new(bytes[..cut].to_vec()));
        let cfg = RangeConfig {
            backoff_ms: 0,
            ..RangeConfig::default()
        };
        // Err(_) on open (head no longer fits) is also an acceptable typed
        // failure; only a successfully opened file must fail at query time.
        if let Ok(f) = BatFile::from_source_with(src, cfg) {
            assert!(f.query(&Query::new(), |_| {}).is_err());
        }
    }

    #[test]
    fn v2_lossless_matches_v1_across_backings() {
        use crate::format::write_bat_with;
        use crate::source::MemorySource;
        let (set, domain) = sample(15_000, 30);
        let bat = BatBuilder::new(BatConfig::default()).build(set, domain);
        let v1 = BatFile::from_bytes(write_bat_with(&bat, crate::codec::Codec::V1)).unwrap();
        let v2_bytes = write_bat_with(&bat, crate::codec::Codec::V2Lossless);
        let cfg = RangeConfig {
            backoff_ms: 0,
            ..RangeConfig::default()
        };
        let queries = [
            Query::new(),
            Query::new().with_bounds(Aabb::new(Vec3::ZERO, Vec3::splat(0.5))),
            Query::new().with_filter(0, 10.0, 70.0).with_quality(0.4),
            Query::new().with_prev_quality(0.2).with_quality(0.8),
        ];
        let collect = |f: &BatFile, q: &Query| {
            let mut out: Vec<(u64, [u32; 3], u64)> = Vec::new();
            f.query(q, |p| {
                out.push((
                    p.index,
                    [
                        p.position.x.to_bits(),
                        p.position.y.to_bits(),
                        p.position.z.to_bits(),
                    ],
                    p.attrs[0].to_bits(),
                ));
            })
            .unwrap();
            out
        };
        let v2_files = [
            BatFile::from_bytes(v2_bytes.clone()).unwrap(),
            BatFile::from_bytes(v2_bytes.clone())
                .unwrap()
                .with_cache(Some(PageCache::new(64 << 20))),
            BatFile::from_source_with(Arc::new(MemorySource::new(v2_bytes.clone())), cfg.clone())
                .unwrap(),
            BatFile::from_source_with(Arc::new(MemorySource::new(v2_bytes.clone())), cfg)
                .unwrap()
                .with_cache(Some(PageCache::new(64 << 20))),
        ];
        for q in &queries {
            let want = collect(&v1, q);
            for (i, f) in v2_files.iter().enumerate() {
                assert_eq!(collect(f, q), want, "v2 backing {i} diverged");
                // Warm pass must match too (decoded blocks from cache).
                assert_eq!(collect(f, q), want, "v2 backing {i} warm diverged");
            }
        }
    }

    #[test]
    fn v2_range_backend_fetches_fewer_bytes() {
        use crate::format::write_bat_with;
        use crate::source::MemorySource;
        let (set, domain) = clustered(20_000, 31);
        let bat = BatBuilder::new(BatConfig::default()).build(set, domain);
        let cfg = RangeConfig {
            backoff_ms: 0,
            ..RangeConfig::default()
        };
        let fetched = |bytes: Vec<u8>| {
            let f =
                BatFile::from_source_with(Arc::new(MemorySource::new(bytes)), cfg.clone()).unwrap();
            f.query(&Query::new(), |_| {}).unwrap();
            f.range_stats().unwrap().bytes_fetched
        };
        let b1 = fetched(write_bat_with(&bat, crate::codec::Codec::V1));
        let b2 = fetched(write_bat_with(&bat, crate::codec::Codec::V2Lossless));
        assert!(
            b2 < b1,
            "v2 should move fewer bytes over the wire: {b2} !< {b1}"
        );
    }

    #[test]
    fn v2_lossy_respects_error_bound() {
        use crate::format::write_bat_with;
        let bound = 1e-3;
        let (set, domain) = sample(8_000, 32);
        let bat = BatBuilder::new(BatConfig::default()).build(set, domain);
        let v1 = BatFile::from_bytes(write_bat_with(&bat, crate::codec::Codec::V1)).unwrap();
        let lossy = BatFile::from_bytes(write_bat_with(
            &bat,
            crate::codec::Codec::V2Lossy { error_bound: bound },
        ))
        .unwrap();
        let gather = |f: &BatFile| {
            let mut out: Vec<(u64, Vec3, f64, f64)> = Vec::new();
            f.query(&Query::new(), |p| {
                out.push((p.index, p.position, p.attrs[0], p.attrs[1]));
            })
            .unwrap();
            out.sort_by_key(|r| r.0);
            out
        };
        let exact = gather(&v1);
        let approx = gather(&lossy);
        assert_eq!(exact.len(), approx.len());
        for (e, a) in exact.iter().zip(&approx) {
            assert_eq!(e.0, a.0, "particle order must be preserved");
            for (x, y) in [(e.1.x, a.1.x), (e.1.y, a.1.y), (e.1.z, a.1.z)] {
                assert!(
                    (x as f64 - y as f64).abs() <= bound,
                    "position |{x}-{y}| > {bound}"
                );
            }
            assert!((e.2 - a.2).abs() <= bound);
            assert!((e.3 - a.3).abs() <= bound);
        }
    }

    #[test]
    fn empty_file_queries_cleanly() {
        let (set, domain) = sample(0, 12);
        let bat = BatBuilder::new(BatConfig::default()).build(set, domain);
        let file = BatFile::from_bytes(bat.to_bytes()).unwrap();
        assert_eq!(file.count(&Query::new()).unwrap(), 0);
    }

    #[test]
    fn bad_filter_attr_is_an_error() {
        let (_, file) = build(100, 13);
        let q = Query::new().with_filter(99, 0.0, 1.0);
        assert!(file.query(&q, |_| {}).is_err());
    }

    #[test]
    fn stats_reflect_culling() {
        let (_, file) = build(30_000, 14);
        let all = file.query(&Query::new(), |_| {}).unwrap();
        let tiny = file
            .query(
                &Query::new().with_bounds(Aabb::new(Vec3::ZERO, Vec3::splat(0.1))),
                |_| {},
            )
            .unwrap();
        assert!(tiny.nodes_visited < all.nodes_visited);
        assert!(tiny.treelets_visited < all.treelets_visited);
        assert!(tiny.points_tested < all.points_tested);
    }
}
