//! Optional lossy pre-write quantization (paper §VII: "our BAT layout does
//! not make use of compression or quantization, which would reduce memory
//! use further").
//!
//! Prior LOD systems compensate for hierarchy overhead by quantizing
//! positions \[19\], \[20\]. This module provides that as an *opt-in*
//! preprocessing step: positions snap to a `2^bits`-per-axis grid over the
//! domain, which bounds the error at half a cell and makes the position
//! stream highly compressible (and deduplicates coincident particles'
//! coordinates). The BAT build, file format, and queries are unchanged —
//! quantization happens before the layout is built, so the feature composes
//! with everything else.

use crate::particles::ParticleSet;
use bat_geom::{Aabb, Vec3};

/// Outcome of a quantization pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantizeReport {
    /// Bits per axis used.
    pub bits: u32,
    /// Largest displacement applied to any particle.
    pub max_error: f32,
    /// The guaranteed error bound (half a grid cell diagonal).
    pub error_bound: f32,
}

/// Snap every position to the center of its cell on a `2^bits` grid over
/// `domain`, in place. Returns the achieved and guaranteed error bounds.
///
/// `bits` must be in `1..=21` (the Morton resolution is 21 bits/axis, so
/// finer quantization would be invisible to the layout anyway).
pub fn quantize_positions(set: &mut ParticleSet, domain: &Aabb, bits: u32) -> QuantizeReport {
    assert!((1..=21).contains(&bits), "bits must be in 1..=21");
    let cells = (1u32 << bits) as f32;
    let e = domain.extent();
    let cell = Vec3::new(e.x / cells, e.y / cells, e.z / cells);
    let error_bound = 0.5 * cell.length();

    let mut max_error = 0.0f32;
    for p in &mut set.positions {
        let n = domain.normalize(*p);
        let snap = |v: f32, lo: f32, ext: f32| -> f32 {
            if ext <= 0.0 {
                return lo;
            }
            let c = (v * cells).floor().min(cells - 1.0);
            lo + (c + 0.5) / cells * ext
        };
        let q = Vec3::new(
            snap(n.x, domain.min.x, e.x),
            snap(n.y, domain.min.y, e.y),
            snap(n.z, domain.min.z, e.z),
        );
        max_error = max_error.max((q - *p).length());
        *p = q;
    }
    QuantizeReport {
        bits,
        max_error,
        error_bound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttributeDesc;
    use bat_geom::rng::Xoshiro256;

    fn cloud(n: usize, domain: &Aabb, seed: u64) -> ParticleSet {
        let mut rng = Xoshiro256::new(seed);
        let mut set = ParticleSet::new(vec![AttributeDesc::f64("v")]);
        for i in 0..n {
            let e = domain.extent();
            set.push(
                Vec3::new(
                    domain.min.x + rng.next_f32() * e.x,
                    domain.min.y + rng.next_f32() * e.y,
                    domain.min.z + rng.next_f32() * e.z,
                ),
                &[i as f64],
            );
        }
        set
    }

    #[test]
    fn error_respects_bound() {
        let domain = Aabb::new(Vec3::new(-3.0, 0.0, 10.0), Vec3::new(5.0, 2.0, 11.0));
        for bits in [4u32, 8, 12, 16] {
            let mut set = cloud(5000, &domain, bits as u64);
            let before = set.positions.clone();
            let report = quantize_positions(&mut set, &domain, bits);
            assert!(
                report.max_error <= report.error_bound * 1.0001,
                "{report:?}"
            );
            // Every particle stays inside the domain and near its original.
            for (p, q) in before.iter().zip(&set.positions) {
                assert!(domain.contains_point(*q));
                assert!((*q - *p).length() <= report.error_bound * 1.0001);
            }
        }
    }

    #[test]
    fn finer_bits_smaller_error() {
        let domain = Aabb::unit();
        let mut coarse = cloud(2000, &domain, 1);
        let mut fine = coarse.clone();
        let rc = quantize_positions(&mut coarse, &domain, 4);
        let rf = quantize_positions(&mut fine, &domain, 12);
        assert!(rf.error_bound < rc.error_bound / 100.0);
        assert!(rf.max_error < rc.max_error);
    }

    #[test]
    fn quantization_is_idempotent() {
        let domain = Aabb::unit();
        let mut set = cloud(1000, &domain, 7);
        quantize_positions(&mut set, &domain, 8);
        let once = set.positions.clone();
        let second = quantize_positions(&mut set, &domain, 8);
        assert_eq!(set.positions, once, "re-quantizing must not move points");
        assert_eq!(second.max_error, 0.0);
    }

    #[test]
    fn coincident_particles_dedup_coordinates() {
        // Quantization collapses nearby particles onto shared coordinates —
        // the compressibility the paper's future-work note is after.
        let domain = Aabb::unit();
        let mut set = cloud(10_000, &domain, 9);
        quantize_positions(&mut set, &domain, 5); // 32^3 grid
        let unique: std::collections::HashSet<_> = set
            .positions
            .iter()
            .map(|p| (p.x.to_bits(), p.y.to_bits(), p.z.to_bits()))
            .collect();
        assert!(unique.len() <= 32 * 32 * 32);
        assert!(unique.len() < 10_000);
    }

    #[test]
    fn degenerate_domain_axis() {
        let domain = Aabb::new(Vec3::ZERO, Vec3::new(1.0, 1.0, 0.0)); // flat in z
        let mut set = cloud(100, &domain, 11);
        let report = quantize_positions(&mut set, &domain, 8);
        assert!(report.max_error.is_finite());
        for p in &set.positions {
            assert_eq!(p.z, 0.0);
        }
    }

    #[test]
    fn layout_roundtrip_after_quantization() {
        // The quantized set flows through the normal build + query path.
        let domain = Aabb::unit();
        let mut set = cloud(3000, &domain, 13);
        quantize_positions(&mut set, &domain, 10);
        let bat = crate::BatBuilder::new(crate::BatConfig::default()).build(set, domain);
        let file = crate::BatFile::from_bytes(bat.to_bytes()).unwrap();
        assert_eq!(file.count(&crate::Query::new()).unwrap(), 3000);
    }

    #[test]
    #[should_panic]
    fn zero_bits_rejected() {
        let mut set = cloud(1, &Aabb::unit(), 1);
        quantize_positions(&mut set, &Aabb::unit(), 0);
    }
}
