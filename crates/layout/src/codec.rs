//! v2 treelet section codecs (DESIGN.md §15).
//!
//! A v2 file stores each treelet as a sequence of independently coded
//! *sections* — node records, positions, one column per attribute — with a
//! per-section codec tag and stored length recorded in the file head. The
//! decoded bytes of a block are laid out exactly like a v1 treelet block
//! ([`crate::format::TreeletLayout`]), so everything above the decode step
//! (traversal, progressive slicing, exact filtering) is shared between the
//! two versions.
//!
//! Codec registry (tag byte in the head's section table):
//!
//! | tag | name      | pipeline                                             |
//! |-----|-----------|------------------------------------------------------|
//! | 0   | `raw`     | verbatim bytes                                       |
//! | 1   | `shuffle` | XOR-delta over records → bitshuffle → zero-run RLE   |
//! | 2   | `quant`   | error-bounded bit-adaptive quantization (lossy)      |
//!
//! `shuffle` is lossless and exploits the build's Morton ordering: adjacent
//! particles are spatial neighbours, so XOR-ing each position/attribute
//! record with its predecessor clears the high bits, bit-plane transposition
//! groups those cleared bits into long zero runs, and a byte-level zero-run
//! RLE removes them. `quant` is **opt-in** and follows the bit-adaptive
//! scheme of "An Error-Bounded Lossy Compression Method with Bit-Adaptive
//! Quantization for Particle Data": values are quantized onto a uniform grid
//! over the section's local value range with just enough bits that every
//! *decoded* value is within a user-supplied absolute error bound of its
//! original; the bound is stored in the section header. Node records are
//! always `raw` — they are the traversal-hot ~3 % of a block.
//!
//! Every encoder falls back to `raw` whenever its output would not be
//! smaller, so a stored section is never larger than its decoded form —
//! an invariant the head parser enforces against corrupt inputs before any
//! decode allocation happens.

use crate::attr::AttributeType;
use bat_wire::{WireError, WireResult};

/// Hard ceiling on a single decoded treelet block. Parsed (untrusted)
/// counts that imply a larger block are rejected before any allocation.
pub const MAX_DECODED_BLOCK: usize = 1 << 28;

/// Section stored verbatim.
pub const TAG_RAW: u8 = 0;
/// XOR-delta + bitshuffle + zero-run RLE (lossless).
pub const TAG_SHUFFLE: u8 = 1;
/// Error-bounded bit-adaptive quantization (lossy, opt-in).
pub const TAG_QUANT: u8 = 2;
/// Largest valid codec tag.
pub const MAX_TAG: u8 = TAG_QUANT;

/// Default absolute error bound when `BAT_CODEC_ERROR_BOUND` is unset.
pub const DEFAULT_ERROR_BOUND: f64 = 1e-3;

/// Write-time codec selection for a whole file.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Codec {
    /// Version-1 format: verbatim treelet blocks, byte-identical to the
    /// seed encoder (pinned by golden hashes).
    V1,
    /// Version-2 format, lossless sections only.
    V2Lossless,
    /// Version-2 format with the error-bounded lossy path enabled for
    /// positions and attribute columns (absolute bound, stored per section).
    V2Lossy {
        /// Maximum absolute error of any decoded position coordinate or
        /// attribute value.
        error_bound: f64,
    },
}

impl Codec {
    /// Codec from `BAT_TREELET_CODEC` (`v1` | `v2-lossless` | `v2-lossy`;
    /// unset or unrecognized → `v1`) and `BAT_CODEC_ERROR_BOUND` (absolute
    /// bound for the lossy path, default `1e-3`).
    pub fn from_env() -> Codec {
        match std::env::var("BAT_TREELET_CODEC").as_deref() {
            Ok("v2-lossless") => Codec::V2Lossless,
            Ok("v2-lossy") => Codec::V2Lossy {
                error_bound: std::env::var("BAT_CODEC_ERROR_BOUND")
                    .ok()
                    .and_then(|s| s.parse::<f64>().ok())
                    .filter(|b| b.is_finite() && *b > 0.0)
                    .unwrap_or(DEFAULT_ERROR_BOUND),
            },
            _ => Codec::V1,
        }
    }

    /// True for either v2 variant.
    pub fn is_v2(&self) -> bool {
        !matches!(self, Codec::V1)
    }

    /// Stable name (the `BAT_TREELET_CODEC` spelling).
    pub fn name(&self) -> &'static str {
        match self {
            Codec::V1 => "v1",
            Codec::V2Lossless => "v2-lossless",
            Codec::V2Lossy { .. } => "v2-lossy",
        }
    }
}

/// What kind of section is being coded; determines record/word geometry
/// and which tags are legal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SectionKind {
    /// Node records (always raw); the record stride is schema-dependent.
    Nodes,
    /// Positions: 12-byte records of three `f32` lanes.
    Positions,
    /// One attribute column of the given element type.
    Attr(AttributeType),
}

impl SectionKind {
    /// `(record, word)` byte strides for the delta/shuffle pipeline.
    fn geometry(&self) -> Option<(usize, usize)> {
        match self {
            SectionKind::Nodes => None,
            SectionKind::Positions => Some((12, 4)),
            SectionKind::Attr(t) => Some((t.size(), t.size())),
        }
    }
}

// ---------------------------------------------------------------------------
// Lossless pipeline: XOR-delta → bitshuffle → zero-run RLE
// ---------------------------------------------------------------------------

/// XOR every `record`-byte record with its predecessor, in place (last to
/// first, so decode is a forward prefix pass). Morton-adjacent records
/// differ in few bits, so this clears most of each record.
pub fn xor_delta_encode(data: &mut [u8], record: usize) {
    debug_assert!(record > 0 && data.len().is_multiple_of(record));
    let n = data.len() / record;
    for r in (1..n).rev() {
        let (prev, cur) = data.split_at_mut(r * record);
        let prev = &prev[(r - 1) * record..];
        for k in 0..record {
            cur[k] ^= prev[k];
        }
    }
}

/// Inverse of [`xor_delta_encode`].
pub fn xor_delta_decode(data: &mut [u8], record: usize) {
    debug_assert!(record > 0 && data.len().is_multiple_of(record));
    let n = data.len() / record;
    for r in 1..n {
        let (prev, cur) = data.split_at_mut(r * record);
        let prev = &prev[(r - 1) * record..];
        for k in 0..record {
            cur[k] ^= prev[k];
        }
    }
}

/// Bit-plane transpose: element `e`'s bit `p` (of `elem * 8`) moves to
/// plane `p`, bit `e`. Planes are padded to whole bytes, so the output is
/// `elem * 8 * ceil(n / 8)` bytes for `n = data.len() / elem` elements.
pub fn bitshuffle(data: &[u8], elem: usize) -> Vec<u8> {
    debug_assert!(elem > 0 && data.len().is_multiple_of(elem));
    let n = data.len() / elem;
    let stride = n.div_ceil(8);
    let mut out = vec![0u8; elem * 8 * stride];
    for e in 0..n {
        let slot = e / 8;
        let bit = (e % 8) as u8;
        for b in 0..elem {
            let mut v = data[e * elem + b] as u32;
            let mut i = 0;
            while v != 0 {
                let tz = v.trailing_zeros() as usize;
                i += tz;
                out[(b * 8 + i) * stride + slot] |= 1 << bit;
                v >>= tz + 1;
                i += 1;
            }
        }
    }
    out
}

/// Inverse of [`bitshuffle`] for `n` elements of `elem` bytes; rejects a
/// shuffled buffer whose length does not match that geometry.
pub fn bitunshuffle(data: &[u8], elem: usize, n: usize) -> WireResult<Vec<u8>> {
    debug_assert!(elem > 0);
    let stride = n.div_ceil(8);
    if data.len() != elem * 8 * stride {
        return Err(WireError::BadLength {
            what: "bitshuffled section",
            len: data.len() as u64,
            remaining: elem * 8 * stride,
        });
    }
    let mut out = vec![0u8; n * elem];
    for plane in 0..elem * 8 {
        let b = plane / 8;
        let i = (plane % 8) as u8;
        let row = &data[plane * stride..(plane + 1) * stride];
        for (slot, &byte) in row.iter().enumerate() {
            if byte == 0 {
                continue;
            }
            let base = slot * 8;
            let mut v = byte as u32;
            let mut k = 0;
            while v != 0 {
                let tz = v.trailing_zeros() as usize;
                k += tz;
                let e = base + k;
                if e < n {
                    out[e * elem + b] |= 1 << i;
                }
                v >>= tz + 1;
                k += 1;
            }
        }
    }
    Ok(out)
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

fn get_varint(data: &[u8], mut i: usize) -> WireResult<(u64, usize)> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let &b = data.get(i).ok_or(WireError::Truncated {
            what: "rle varint",
            needed: i + 1,
            remaining: data.len(),
        })?;
        i += 1;
        if shift >= 64 {
            return Err(WireError::BadTag {
                what: "rle varint width",
                tag: shift as u64,
            });
        }
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok((v, i));
        }
        shift += 7;
    }
}

/// Zero-run RLE: an alternating stream of `varint zero_run`, `varint
/// literal_len`, literal bytes. Bitshuffled Morton-delta data is mostly
/// zero planes, which collapse to two-byte tokens.
pub fn rle_encode(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 8 + 16);
    let mut i = 0;
    while i < data.len() {
        let zs = i;
        while i < data.len() && data[i] == 0 {
            i += 1;
        }
        put_varint(&mut out, (i - zs) as u64);
        // Literal run: extend until a zero run long enough to pay for its
        // two-token overhead (≥ 4 bytes) or end of input.
        let ls = i;
        let mut j = i;
        while j < data.len() {
            if data[j] == 0 {
                let mut k = j;
                while k < data.len() && data[k] == 0 {
                    k += 1;
                }
                if k - j >= 4 || k == data.len() {
                    break;
                }
                j = k;
            } else {
                j += 1;
            }
        }
        put_varint(&mut out, (j - ls) as u64);
        out.extend_from_slice(&data[ls..j]);
        i = j;
    }
    out
}

/// Inverse of [`rle_encode`]. The output length is dictated by the caller
/// (derived from trusted head geometry, capped by [`MAX_DECODED_BLOCK`]);
/// runs claiming to exceed it are a typed error, so corrupt streams can
/// never over-allocate.
pub fn rle_decode(data: &[u8], expected_len: usize) -> WireResult<Vec<u8>> {
    let overflow = |len: u64| WireError::BadLength {
        what: "rle run length",
        len,
        remaining: expected_len,
    };
    let mut out = vec![0u8; expected_len];
    let mut w = 0usize;
    let mut i = 0usize;
    while i < data.len() {
        let (z, ni) = get_varint(data, i)?;
        i = ni;
        if z > (expected_len - w) as u64 {
            return Err(overflow(z));
        }
        w += z as usize; // the run is already zeroed
        let (l, ni) = get_varint(data, i)?;
        i = ni;
        if l > (expected_len - w) as u64 || l > (data.len() - i) as u64 {
            return Err(overflow(l));
        }
        out[w..w + l as usize].copy_from_slice(&data[i..i + l as usize]);
        w += l as usize;
        i += l as usize;
    }
    if w != expected_len {
        return Err(WireError::Truncated {
            what: "rle stream",
            needed: expected_len,
            remaining: w,
        });
    }
    Ok(out)
}

/// Lossless-encode one section. Returns `(tag, stored)`; falls back to
/// [`TAG_RAW`] whenever the pipeline does not shrink the bytes, so
/// `stored.len() <= raw.len()` always holds.
pub fn encode_lossless(raw: &[u8], record: usize, word: usize) -> (u8, Vec<u8>) {
    if raw.is_empty() {
        return (TAG_RAW, Vec::new());
    }
    let mut d = raw.to_vec();
    xor_delta_encode(&mut d, record);
    let comp = rle_encode(&bitshuffle(&d, word));
    if comp.len() < raw.len() {
        (TAG_SHUFFLE, comp)
    } else {
        (TAG_RAW, raw.to_vec())
    }
}

/// Decode a [`TAG_SHUFFLE`] section back to exactly `raw_len` bytes.
pub fn decode_lossless(
    stored: &[u8],
    record: usize,
    word: usize,
    raw_len: usize,
) -> WireResult<Vec<u8>> {
    if !raw_len.is_multiple_of(record) || !record.is_multiple_of(word) {
        return Err(WireError::BadLength {
            what: "shuffle section geometry",
            len: raw_len as u64,
            remaining: record,
        });
    }
    let n_words = raw_len / word;
    let shuf_len = word * 8 * n_words.div_ceil(8);
    let shuffled = rle_decode(stored, shuf_len)?;
    let mut out = bitunshuffle(&shuffled, word, n_words)?;
    xor_delta_decode(&mut out, record);
    Ok(out)
}

// ---------------------------------------------------------------------------
// Lossy pipeline: error-bounded bit-adaptive quantization
// ---------------------------------------------------------------------------

struct BitWriter {
    out: Vec<u8>,
    acc: u64,
    nbits: u32,
}

impl BitWriter {
    fn new(cap: usize) -> BitWriter {
        BitWriter {
            out: Vec::with_capacity(cap),
            acc: 0,
            nbits: 0,
        }
    }

    fn push(&mut self, v: u64, bits: u32) {
        debug_assert!(bits <= 32);
        self.acc |= v << self.nbits;
        self.nbits += bits;
        while self.nbits >= 8 {
            self.out.push((self.acc & 0xff) as u8);
            self.acc >>= 8;
            self.nbits -= 8;
        }
    }

    fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.out.push((self.acc & 0xff) as u8);
        }
        self.out
    }
}

struct BitReader<'a> {
    data: &'a [u8],
    bitpos: usize,
}

impl<'a> BitReader<'a> {
    fn new(data: &'a [u8]) -> BitReader<'a> {
        BitReader { data, bitpos: 0 }
    }

    fn read(&mut self, bits: u32) -> WireResult<u64> {
        debug_assert!(bits <= 32);
        let end = self.bitpos + bits as usize;
        if end > self.data.len() * 8 {
            return Err(WireError::Truncated {
                what: "quantized bitstream",
                needed: end.div_ceil(8),
                remaining: self.data.len(),
            });
        }
        let mut v = 0u64;
        let mut got = 0u32;
        while got < bits {
            let byte = self.data[self.bitpos / 8] as u64;
            let off = (self.bitpos % 8) as u32;
            let take = (8 - off).min(bits - got);
            v |= ((byte >> off) & ((1u64 << take) - 1)) << got;
            got += take;
            self.bitpos += take as usize;
        }
        Ok(v)
    }
}

/// Plan for one quantized column: grid origin/extent and bit width.
struct QuantPlan {
    lo: f64,
    hi: f64,
    bits: u32,
}

fn quant_step(lo: f64, hi: f64, bits: u32) -> f64 {
    if bits == 0 {
        0.0
    } else {
        (hi - lo) / ((1u64 << bits) - 1) as f64
    }
}

fn reconstruct(lo: f64, step: f64, q: u64, narrow_f32: bool) -> f64 {
    let v = lo + q as f64 * step;
    if narrow_f32 {
        (v as f32) as f64
    } else {
        v
    }
}

/// Pick the narrowest bit width whose decoded values all land within
/// `bound` of the originals (bit-*adaptive*: tight blocks take few bits).
/// Returns the plan and quantized values, or `None` when no width ≤ 32
/// satisfies the bound (non-finite inputs, or `f32` targets whose own
/// rounding exceeds the bound) — the caller then falls back to lossless.
fn plan_quant(vals: &[f64], bound: f64, narrow_f32: bool) -> Option<(QuantPlan, Vec<u64>)> {
    if !(bound.is_finite() && bound > 0.0) || vals.iter().any(|v| !v.is_finite()) {
        return None;
    }
    let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let (lo, hi) = if vals.is_empty() {
        (0.0, 0.0)
    } else {
        (lo, hi)
    };
    // First candidate from the bound itself: a grid of step 2·bound needs
    // ceil((hi-lo) / (2·bound)) intervals; verification bumps from there.
    let want = ((hi - lo) / (2.0 * bound)).ceil().max(1.0);
    let mut bits = if hi > lo {
        (want.log2().ceil() as u32).max(1)
    } else {
        0
    };
    'widths: while bits <= 32 {
        let step = quant_step(lo, hi, bits);
        let mut qs = Vec::with_capacity(vals.len());
        for &v in vals {
            let q = if step == 0.0 {
                0u64
            } else {
                (((v - lo) / step).round() as u64).min((1u64 << bits) - 1)
            };
            if (reconstruct(lo, step, q, narrow_f32) - v).abs() > bound {
                if bits == 0 || bits == 32 {
                    return None;
                }
                bits += 1;
                continue 'widths;
            }
            qs.push(q);
        }
        return Some((QuantPlan { lo, hi, bits }, qs));
    }
    None
}

/// Quantized attribute section payload:
/// `bound f64 | lo f64 | hi f64 | bits u8 | packed values`.
const QUANT_ATTR_HEADER: usize = 25;

/// Encode an attribute column under `bound`; `None` falls back to lossless
/// (bound unsatisfiable, or the quantized form would not be smaller).
pub fn encode_quant_attr(raw: &[u8], dtype: AttributeType, bound: f64) -> Option<Vec<u8>> {
    let w = dtype.size();
    debug_assert!(raw.len().is_multiple_of(w));
    let vals: Vec<f64> = raw
        .chunks_exact(w)
        .map(|c| match dtype {
            AttributeType::F32 => f32::from_le_bytes(c.try_into().unwrap()) as f64,
            AttributeType::F64 => f64::from_le_bytes(c.try_into().unwrap()),
        })
        .collect();
    let narrow = dtype == AttributeType::F32;
    let (plan, qs) = plan_quant(&vals, bound, narrow)?;
    let packed_len = (vals.len() * plan.bits as usize).div_ceil(8);
    if QUANT_ATTR_HEADER + packed_len >= raw.len() {
        return None;
    }
    let mut out = Vec::with_capacity(QUANT_ATTR_HEADER + packed_len);
    out.extend_from_slice(&bound.to_le_bytes());
    out.extend_from_slice(&plan.lo.to_le_bytes());
    out.extend_from_slice(&plan.hi.to_le_bytes());
    out.push(plan.bits as u8);
    let mut bw = BitWriter::new(packed_len);
    for &q in &qs {
        bw.push(q, plan.bits);
    }
    out.extend_from_slice(&bw.finish());
    Some(out)
}

fn get_f64(stored: &[u8], off: usize, what: &'static str) -> WireResult<f64> {
    let end = off + 8;
    if end > stored.len() {
        return Err(WireError::Truncated {
            what,
            needed: end,
            remaining: stored.len(),
        });
    }
    let v = f64::from_le_bytes(stored[off..end].try_into().expect("len 8"));
    if !v.is_finite() {
        return Err(WireError::BadTag {
            what,
            tag: v.to_bits(),
        });
    }
    Ok(v)
}

/// Decode a quantized attribute section of `n` values back to raw bytes.
pub fn decode_quant_attr(stored: &[u8], dtype: AttributeType, n: usize) -> WireResult<Vec<u8>> {
    let lo = get_f64(stored, 8, "quant lo")?;
    let hi = get_f64(stored, 16, "quant hi")?;
    let bits = *stored.get(24).ok_or(WireError::Truncated {
        what: "quant bit width",
        needed: QUANT_ATTR_HEADER,
        remaining: stored.len(),
    })? as u32;
    if bits > 32 {
        return Err(WireError::BadTag {
            what: "quant bit width",
            tag: bits as u64,
        });
    }
    let step = quant_step(lo, hi, bits);
    let mut br = BitReader::new(&stored[QUANT_ATTR_HEADER..]);
    let w = dtype.size();
    let mut out = Vec::with_capacity(n * w);
    for _ in 0..n {
        let v = lo + br.read(bits)? as f64 * step;
        match dtype {
            AttributeType::F32 => out.extend_from_slice(&(v as f32).to_le_bytes()),
            AttributeType::F64 => out.extend_from_slice(&v.to_le_bytes()),
        }
    }
    Ok(out)
}

/// Quantized positions payload:
/// `bound f64 | (lo, hi) f64 per axis | bits u8 per axis | packed x, y, z`.
const QUANT_POS_HEADER: usize = 8 + 48 + 3;

/// Encode a positions section (12-byte `f32` triples) under `bound`,
/// independently per axis; `None` falls back to lossless.
pub fn encode_quant_positions(raw: &[u8], bound: f64) -> Option<Vec<u8>> {
    debug_assert!(raw.len().is_multiple_of(12));
    let n = raw.len() / 12;
    let axis_vals = |a: usize| -> Vec<f64> {
        (0..n)
            .map(|i| {
                let off = i * 12 + a * 4;
                f32::from_le_bytes(raw[off..off + 4].try_into().unwrap()) as f64
            })
            .collect()
    };
    let mut plans = Vec::with_capacity(3);
    let mut packed_bits = 0usize;
    for a in 0..3 {
        let (plan, qs) = plan_quant(&axis_vals(a), bound, true)?;
        packed_bits += n * plan.bits as usize;
        plans.push((plan, qs));
    }
    let total = QUANT_POS_HEADER + packed_bits.div_ceil(8) + 2;
    if total >= raw.len() {
        return None;
    }
    let mut out = Vec::with_capacity(total);
    out.extend_from_slice(&bound.to_le_bytes());
    for (plan, _) in &plans {
        out.extend_from_slice(&plan.lo.to_le_bytes());
        out.extend_from_slice(&plan.hi.to_le_bytes());
    }
    for (plan, _) in &plans {
        out.push(plan.bits as u8);
    }
    // Axes are packed as separate planes (x block, then y, then z), each
    // byte-aligned so a corrupt width in one axis cannot shift another.
    for (plan, qs) in &plans {
        let mut bw = BitWriter::new((n * plan.bits as usize).div_ceil(8));
        for &q in qs {
            bw.push(q, plan.bits);
        }
        out.extend_from_slice(&bw.finish());
    }
    Some(out)
}

/// Decode a quantized positions section of `n` particles.
pub fn decode_quant_positions(stored: &[u8], n: usize) -> WireResult<Vec<u8>> {
    let mut plans = Vec::with_capacity(3);
    for a in 0..3 {
        let lo = get_f64(stored, 8 + a * 16, "quant position lo")?;
        let hi = get_f64(stored, 16 + a * 16, "quant position hi")?;
        plans.push((lo, hi));
    }
    if stored.len() < QUANT_POS_HEADER {
        return Err(WireError::Truncated {
            what: "quant position header",
            needed: QUANT_POS_HEADER,
            remaining: stored.len(),
        });
    }
    let mut out = vec![0u8; n * 12];
    let mut off = QUANT_POS_HEADER;
    for (a, &(lo, hi)) in plans.iter().enumerate() {
        let bits = stored[56 + a] as u32;
        if bits > 32 {
            return Err(WireError::BadTag {
                what: "quant bit width",
                tag: bits as u64,
            });
        }
        let plane_len = (n * bits as usize).div_ceil(8);
        if off + plane_len > stored.len() {
            return Err(WireError::Truncated {
                what: "quant position plane",
                needed: off + plane_len,
                remaining: stored.len(),
            });
        }
        let step = quant_step(lo, hi, bits);
        let mut br = BitReader::new(&stored[off..off + plane_len]);
        for i in 0..n {
            let v = (lo + br.read(bits)? as f64 * step) as f32;
            out[i * 12 + a * 4..i * 12 + a * 4 + 4].copy_from_slice(&v.to_le_bytes());
        }
        off += plane_len;
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Section- and block-level entry points
// ---------------------------------------------------------------------------

/// Encode one section under the file codec. Node records are always raw;
/// positions and attributes go through the lossless pipeline, with the
/// quantizer tried first when the codec is lossy. The returned bytes are
/// never longer than `raw`.
pub fn encode_section(kind: SectionKind, raw: &[u8], codec: Codec) -> (u8, Vec<u8>) {
    let Some((record, word)) = kind.geometry() else {
        return (TAG_RAW, raw.to_vec());
    };
    if let Codec::V2Lossy { error_bound } = codec {
        let quant = match kind {
            SectionKind::Positions => encode_quant_positions(raw, error_bound),
            SectionKind::Attr(t) => encode_quant_attr(raw, t, error_bound),
            SectionKind::Nodes => None,
        };
        if let Some(stored) = quant {
            debug_assert!(stored.len() < raw.len());
            return (TAG_QUANT, stored);
        }
    }
    encode_lossless(raw, record, word)
}

/// Decode one stored section back to exactly `raw_len` bytes (`num_points`
/// sizes the quantized paths). Unknown tags, tags illegal for the section
/// kind, and any length mismatch are typed errors.
pub fn decode_section(
    kind: SectionKind,
    tag: u8,
    stored: &[u8],
    num_points: usize,
    raw_len: usize,
) -> WireResult<Vec<u8>> {
    let decoded = match (tag, kind) {
        (TAG_RAW, _) => {
            if stored.len() != raw_len {
                return Err(WireError::BadLength {
                    what: "raw section",
                    len: stored.len() as u64,
                    remaining: raw_len,
                });
            }
            stored.to_vec()
        }
        (TAG_SHUFFLE, SectionKind::Positions) => decode_lossless(stored, 12, 4, raw_len)?,
        (TAG_SHUFFLE, SectionKind::Attr(t)) => {
            decode_lossless(stored, t.size(), t.size(), raw_len)?
        }
        (TAG_QUANT, SectionKind::Positions) => decode_quant_positions(stored, num_points)?,
        (TAG_QUANT, SectionKind::Attr(t)) => decode_quant_attr(stored, t, num_points)?,
        _ => {
            return Err(WireError::BadTag {
                what: "section codec tag",
                tag: tag as u64,
            })
        }
    };
    if decoded.len() != raw_len {
        return Err(WireError::BadLength {
            what: "decoded section",
            len: decoded.len() as u64,
            remaining: raw_len,
        });
    }
    Ok(decoded)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pos_bytes(pts: &[(f32, f32, f32)]) -> Vec<u8> {
        let mut raw = Vec::with_capacity(pts.len() * 12);
        for &(x, y, z) in pts {
            raw.extend_from_slice(&x.to_le_bytes());
            raw.extend_from_slice(&y.to_le_bytes());
            raw.extend_from_slice(&z.to_le_bytes());
        }
        raw
    }

    #[test]
    fn rle_roundtrip() {
        let cases: Vec<Vec<u8>> = vec![
            vec![],
            vec![0; 100],
            vec![7; 100],
            (0..=255).collect(),
            [vec![0; 50], vec![3, 0, 0, 1], vec![0; 9]].concat(),
        ];
        for data in cases {
            let enc = rle_encode(&data);
            assert_eq!(rle_decode(&enc, data.len()).unwrap(), data);
        }
    }

    #[test]
    fn rle_rejects_oversized_runs() {
        let mut enc = Vec::new();
        put_varint(&mut enc, u64::MAX); // zero run far beyond expected_len
        assert!(rle_decode(&enc, 16).is_err());
        // Literal longer than the remaining stream.
        let mut enc = Vec::new();
        put_varint(&mut enc, 0);
        put_varint(&mut enc, 1000);
        enc.push(1);
        assert!(rle_decode(&enc, 2000).is_err());
    }

    #[test]
    fn shuffle_roundtrip_positions() {
        let pts: Vec<(f32, f32, f32)> = (0..1000)
            .map(|i| {
                let t = i as f32 / 1000.0;
                (t, t * t, 1.0 - t)
            })
            .collect();
        let raw = pos_bytes(&pts);
        let (tag, stored) = encode_lossless(&raw, 12, 4);
        assert_eq!(tag, TAG_SHUFFLE, "smooth data must compress");
        assert!(stored.len() < raw.len());
        assert_eq!(decode_lossless(&stored, 12, 4, raw.len()).unwrap(), raw);
    }

    #[test]
    fn lossless_handles_degenerate_blocks() {
        for raw in [
            pos_bytes(&[]),
            pos_bytes(&[(0.25, 0.5, 0.75)]),
            pos_bytes(&vec![(0.1, 0.2, 0.3); 64]), // identical Morton duplicates
        ] {
            let (tag, stored) = encode_section(SectionKind::Positions, &raw, Codec::V2Lossless);
            assert!(stored.len() <= raw.len());
            let back = decode_section(
                SectionKind::Positions,
                tag,
                &stored,
                raw.len() / 12,
                raw.len(),
            )
            .unwrap();
            assert_eq!(back, raw);
        }
    }

    #[test]
    fn quantizer_respects_bound() {
        let vals: Vec<f64> = (0..500).map(|i| (i as f64 * 0.37).sin() * 40.0).collect();
        let raw: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        for bound in [1.0, 1e-2, 1e-5] {
            let stored = encode_quant_attr(&raw, AttributeType::F64, bound).unwrap();
            assert!(stored.len() < raw.len());
            let back = decode_quant_attr(&stored, AttributeType::F64, vals.len()).unwrap();
            for (b, v) in back.chunks_exact(8).zip(&vals) {
                let d = f64::from_le_bytes(b.try_into().unwrap());
                assert!((d - v).abs() <= bound, "|{d} - {v}| > {bound}");
            }
        }
    }

    #[test]
    fn quantizer_rejects_non_finite() {
        let raw: Vec<u8> = [1.0f64, f64::NAN, 3.0]
            .iter()
            .flat_map(|v| v.to_le_bytes())
            .collect();
        assert!(encode_quant_attr(&raw, AttributeType::F64, 0.1).is_none());
        // The section-level entry falls back to a lossless tag.
        let (tag, stored) = encode_section(
            SectionKind::Attr(AttributeType::F64),
            &raw,
            Codec::V2Lossy { error_bound: 0.1 },
        );
        assert_ne!(tag, TAG_QUANT);
        let back =
            decode_section(SectionKind::Attr(AttributeType::F64), tag, &stored, 3, 24).unwrap();
        assert_eq!(back, raw);
    }

    #[test]
    fn quant_positions_roundtrip_within_bound() {
        let pts: Vec<(f32, f32, f32)> = (0..800)
            .map(|i| {
                let t = i as f32 * 0.011;
                (t.sin(), t.cos() * 3.0, t * 0.5)
            })
            .collect();
        let raw = pos_bytes(&pts);
        let bound = 1e-3;
        let stored = encode_quant_positions(&raw, bound).unwrap();
        assert!(stored.len() < raw.len());
        let back = decode_quant_positions(&stored, pts.len()).unwrap();
        for (rec, &(x, y, z)) in back.chunks_exact(12).zip(&pts) {
            let f = |k: usize| f32::from_le_bytes(rec[k..k + 4].try_into().unwrap());
            for (got, want) in [(f(0), x), (f(4), y), (f(8), z)] {
                assert!((got as f64 - want as f64).abs() <= bound);
            }
        }
    }

    #[test]
    fn bad_tags_are_typed_errors() {
        assert!(decode_section(SectionKind::Positions, 99, &[], 0, 0).is_err());
        assert!(decode_section(SectionKind::Nodes, TAG_SHUFFLE, &[], 0, 0).is_err());
        assert!(decode_section(SectionKind::Positions, TAG_RAW, &[1, 2], 1, 12).is_err());
    }

    #[test]
    fn codec_env_parsing() {
        // from_env reads the live environment, so only exercise the
        // unset/default path here; the spellings are covered by name().
        assert_eq!(Codec::V1.name(), "v1");
        assert_eq!(Codec::V2Lossless.name(), "v2-lossless");
        assert!(Codec::V2Lossy { error_bound: 0.5 }.is_v2());
        assert!(!Codec::V1.is_v2());
    }
}
