//! Query specification and the quality → depth mapping (paper §V).
//!
//! A visualization read takes a desired quality level, an optional bounding
//! box, and a set of attribute range filters; the reader invokes a callback
//! for every matching point. Progressive reads additionally pass the
//! previously read quality so only the *new* points for the quality
//! increment are processed (§V-B).

use bat_geom::{Aabb, Vec3};

/// One attribute range filter: keep particles with `lo <= value <= hi`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttrFilter {
    /// Attribute index in the file's schema.
    pub attr: usize,
    /// Inclusive lower bound.
    pub lo: f64,
    /// Inclusive upper bound.
    pub hi: f64,
}

/// A visualization/analysis read request.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Spatial filter; `None` reads the whole domain.
    pub bounds: Option<Aabb>,
    /// Attribute filters, ANDed together.
    pub filters: Vec<AttrFilter>,
    /// Desired quality in `[0, 1]`: 0 loads nothing, 1 the entire data set.
    pub quality: f64,
    /// Previously loaded quality for progressive reads (0 = fresh read).
    pub prev_quality: f64,
    /// Degraded-mode opt-in: the caller accepts results from surviving
    /// shards when part of the fabric is unreachable. A partial result is
    /// always announced explicitly (the stream protocol's `PARTIAL` frame
    /// with served/total leaf counts) — never silently passed off as
    /// complete. Without this flag, shard exhaustion is a typed error.
    pub allow_partial: bool,
}

impl Default for Query {
    fn default() -> Query {
        Query::new()
    }
}

impl Query {
    /// A full-quality, unfiltered read.
    pub fn new() -> Query {
        Query {
            bounds: None,
            filters: Vec::new(),
            quality: 1.0,
            prev_quality: 0.0,
            allow_partial: false,
        }
    }

    /// Restrict to a bounding box.
    pub fn with_bounds(mut self, b: Aabb) -> Query {
        self.bounds = Some(b);
        self
    }

    /// Add an attribute range filter.
    pub fn with_filter(mut self, attr: usize, lo: f64, hi: f64) -> Query {
        self.filters.push(AttrFilter { attr, lo, hi });
        self
    }

    /// Set the desired quality level.
    pub fn with_quality(mut self, q: f64) -> Query {
        self.quality = q;
        self
    }

    /// Set the progressive baseline (quality already loaded).
    pub fn with_prev_quality(mut self, q: f64) -> Query {
        self.prev_quality = q;
        self
    }

    /// Opt into degraded-mode serving (see [`Query::allow_partial`]).
    pub fn with_allow_partial(mut self, allow: bool) -> Query {
        self.allow_partial = allow;
        self
    }

    /// Validate the query against a file schema with `num_attrs`
    /// attributes, normalizing what can be normalized and rejecting what
    /// cannot:
    ///
    /// - `quality`/`prev_quality` are clamped into `[0, 1]` (NaN → 0),
    ///   mirroring what [`quality_to_depth`] would do silently;
    /// - a filter whose `attr` is outside the schema, or whose range is
    ///   empty (`lo > hi`, or a NaN endpoint), is a typed error — such a
    ///   filter can never match, so accepting it silently returns an empty
    ///   result for what is almost certainly a caller bug.
    pub fn validated(mut self, num_attrs: usize) -> Result<Query, QueryError> {
        let clamp = |q: f64| if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        self.quality = clamp(self.quality);
        self.prev_quality = clamp(self.prev_quality);
        for f in &self.filters {
            if f.attr >= num_attrs {
                return Err(QueryError::AttrOutOfRange {
                    attr: f.attr,
                    num_attrs,
                });
            }
            if f.lo.is_nan() || f.hi.is_nan() || f.lo > f.hi {
                return Err(QueryError::EmptyFilterRange {
                    attr: f.attr,
                    lo: f.lo,
                    hi: f.hi,
                });
            }
        }
        Ok(self)
    }
}

/// A query that cannot be planned against the target schema.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// A filter names an attribute the file does not have.
    AttrOutOfRange {
        /// Offending attribute index.
        attr: usize,
        /// Number of attributes in the file's schema.
        num_attrs: usize,
    },
    /// A filter's range is empty (`lo > hi`) or has a NaN endpoint, so it
    /// can never match any particle.
    EmptyFilterRange {
        /// Attribute the filter targets.
        attr: usize,
        /// Lower bound as given.
        lo: f64,
        /// Upper bound as given.
        hi: f64,
    },
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::AttrOutOfRange { attr, num_attrs } => write!(
                f,
                "filter attribute {attr} out of range (file has {num_attrs} attributes)"
            ),
            QueryError::EmptyFilterRange { attr, lo, hi } => write!(
                f,
                "filter on attribute {attr} has an empty range [{lo}, {hi}]"
            ),
        }
    }
}

impl std::error::Error for QueryError {}

/// A matching point handed to the query callback.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointRecord<'a> {
    /// Particle position.
    pub position: Vec3,
    /// All attribute values of the point (f32 attributes widened), in the
    /// file's schema order.
    pub attrs: &'a [f64],
    /// Global particle index within the file.
    pub index: u64,
}

/// Map a quality level to `(depth, fraction)`: treelet nodes at depth less
/// than `depth` contribute all of their stored particles, nodes *at*
/// `depth` contribute `ceil(fraction × count)` of them, and deeper nodes
/// contribute nothing.
///
/// The paper remaps quality with a log scale because the particle count
/// roughly doubles per level (§V-B): quality `q` maps to an effective depth
/// `log2(1 + q·(2^(D+1) − 2))` over max depth `D`, so equal quality steps
/// feel like equal visual refinement steps.
pub fn quality_to_depth(quality: f64, max_depth: u32) -> (u32, f64) {
    let q = quality.clamp(0.0, 1.0);
    if q >= 1.0 {
        return (max_depth, 1.0);
    }
    if q <= 0.0 {
        return (0, 0.0);
    }
    if max_depth == 0 {
        // Single-level treelets: quality degenerates to a plain fraction.
        return (0, q);
    }
    let d = max_depth.min(60);
    let span = (1u64 << (d + 1)) as f64 - 2.0;
    let eff = (1.0 + q * span).log2();
    let depth = (eff.floor() as u32).min(max_depth);
    let frac = (eff - depth as f64).clamp(0.0, 1.0);
    (depth, frac)
}

/// Number of particles a node with `count` stored particles at `depth`
/// contributes under `(limit_depth, fraction)` from [`quality_to_depth`].
#[inline]
pub fn contribution(count: u32, depth: u32, limit_depth: u32, fraction: f64) -> u32 {
    if depth < limit_depth {
        count
    } else if depth == limit_depth {
        (count as f64 * fraction).ceil() as u32
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_extremes() {
        assert_eq!(quality_to_depth(0.0, 10), (0, 0.0));
        assert_eq!(quality_to_depth(1.0, 10), (10, 1.0));
        assert_eq!(quality_to_depth(2.0, 10), (10, 1.0)); // clamped
        assert_eq!(quality_to_depth(-1.0, 10), (0, 0.0)); // clamped
    }

    #[test]
    fn quality_monotonic_in_depth() {
        let mut prev = (0, 0.0);
        for i in 0..=100 {
            let q = i as f64 / 100.0;
            let (d, f) = quality_to_depth(q, 12);
            assert!(
                d > prev.0 || (d == prev.0 && f >= prev.1 - 1e-12),
                "quality must be monotone: {prev:?} -> {:?} at q={q}",
                (d, f)
            );
            prev = (d, f);
        }
    }

    #[test]
    fn log_remap_spreads_depths() {
        // The log remap should hit every depth across the quality range,
        // not jump straight to the deepest levels.
        let max = 8;
        let mut depths = std::collections::HashSet::new();
        for i in 0..=1000 {
            let (d, _) = quality_to_depth(i as f64 / 1000.0, max);
            depths.insert(d);
        }
        assert_eq!(depths.len() as u32, max + 1, "{depths:?}");
    }

    #[test]
    fn zero_depth_tree() {
        assert_eq!(quality_to_depth(0.5, 0), (0, 0.5));
        assert_eq!(quality_to_depth(1.0, 0), (0, 1.0));
    }

    #[test]
    fn contribution_rules() {
        assert_eq!(contribution(100, 2, 5, 0.3), 100); // above the limit depth
        assert_eq!(contribution(100, 5, 5, 0.3), 30); // at the limit
        assert_eq!(contribution(100, 5, 5, 0.0), 0);
        assert_eq!(contribution(100, 5, 5, 1.0), 100);
        assert_eq!(contribution(100, 7, 5, 0.9), 0); // below
        assert_eq!(contribution(7, 3, 3, 0.5), 4); // ceil
    }

    #[test]
    fn progressive_contributions_are_incremental() {
        // For q1 <= q2, a node's contribution under q1 never exceeds q2's.
        for max_depth in [0u32, 3, 8, 14] {
            for count in [1u32, 7, 128] {
                for depth in 0..=max_depth {
                    let mut prev = 0;
                    for i in 0..=50 {
                        let q = i as f64 / 50.0;
                        let (d, f) = quality_to_depth(q, max_depth);
                        let c = contribution(count, depth, d, f);
                        assert!(c >= prev, "contribution shrank at q={q}");
                        prev = c;
                    }
                    assert_eq!(prev, count, "q=1 must include everything");
                }
            }
        }
    }

    #[test]
    fn validated_clamps_quality_and_rejects_bad_filters() {
        let q = Query::new()
            .with_quality(3.5)
            .with_prev_quality(f64::NAN)
            .validated(4)
            .unwrap();
        assert_eq!(q.quality, 1.0);
        assert_eq!(q.prev_quality, 0.0);

        assert_eq!(
            Query::new().with_filter(4, 0.0, 1.0).validated(4),
            Err(QueryError::AttrOutOfRange {
                attr: 4,
                num_attrs: 4
            })
        );
        assert!(matches!(
            Query::new().with_filter(1, 2.0, 1.0).validated(4),
            Err(QueryError::EmptyFilterRange { attr: 1, .. })
        ));
        assert!(matches!(
            Query::new().with_filter(0, f64::NAN, 1.0).validated(4),
            Err(QueryError::EmptyFilterRange { .. })
        ));
        // lo == hi is a legal point query.
        assert!(Query::new().with_filter(0, 1.0, 1.0).validated(4).is_ok());
    }

    #[test]
    fn builder_pattern() {
        let q = Query::new()
            .with_bounds(Aabb::unit())
            .with_filter(2, -1.0, 1.0)
            .with_quality(0.5)
            .with_prev_quality(0.25);
        assert_eq!(q.filters.len(), 1);
        assert_eq!(q.quality, 0.5);
        assert_eq!(q.prev_quality, 0.25);
        assert!(q.bounds.is_some());
    }
}

impl Query {
    /// Serialize for shipping to a read aggregator (paper §IV-B uses the
    /// query mechanism for distributed in situ access).
    pub fn encode(&self, enc: &mut bat_wire::Encoder) {
        match &self.bounds {
            Some(b) => {
                enc.put_bool(true);
                for v in [b.min.x, b.min.y, b.min.z, b.max.x, b.max.y, b.max.z] {
                    enc.put_f32(v);
                }
            }
            None => enc.put_bool(false),
        }
        enc.put_u64(self.filters.len() as u64);
        for f in &self.filters {
            enc.put_u64(f.attr as u64);
            enc.put_f64(f.lo);
            enc.put_f64(f.hi);
        }
        enc.put_f64(self.quality);
        enc.put_f64(self.prev_quality);
        enc.put_bool(self.allow_partial);
    }

    /// Inverse of [`Query::encode`].
    pub fn decode(dec: &mut bat_wire::Decoder) -> bat_wire::WireResult<Query> {
        let bounds = if dec.get_bool("query has bounds")? {
            let mut v = [0.0f32; 6];
            for x in &mut v {
                *x = dec.get_f32("query bounds")?;
            }
            Some(Aabb::new(
                Vec3::new(v[0], v[1], v[2]),
                Vec3::new(v[3], v[4], v[5]),
            ))
        } else {
            None
        };
        let nf = dec.get_usize("query filter count")?;
        if nf > 1024 {
            return Err(bat_wire::WireError::BadLength {
                what: "query filter count",
                len: nf as u64,
                remaining: dec.remaining(),
            });
        }
        let mut filters = Vec::with_capacity(nf);
        for _ in 0..nf {
            filters.push(AttrFilter {
                attr: dec.get_usize("filter attr")?,
                lo: dec.get_f64("filter lo")?,
                hi: dec.get_f64("filter hi")?,
            });
        }
        let quality = dec.get_f64("query quality")?;
        let prev_quality = dec.get_f64("query prev quality")?;
        // Absent in streams written before degraded mode existed; absence
        // means the strict default.
        let allow_partial = if dec.remaining() > 0 {
            dec.get_bool("query allow partial")?
        } else {
            false
        };
        Ok(Query {
            bounds,
            filters,
            quality,
            prev_quality,
            allow_partial,
        })
    }
}

#[cfg(test)]
mod wire_tests {
    use super::*;

    #[test]
    fn query_roundtrip() {
        let q = Query::new()
            .with_bounds(Aabb::new(Vec3::ZERO, Vec3::ONE))
            .with_filter(2, -1.5, 3.25)
            .with_filter(0, 0.0, 9.0)
            .with_quality(0.7)
            .with_prev_quality(0.3);
        let mut e = bat_wire::Encoder::new();
        q.encode(&mut e);
        let buf = e.finish();
        let out = Query::decode(&mut bat_wire::Decoder::new(&buf)).unwrap();
        assert_eq!(out, q);
    }

    #[test]
    fn boundless_query_roundtrip() {
        let q = Query::new();
        let mut e = bat_wire::Encoder::new();
        q.encode(&mut e);
        let buf = e.finish();
        let out = Query::decode(&mut bat_wire::Decoder::new(&buf)).unwrap();
        assert_eq!(out, q);
    }

    #[test]
    fn truncated_query_rejected() {
        let q = Query::new().with_filter(0, 0.0, 1.0);
        let mut e = bat_wire::Encoder::new();
        q.encode(&mut e);
        let buf = e.finish();
        assert!(Query::decode(&mut bat_wire::Decoder::new(&buf[..5])).is_err());
    }
}
