//! The shallow tree: a radix k-d tree over merged Morton subprefixes
//! (paper §III-C1).
//!
//! Karras's construction builds one leaf per particle, which is far too fine
//! for a multiresolution layout. The BAT instead takes a *subprefix* of each
//! particle's Morton code (12 bits by default), merges equal subprefixes,
//! and builds the radix tree over the unique values. Each shallow leaf then
//! covers a contiguous run of the Morton-sorted particle array — the range a
//! treelet is built over.
//!
//! Because a node's key range shares a common bit prefix, its spatial cell
//! is recovered directly from the prefix (each bit halves the domain along
//! x, y, z in turn), so node bounds need no bottom-up pass.

use crate::radix::{NodeRef, RadixTree};
use bat_geom::{morton, Aabb};
use rayon::prelude::*;

/// One inner node of the shallow tree, with spatial bounds for culling.
#[derive(Debug, Clone, Copy)]
pub struct ShallowNode {
    /// Left child reference.
    pub left: NodeRef,
    /// Right child reference.
    pub right: NodeRef,
    /// Conservative cell bounds derived from the node's common prefix.
    pub bounds: Aabb,
    /// First covered leaf (inclusive).
    pub first_leaf: u32,
    /// Last covered leaf (inclusive).
    pub last_leaf: u32,
}

/// The shallow tree over an aggregator's Morton-sorted particles.
#[derive(Debug, Clone)]
pub struct ShallowTree {
    /// Subprefix length in bits used to merge codes.
    pub subprefix_bits: u32,
    /// Inner nodes; node 0 is the root when there is more than one leaf.
    pub nodes: Vec<ShallowNode>,
    /// Per-leaf particle range `[start, end)` in the sorted particle array.
    pub leaf_ranges: Vec<(u32, u32)>,
    /// Per-leaf conservative cell bounds (subprefix cell).
    pub leaf_bounds: Vec<Aabb>,
}

impl ShallowTree {
    /// Number of leaves (== number of treelets).
    pub fn num_leaves(&self) -> usize {
        self.leaf_ranges.len()
    }

    /// Root reference; `None` for an empty tree.
    pub fn root(&self) -> Option<NodeRef> {
        match self.leaf_ranges.len() {
            0 => None,
            1 => Some(NodeRef::Leaf(0)),
            _ => Some(NodeRef::Inner(0)),
        }
    }

    /// Build over the *sorted* Morton codes of all particles.
    ///
    /// `domain` must be the same bounds the codes were quantized against.
    pub fn build(sorted_codes: &[u64], subprefix_bits: u32, domain: &Aabb) -> ShallowTree {
        assert!(
            (1..=morton::CODE_BITS).contains(&subprefix_bits),
            "subprefix bits must be in 1..={}",
            morton::CODE_BITS
        );
        debug_assert!(sorted_codes.windows(2).all(|w| w[0] <= w[1]));
        if sorted_codes.is_empty() {
            return ShallowTree {
                subprefix_bits,
                nodes: Vec::new(),
                leaf_ranges: Vec::new(),
                leaf_bounds: Vec::new(),
            };
        }

        // Merge equal subprefixes into leaves: one (prefix, range) per run.
        let mut prefixes: Vec<u64> = Vec::new();
        let mut leaf_ranges: Vec<(u32, u32)> = Vec::new();
        let mut run_start = 0usize;
        let mut run_prefix = morton::subprefix(sorted_codes[0], subprefix_bits);
        for (i, &c) in sorted_codes.iter().enumerate().skip(1) {
            let p = morton::subprefix(c, subprefix_bits);
            if p != run_prefix {
                prefixes.push(run_prefix);
                leaf_ranges.push((run_start as u32, i as u32));
                run_start = i;
                run_prefix = p;
            }
        }
        prefixes.push(run_prefix);
        leaf_ranges.push((run_start as u32, sorted_codes.len() as u32));

        let leaf_bounds: Vec<Aabb> = prefixes
            .par_iter()
            .map(|&p| morton::subprefix_bounds(p, subprefix_bits, domain))
            .collect();

        // MSB-align the prefixes so the radix build's δ works on bit 63 down.
        let keys: Vec<u64> = prefixes
            .iter()
            .map(|&p| p << (64 - subprefix_bits))
            .collect();
        let radix = RadixTree::build(&keys);

        // Derive each inner node's cell bounds from its common prefix.
        let nodes: Vec<ShallowNode> = radix
            .nodes
            .par_iter()
            .map(|n| {
                let plen = n.prefix_len.min(subprefix_bits);
                let prefix = if plen == 0 {
                    0
                } else {
                    keys[n.first as usize] >> (64 - plen)
                };
                ShallowNode {
                    left: n.left,
                    right: n.right,
                    bounds: morton::subprefix_bounds(prefix, plen, domain),
                    first_leaf: n.first,
                    last_leaf: n.last,
                }
            })
            .collect();

        ShallowTree {
            subprefix_bits,
            nodes,
            leaf_ranges,
            leaf_bounds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bat_geom::rng::Xoshiro256;
    use bat_geom::Vec3;

    fn codes_for(points: &[Vec3], domain: &Aabb) -> Vec<u64> {
        let mut codes: Vec<u64> = points
            .iter()
            .map(|&p| morton::encode_point(p, domain))
            .collect();
        codes.sort_unstable();
        codes
    }

    #[test]
    fn empty_input() {
        let t = ShallowTree::build(&[], 12, &Aabb::unit());
        assert_eq!(t.num_leaves(), 0);
        assert!(t.root().is_none());
    }

    #[test]
    fn single_cluster_single_leaf() {
        // All particles inside one tiny cell share the 12-bit subprefix.
        let domain = Aabb::unit();
        let pts: Vec<Vec3> = (0..100)
            .map(|i| Vec3::new(0.5 + i as f32 * 1e-6, 0.5, 0.5))
            .collect();
        let t = ShallowTree::build(&codes_for(&pts, &domain), 12, &domain);
        assert_eq!(t.num_leaves(), 1);
        assert_eq!(t.root(), Some(NodeRef::Leaf(0)));
        assert_eq!(t.leaf_ranges[0], (0, 100));
    }

    #[test]
    fn leaves_partition_particles() {
        let domain = Aabb::unit();
        let mut rng = Xoshiro256::new(5);
        let pts: Vec<Vec3> = (0..5000)
            .map(|_| Vec3::new(rng.next_f32(), rng.next_f32(), rng.next_f32()))
            .collect();
        let codes = codes_for(&pts, &domain);
        let t = ShallowTree::build(&codes, 12, &domain);
        assert!(t.num_leaves() > 1);
        // Ranges are contiguous, disjoint, and cover everything.
        let mut expect = 0u32;
        for &(s, e) in &t.leaf_ranges {
            assert_eq!(s, expect);
            assert!(e > s);
            expect = e;
        }
        assert_eq!(expect as usize, codes.len());
    }

    #[test]
    fn leaf_bounds_contain_their_particles() {
        let domain = Aabb::new(Vec3::new(-2.0, 0.0, 1.0), Vec3::new(4.0, 3.0, 9.0));
        let mut rng = Xoshiro256::new(6);
        let mut pts: Vec<Vec3> = (0..3000)
            .map(|_| {
                Vec3::new(
                    rng.uniform_f32(-2.0, 4.0),
                    rng.uniform_f32(0.0, 3.0),
                    rng.uniform_f32(1.0, 9.0),
                )
            })
            .collect();
        // Sort points by code so leaf ranges index them directly.
        pts.sort_by_key(|&p| morton::encode_point(p, &domain));
        let codes: Vec<u64> = pts
            .iter()
            .map(|&p| morton::encode_point(p, &domain))
            .collect();
        let t = ShallowTree::build(&codes, 9, &domain);
        for (li, &(s, e)) in t.leaf_ranges.iter().enumerate() {
            // Cells are half-open along each axis; allow epsilon at the seam.
            let mut cell = t.leaf_bounds[li];
            let eps = 1e-4;
            cell.min = cell.min - Vec3::splat(eps);
            cell.max += Vec3::splat(eps);
            for p in &pts[s as usize..e as usize] {
                assert!(cell.contains_point(*p), "leaf {li}: {p:?} outside {cell:?}");
            }
        }
    }

    #[test]
    fn inner_bounds_contain_children() {
        let domain = Aabb::unit();
        let mut rng = Xoshiro256::new(8);
        let pts: Vec<Vec3> = (0..4000)
            .map(|_| Vec3::new(rng.next_f32(), rng.next_f32(), rng.next_f32()))
            .collect();
        let t = ShallowTree::build(&codes_for(&pts, &domain), 12, &domain);
        let eps = Vec3::splat(1e-5);
        for n in &t.nodes {
            let mut grown = n.bounds;
            grown.min = grown.min - eps;
            grown.max += eps;
            for c in [n.left, n.right] {
                let cb = match c {
                    NodeRef::Leaf(i) => t.leaf_bounds[i as usize],
                    NodeRef::Inner(i) => t.nodes[i as usize].bounds,
                };
                assert!(grown.contains_box(&cb), "parent {grown:?} child {cb:?}");
            }
        }
    }

    #[test]
    fn more_bits_more_leaves() {
        let domain = Aabb::unit();
        let mut rng = Xoshiro256::new(9);
        let pts: Vec<Vec3> = (0..20_000)
            .map(|_| Vec3::new(rng.next_f32(), rng.next_f32(), rng.next_f32()))
            .collect();
        let codes = codes_for(&pts, &domain);
        let l6 = ShallowTree::build(&codes, 6, &domain).num_leaves();
        let l12 = ShallowTree::build(&codes, 12, &domain).num_leaves();
        let l15 = ShallowTree::build(&codes, 15, &domain).num_leaves();
        assert!(l6 < l12, "{l6} vs {l12}");
        assert!(l12 < l15, "{l12} vs {l15}");
        assert!(l6 <= 64);
        assert!(l12 <= 4096);
    }
}
