//! Shared bitmap dictionary with 16-bit IDs (paper §III-C3).
//!
//! Attribute bitmaps repeat heavily across tree nodes (spatially correlated
//! attributes produce few distinct bin patterns), so the compacted file
//! stores each *unique* bitmap once and replaces per-node bitmaps with
//! 16-bit dictionary IDs — a 2× reduction over storing raw `u32` bitmaps,
//! on top of the dedup itself.
//!
//! 16-bit IDs cap the dictionary at 65 536 entries, which the paper found
//! "more than sufficient in practice". We keep the same bound but degrade
//! gracefully instead of failing: entry 0 is reserved for the all-ones
//! bitmap, and once the dictionary is full, new bitmaps intern to entry 0.
//! That widens those nodes' filters (more false positives, pruned by the
//! exact check) but can never cause a false negative.

use crate::bitmap::Bitmap32;
use bat_wire::{Decoder, Encoder, WireResult};
use std::collections::HashMap;

/// Maximum number of dictionary entries (16-bit IDs).
pub const MAX_ENTRIES: usize = u16::MAX as usize + 1;

/// The ID every overflow bitmap maps to (the reserved all-ones entry).
pub const OVERFLOW_ID: u16 = 0;

/// An interning dictionary of unique 32-bit bitmaps.
#[derive(Debug, Clone)]
pub struct BitmapDictionary {
    entries: Vec<Bitmap32>,
    index: HashMap<u32, u16>,
    /// Number of interns that overflowed to the all-ones entry.
    overflowed: u64,
}

impl Default for BitmapDictionary {
    fn default() -> Self {
        Self::new()
    }
}

impl BitmapDictionary {
    /// A dictionary holding only the reserved all-ones entry.
    pub fn new() -> BitmapDictionary {
        let mut d = BitmapDictionary {
            entries: Vec::new(),
            index: HashMap::new(),
            overflowed: 0,
        };
        let id = d.intern(Bitmap32::FULL);
        debug_assert_eq!(id, OVERFLOW_ID);
        d
    }

    /// Intern a bitmap, returning its ID. Duplicate bitmaps share an ID; a
    /// full dictionary interns new bitmaps to the conservative
    /// [`OVERFLOW_ID`].
    pub fn intern(&mut self, bm: Bitmap32) -> u16 {
        if let Some(&id) = self.index.get(&bm.0) {
            return id;
        }
        if self.entries.len() >= MAX_ENTRIES {
            self.overflowed += 1;
            return OVERFLOW_ID;
        }
        let id = self.entries.len() as u16;
        self.entries.push(bm);
        self.index.insert(bm.0, id);
        id
    }

    /// Look up a bitmap by ID.
    #[inline]
    pub fn get(&self, id: u16) -> Bitmap32 {
        self.entries[id as usize]
    }

    /// Look up a bitmap by an ID read from untrusted file bytes; `None` if
    /// the ID is out of range for this dictionary.
    #[inline]
    pub fn try_get(&self, id: u16) -> Option<Bitmap32> {
        self.entries.get(id as usize).copied()
    }

    /// Number of entries (including the reserved all-ones entry).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Never true: entry 0 (all-ones) always exists.
    pub fn is_empty(&self) -> bool {
        false // entry 0 always exists
    }

    /// How many interns overflowed to the all-ones fallback.
    pub fn overflow_count(&self) -> u64 {
        self.overflowed
    }

    /// Serialized byte size in the compacted file.
    pub fn byte_size(&self) -> usize {
        8 + self.entries.len() * 4
    }

    /// Serialize the entry table.
    pub fn encode(&self, enc: &mut Encoder) {
        let raw: Vec<u32> = self.entries.iter().map(|b| b.0).collect();
        enc.put_u32_slice(&raw);
    }

    /// Inverse of [`BitmapDictionary::encode`]; rebuilds the intern index.
    pub fn decode(dec: &mut Decoder) -> WireResult<BitmapDictionary> {
        let raw = dec.get_u32_vec("bitmap dictionary")?;
        let entries: Vec<Bitmap32> = raw.iter().map(|&v| Bitmap32(v)).collect();
        let index = raw
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as u16))
            .collect();
        Ok(BitmapDictionary {
            entries,
            index,
            overflowed: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedups() {
        let mut d = BitmapDictionary::new();
        let a = d.intern(Bitmap32(0b1010));
        let b = d.intern(Bitmap32(0b1010));
        let c = d.intern(Bitmap32(0b0101));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(d.len(), 3); // all-ones + two uniques
        assert_eq!(d.get(a), Bitmap32(0b1010));
    }

    #[test]
    fn reserved_all_ones() {
        let mut d = BitmapDictionary::new();
        assert_eq!(d.get(OVERFLOW_ID), Bitmap32::FULL);
        // Interning all-ones returns the reserved slot.
        assert_eq!(d.intern(Bitmap32::FULL), OVERFLOW_ID);
    }

    #[test]
    fn overflow_degrades_to_full() {
        let mut d = BitmapDictionary::new();
        // Fill the dictionary (entry 0 is taken).
        for i in 0..(MAX_ENTRIES - 1) as u32 {
            // Skip u32::MAX which is already interned as entry 0.
            d.intern(Bitmap32(i));
        }
        assert_eq!(d.len(), MAX_ENTRIES);
        // A brand new bitmap must intern to the conservative fallback.
        let id = d.intern(Bitmap32(0xf0f0_0001));
        assert_eq!(id, OVERFLOW_ID);
        assert_eq!(d.overflow_count(), 1);
        // Existing entries are still found exactly.
        let id42 = d.intern(Bitmap32(42));
        assert_eq!(d.get(id42), Bitmap32(42));
    }

    #[test]
    fn roundtrip() {
        let mut d = BitmapDictionary::new();
        d.intern(Bitmap32(1));
        d.intern(Bitmap32(2));
        let mut e = Encoder::new();
        d.encode(&mut e);
        let buf = e.finish();
        let out = BitmapDictionary::decode(&mut Decoder::new(&buf)).unwrap();
        assert_eq!(out.len(), d.len());
        assert_eq!(out.get(1), Bitmap32(1));
        assert_eq!(out.get(2), Bitmap32(2));
        // The decoded index still interns consistently.
        let mut out = out;
        assert_eq!(out.intern(Bitmap32(2)), 2);
    }

    #[test]
    fn byte_size_accounting() {
        let mut d = BitmapDictionary::new();
        d.intern(Bitmap32(9));
        assert_eq!(d.byte_size(), 8 + 2 * 4);
    }
}
