//! Karras-style parallel bottom-up radix tree construction.
//!
//! Implements the algorithm of Karras, "Maximizing Parallelism in the
//! Construction of BVHs, Octrees, and k-d Trees" (HPG 2012), which the paper
//! uses for its shallow-tree build (§III-C1): given a sorted array of
//! distinct keys, every internal node of the binary radix tree is computed
//! *independently* (hence in parallel) by locating the range of keys sharing
//! its prefix via the δ (common-prefix-length) function.
//!
//! Keys must be sorted, distinct, and MSB-aligned in a `u64` (callers shift
//! subprefixes up so `leading_zeros` of the XOR gives the common prefix
//! length directly). The radix tree over Morton keys *is* a k-d tree: the
//! first differing bit after a node's common prefix determines the split
//! axis (bit position mod 3) and plane.

use rayon::prelude::*;

/// Reference to a child node: inner index or leaf index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeRef {
    /// Index into the internal-node array.
    Inner(u32),
    /// Index into the leaf array.
    Leaf(u32),
}

impl NodeRef {
    /// Pack into a `u32` for compact storage: high bit set = leaf.
    pub fn pack(self) -> u32 {
        match self {
            NodeRef::Inner(i) => {
                debug_assert!(i < 1 << 31);
                i
            }
            NodeRef::Leaf(i) => {
                debug_assert!(i < 1 << 31);
                i | (1 << 31)
            }
        }
    }

    /// Unpack from the `u32` form.
    pub fn unpack(v: u32) -> NodeRef {
        if v & (1 << 31) != 0 {
            NodeRef::Leaf(v & !(1 << 31))
        } else {
            NodeRef::Inner(v)
        }
    }
}

/// One internal node of the radix tree.
#[derive(Debug, Clone, Copy)]
pub struct RadixNode {
    /// Left child (covers the lower key subrange).
    pub left: NodeRef,
    /// Right child.
    pub right: NodeRef,
    /// First leaf index covered by this node (inclusive).
    pub first: u32,
    /// Last leaf index covered (inclusive).
    pub last: u32,
    /// Length in bits of the common prefix shared by all covered keys.
    pub prefix_len: u32,
}

/// A binary radix tree over `m` distinct sorted keys: `m - 1` internal
/// nodes (node 0 is the root when `m > 1`).
#[derive(Debug, Clone)]
pub struct RadixTree {
    /// Internal nodes; node 0 is the root when `num_leaves > 1`.
    pub nodes: Vec<RadixNode>,
    /// Number of leaves (== number of input keys).
    pub num_leaves: usize,
}

impl RadixTree {
    /// The root reference (a leaf when there is a single key).
    pub fn root(&self) -> NodeRef {
        if self.num_leaves == 1 {
            NodeRef::Leaf(0)
        } else {
            NodeRef::Inner(0)
        }
    }

    /// Build the tree over MSB-aligned, sorted, distinct keys.
    ///
    /// Panics (debug) if keys are unsorted or duplicated.
    pub fn build(keys: &[u64]) -> RadixTree {
        let m = keys.len();
        assert!(m >= 1, "radix tree needs at least one key");
        debug_assert!(
            keys.windows(2).all(|w| w[0] < w[1]),
            "keys must be sorted and distinct"
        );
        if m == 1 {
            return RadixTree {
                nodes: Vec::new(),
                num_leaves: 1,
            };
        }

        // Karras: every internal node is independent. Chunked ranges (at
        // least `MIN_NODES_PER_TASK` nodes per task) keep the engine from
        // thrashing on per-element tasks — each node is only a few dozen
        // instructions, far below a profitable task size.
        let nodes: Vec<RadixNode> = (0..m - 1)
            .into_par_iter()
            .with_min_len(MIN_NODES_PER_TASK)
            .map(|i| karras_node(keys, i))
            .collect();

        RadixTree {
            nodes,
            num_leaves: m,
        }
    }
}

/// Smallest node count worth a pool task (see [`RadixTree::build`]).
const MIN_NODES_PER_TASK: usize = 128;

/// Compute internal node `i` of the radix tree over sorted distinct
/// `keys` — the body of Karras' parallel loop, independent per node.
fn karras_node(keys: &[u64], i: usize) -> RadixNode {
    let m = keys.len();
    // δ(i, j): common prefix length of keys i and j, -1 out of range.
    let delta = |i: usize, j: isize| -> i64 {
        if j < 0 || j >= m as isize {
            return -1;
        }
        let a = keys[i];
        let b = keys[j as usize];
        debug_assert_ne!(a, b);
        (a ^ b).leading_zeros() as i64
    };

    let ii = i as isize;
    // Direction of the range containing i.
    let d: isize = if delta(i, ii + 1) > delta(i, ii - 1) {
        1
    } else {
        -1
    };
    let delta_min = delta(i, ii - d);
    // Find an upper bound for the range length by doubling.
    let mut lmax: isize = 2;
    while delta(i, ii + lmax * d) > delta_min {
        lmax *= 2;
    }
    // Binary-search the exact length.
    let mut l: isize = 0;
    let mut t = lmax / 2;
    while t >= 1 {
        if delta(i, ii + (l + t) * d) > delta_min {
            l += t;
        }
        t /= 2;
    }
    let j = ii + l * d;
    let delta_node = delta(i, j);
    // Binary-search the split position.
    let mut s: isize = 0;
    let mut t = l;
    loop {
        t = (t + 1) / 2;
        if delta(i, ii + (s + t) * d) > delta_node {
            s += t;
        }
        if t == 1 {
            break;
        }
    }
    let gamma = (ii + s * d + d.min(0)) as usize;
    let first = ii.min(j) as u32;
    let last = ii.max(j) as u32;
    let left = if first as usize == gamma {
        NodeRef::Leaf(gamma as u32)
    } else {
        NodeRef::Inner(gamma as u32)
    };
    let right = if last as usize == gamma + 1 {
        NodeRef::Leaf(gamma as u32 + 1)
    } else {
        NodeRef::Inner(gamma as u32 + 1)
    };
    RadixNode {
        left,
        right,
        first,
        last,
        prefix_len: delta_node as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bat_geom::rng::SplitMix64;
    use std::collections::HashSet;

    /// Check structural invariants: every leaf referenced exactly once,
    /// every non-root inner referenced exactly once, ranges nest.
    fn check_invariants(tree: &RadixTree) {
        let m = tree.num_leaves;
        if m == 1 {
            assert!(tree.nodes.is_empty());
            return;
        }
        assert_eq!(tree.nodes.len(), m - 1);
        let mut leaf_refs = HashSet::new();
        let mut inner_refs = HashSet::new();
        for n in &tree.nodes {
            for c in [n.left, n.right] {
                match c {
                    NodeRef::Leaf(i) => assert!(leaf_refs.insert(i), "leaf {i} ref'd twice"),
                    NodeRef::Inner(i) => {
                        assert_ne!(i, 0, "root must not be a child");
                        assert!(inner_refs.insert(i), "inner {i} ref'd twice");
                    }
                }
            }
        }
        assert_eq!(leaf_refs.len(), m, "every leaf referenced once");
        assert_eq!(
            inner_refs.len(),
            m - 2,
            "every non-root inner referenced once"
        );
        // Root covers everything.
        assert_eq!(tree.nodes[0].first, 0);
        assert_eq!(tree.nodes[0].last as usize, m - 1);
        // Children partition the parent's range.
        for n in &tree.nodes {
            let (lf, ll) = match n.left {
                NodeRef::Leaf(i) => (i, i),
                NodeRef::Inner(i) => (tree.nodes[i as usize].first, tree.nodes[i as usize].last),
            };
            let (rf, rl) = match n.right {
                NodeRef::Leaf(i) => (i, i),
                NodeRef::Inner(i) => (tree.nodes[i as usize].first, tree.nodes[i as usize].last),
            };
            assert_eq!(lf, n.first);
            assert_eq!(rl, n.last);
            assert_eq!(ll + 1, rf, "children contiguous");
        }
    }

    fn msb_align(keys: &mut [u64], bits: u32) {
        for k in keys.iter_mut() {
            *k <<= 64 - bits;
        }
    }

    #[test]
    fn single_key() {
        let tree = RadixTree::build(&[42 << 32]);
        assert_eq!(tree.root(), NodeRef::Leaf(0));
        check_invariants(&tree);
    }

    #[test]
    fn two_keys() {
        let mut keys = vec![0b01u64, 0b10u64];
        msb_align(&mut keys, 2);
        let tree = RadixTree::build(&keys);
        check_invariants(&tree);
        assert_eq!(tree.root(), NodeRef::Inner(0));
        assert_eq!(tree.nodes[0].left, NodeRef::Leaf(0));
        assert_eq!(tree.nodes[0].right, NodeRef::Leaf(1));
        assert_eq!(tree.nodes[0].prefix_len, 0);
    }

    #[test]
    fn full_two_bit_space() {
        let mut keys = vec![0b00u64, 0b01, 0b10, 0b11];
        msb_align(&mut keys, 2);
        let tree = RadixTree::build(&keys);
        check_invariants(&tree);
        // Perfect binary tree: root splits at bit 0.
        assert_eq!(tree.nodes[0].prefix_len, 0);
    }

    #[test]
    fn skewed_keys() {
        // Keys sharing successively longer prefixes → a skewed tree.
        let mut keys: Vec<u64> = vec![0b0001, 0b0010, 0b0100, 0b1000];
        keys.sort();
        msb_align(&mut keys, 4);
        let tree = RadixTree::build(&keys);
        check_invariants(&tree);
    }

    #[test]
    fn random_keys_invariants() {
        let mut rng = SplitMix64::new(99);
        for trial in 0..50 {
            let m = 2 + (rng.next_u64() % 500) as usize;
            let mut set = HashSet::new();
            while set.len() < m {
                set.insert(rng.next_u64() >> 1); // keep MSB clear like Morton codes
            }
            let mut keys: Vec<u64> = set.into_iter().collect();
            keys.sort_unstable();
            msb_align(&mut keys, 63);
            let tree = RadixTree::build(&keys);
            check_invariants(&tree);
            let _ = trial;
        }
    }

    #[test]
    fn prefix_len_increases_downward() {
        let mut rng = SplitMix64::new(3);
        let mut set = HashSet::new();
        while set.len() < 300 {
            set.insert(rng.next_u64() >> 1);
        }
        let mut keys: Vec<u64> = set.into_iter().collect();
        keys.sort_unstable();
        msb_align(&mut keys, 63);
        let tree = RadixTree::build(&keys);
        for n in &tree.nodes {
            for c in [n.left, n.right] {
                if let NodeRef::Inner(i) = c {
                    assert!(
                        tree.nodes[i as usize].prefix_len > n.prefix_len,
                        "child prefixes strictly extend the parent's"
                    );
                }
            }
        }
    }

    #[test]
    fn noderef_pack_roundtrip() {
        for r in [
            NodeRef::Inner(0),
            NodeRef::Leaf(0),
            NodeRef::Inner(12345),
            NodeRef::Leaf(67890),
        ] {
            assert_eq!(NodeRef::unpack(r.pack()), r);
        }
    }
}
