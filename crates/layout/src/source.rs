//! Remote-style byte access for BAT files: the [`ByteSource`] trait and
//! the [`RangeReader`] that drives it (ROADMAP item 1, DESIGN.md §13).
//!
//! The compacted BAT layout is deliberately range-request-friendly — a
//! small head (tree + dictionary) followed by treelet blocks at 4 KiB
//! boundaries — so a reader that can only issue `GET(offset, len)` against
//! an object store needs nothing beyond the head to plan a query and the
//! planned treelet ranges to execute it. [`RangeReader`] adds the three
//! behaviours a real remote path needs on top of a raw source:
//!
//! * **verification** — a response shorter (or longer) than requested is a
//!   torn range and surfaces as a typed error, never as garbage particles;
//! * **bounded retries** — transient failures are retried with exponential
//!   backoff up to [`RangeConfig::retries`] times, counted in
//!   `range.retries`;
//! * **coalescing** — [`coalesce_ranges`] merges planned treelet ranges
//!   whose gap is at most [`RangeConfig::gap_bytes`], trading a few padding
//!   bytes for fewer round trips (the request/byte tradeoff the paper's
//!   I/O model measures).
//!
//! Counters (all through `bat-obs`): `range.requests`, `range.bytes_fetched`,
//! `range.retries`, `range.coalesced`, `range.prefetch_hits`.

use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Anything that can serve absolute byte ranges of one immutable object.
///
/// Contract: `read_range(offset, len)` returns **exactly** `len` bytes of
/// the object at `[offset, offset + len)`, or an error. Implementations
/// must not return short reads as `Ok` — callers treat any length mismatch
/// as a torn response. Sources must be cheap to call concurrently; the
/// reader issues ranges from multiple worker threads.
pub trait ByteSource: Send + Sync {
    /// Total byte length of the object.
    fn len(&self) -> u64;

    /// True when the object is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read exactly `len` bytes starting at `offset`.
    fn read_range(&self, offset: u64, len: usize) -> io::Result<Vec<u8>>;
}

/// An in-memory [`ByteSource`] (owned buffer behind an `Arc`).
pub struct MemorySource {
    bytes: Arc<Vec<u8>>,
}

impl MemorySource {
    /// Wrap an owned buffer.
    pub fn new(bytes: Vec<u8>) -> MemorySource {
        MemorySource {
            bytes: Arc::new(bytes),
        }
    }

    /// Share an existing refcounted buffer.
    pub fn from_arc(bytes: Arc<Vec<u8>>) -> MemorySource {
        MemorySource { bytes }
    }
}

impl ByteSource for MemorySource {
    fn len(&self) -> u64 {
        self.bytes.len() as u64
    }

    fn read_range(&self, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        let start = usize::try_from(offset)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "range offset overflow"))?;
        let end = start.checked_add(len).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => Ok(self.bytes[start..end].to_vec()),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!(
                    "range [{offset}, +{len}) out of bounds (object is {} bytes)",
                    self.bytes.len()
                ),
            )),
        }
    }
}

/// A [`ByteSource`] over a local file using positioned reads (no mmap).
///
/// This is the "remote semantics, local bytes" backend: every access is an
/// explicit `pread`, so request/byte accounting matches what a true remote
/// store would see while the data still lives on local disk.
pub struct FileSource {
    file: std::fs::File,
    len: u64,
}

impl FileSource {
    /// Open `path` for positioned range reads.
    pub fn open(path: impl AsRef<std::path::Path>) -> io::Result<FileSource> {
        let file = std::fs::File::open(path)?;
        let len = file.metadata()?.len();
        Ok(FileSource { file, len })
    }
}

impl ByteSource for FileSource {
    fn len(&self) -> u64 {
        self.len
    }

    fn read_range(&self, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        use std::os::unix::fs::FileExt;
        let mut buf = vec![0u8; len];
        self.file.read_exact_at(&mut buf, offset)?;
        Ok(buf)
    }
}

/// Knobs for the range read path. Every field has an environment override
/// so deployments can tune without code changes (README "Knobs").
#[derive(Debug, Clone)]
pub struct RangeConfig {
    /// Maximum gap (bytes) between two planned ranges that still get merged
    /// into one request. `0` merges only exactly-adjacent ranges.
    /// Env: `BAT_RANGE_GAP_BYTES`.
    pub gap_bytes: u64,
    /// Retries after a failed or torn range request (total attempts =
    /// `retries + 1`). Env: `BAT_RANGE_RETRIES`.
    pub retries: u32,
    /// Base backoff between retries; doubles per attempt. `0` disables
    /// sleeping (tests). Env: `BAT_RANGE_BACKOFF_MS`.
    pub backoff_ms: u64,
    /// Prefetch planned treelets with coalesced requests before execution.
    /// Env: `BAT_RANGE_PREFETCH` (`0`/`off`/`false` disables).
    pub prefetch: bool,
}

impl Default for RangeConfig {
    fn default() -> RangeConfig {
        RangeConfig {
            // One page of slack on each side of a 4 KiB-aligned treelet is
            // almost always cheaper than a second round trip; 16 KiB merges
            // runs of small neighbouring treelets without inflating bytes
            // much (bench_range sweeps this knob).
            gap_bytes: 16 * 1024,
            retries: 3,
            backoff_ms: 1,
            prefetch: true,
        }
    }
}

impl RangeConfig {
    /// Defaults overridden by `BAT_RANGE_*` environment variables.
    pub fn from_env() -> RangeConfig {
        let mut cfg = RangeConfig::default();
        if let Ok(v) = std::env::var("BAT_RANGE_GAP_BYTES") {
            if let Some(n) = crate::cache::parse_bytes(&v) {
                cfg.gap_bytes = n as u64;
            }
        }
        if let Ok(v) = std::env::var("BAT_RANGE_RETRIES") {
            if let Ok(n) = v.trim().parse() {
                cfg.retries = n;
            }
        }
        if let Ok(v) = std::env::var("BAT_RANGE_BACKOFF_MS") {
            if let Ok(n) = v.trim().parse() {
                cfg.backoff_ms = n;
            }
        }
        if let Ok(v) = std::env::var("BAT_RANGE_PREFETCH") {
            cfg.prefetch = !matches!(v.trim(), "0" | "off" | "false" | "no");
        }
        cfg
    }
}

/// Cumulative counters for one [`RangeReader`] (mirrors the `range.*`
/// obs counters, but always on and per-reader for tests and benches).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RangeStats {
    /// Range requests issued against the source (after coalescing).
    pub requests: u64,
    /// Bytes fetched, including coalescing slack.
    pub bytes_fetched: u64,
    /// Requests saved by coalescing (naive count − merged count).
    pub coalesced: u64,
    /// Failed or torn attempts that were retried.
    pub retries: u64,
    /// Treelet views served from a prefetch staged by [`coalesce_ranges`].
    pub prefetch_hits: u64,
}

/// Issues verified, retried, coalesced range requests against a
/// [`ByteSource`] and stages prefetched treelet blocks for the reader.
pub struct RangeReader {
    source: Arc<dyn ByteSource>,
    cfg: RangeConfig,
    /// Treelet blocks fetched ahead of execution by [`BatFile::prefetch`]
    /// (`crate::reader`), consumed (and promoted into the treelet cache)
    /// on first use.
    staged: Mutex<HashMap<u32, Arc<Vec<u8>>>>,
    requests: AtomicU64,
    bytes_fetched: AtomicU64,
    coalesced: AtomicU64,
    retries: AtomicU64,
    prefetch_hits: AtomicU64,
}

impl RangeReader {
    /// Wrap a source with the given config.
    pub fn new(source: Arc<dyn ByteSource>, cfg: RangeConfig) -> RangeReader {
        RangeReader {
            source,
            cfg,
            staged: Mutex::new(HashMap::new()),
            requests: AtomicU64::new(0),
            bytes_fetched: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            prefetch_hits: AtomicU64::new(0),
        }
    }

    /// Total byte length of the underlying object.
    pub fn len(&self) -> u64 {
        self.source.len()
    }

    /// True when the underlying object is empty.
    pub fn is_empty(&self) -> bool {
        self.source.is_empty()
    }

    /// The active configuration.
    pub fn config(&self) -> &RangeConfig {
        &self.cfg
    }

    /// Snapshot of this reader's cumulative counters.
    pub fn stats(&self) -> RangeStats {
        RangeStats {
            requests: self.requests.load(Ordering::Relaxed),
            bytes_fetched: self.bytes_fetched.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            prefetch_hits: self.prefetch_hits.load(Ordering::Relaxed),
        }
    }

    /// Fetch exactly `len` bytes at `offset`: one verified range request,
    /// retried with exponential backoff on failure or torn (wrong-length)
    /// responses. Returns a typed error once retries are exhausted.
    pub fn fetch(&self, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        let mut last_err: Option<io::Error> = None;
        for attempt in 0..=self.cfg.retries {
            if attempt > 0 {
                self.retries.fetch_add(1, Ordering::Relaxed);
                bat_obs::counter_add("range.retries", 1);
                if self.cfg.backoff_ms > 0 {
                    let ms = self.cfg.backoff_ms << (attempt - 1).min(10);
                    std::thread::sleep(std::time::Duration::from_millis(ms));
                }
            }
            self.requests.fetch_add(1, Ordering::Relaxed);
            bat_obs::counter_add("range.requests", 1);
            match self.source.read_range(offset, len) {
                Ok(buf) if buf.len() == len => {
                    self.bytes_fetched.fetch_add(len as u64, Ordering::Relaxed);
                    bat_obs::counter_add("range.bytes_fetched", len as u64);
                    return Ok(buf);
                }
                Ok(buf) => {
                    // A short (or long) response is a torn range: never
                    // hand mismatched bytes to the decoder.
                    last_err = Some(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        format!(
                            "torn range response at [{offset}, +{len}): got {} bytes",
                            buf.len()
                        ),
                    ));
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| io::Error::other("range request failed with no error")))
    }

    /// Take a previously staged (prefetched) block for `treelet`, if any.
    pub fn take_staged(&self, treelet: u32) -> Option<Arc<Vec<u8>>> {
        let hit = self.staged.lock().expect("staged lock").remove(&treelet);
        if hit.is_some() {
            self.prefetch_hits.fetch_add(1, Ordering::Relaxed);
            bat_obs::counter_add("range.prefetch_hits", 1);
        }
        hit
    }

    /// True when a block for `treelet` is already staged.
    pub fn is_staged(&self, treelet: u32) -> bool {
        self.staged
            .lock()
            .expect("staged lock")
            .contains_key(&treelet)
    }

    /// Prefetch the given `(treelet, offset, len)` blocks with coalesced
    /// requests and stage them for [`RangeReader::take_staged`].
    ///
    /// Best-effort and infallible: a failed merged request is skipped (its
    /// treelets fall back to demand fetches, which surface the error with
    /// their own retry budget). Records `range.coalesced` savings.
    pub fn prefetch_blocks(&self, blocks: &[(u32, u64, usize)]) {
        if blocks.is_empty() {
            return;
        }
        let ranges: Vec<(u64, u64)> = blocks
            .iter()
            .map(|&(_, off, len)| (off, off + len as u64))
            .collect();
        let merged = coalesce_ranges(&ranges, self.cfg.gap_bytes);
        let saved = (ranges.len() - merged.len()) as u64;
        if saved > 0 {
            self.coalesced.fetch_add(saved, Ordering::Relaxed);
            bat_obs::counter_add("range.coalesced", saved);
        }
        for &(mstart, mend) in &merged {
            let buf = match self.fetch(mstart, (mend - mstart) as usize) {
                Ok(b) => b,
                Err(_) => continue,
            };
            let mut staged = self.staged.lock().expect("staged lock");
            for &(treelet, off, len) in blocks {
                if off >= mstart && off + len as u64 <= mend {
                    let s = (off - mstart) as usize;
                    staged
                        .entry(treelet)
                        .or_insert_with(|| Arc::new(buf[s..s + len].to_vec()));
                }
            }
        }
    }
}

/// Merge sorted-or-not byte ranges `[start, end)` whose gap is at most
/// `gap` into a minimal list of covering requests.
///
/// Properties (see `tests/range_properties.rs`):
/// * the output covers exactly the union of the inputs plus gaps of at
///   most `gap` bytes between merged neighbours (never more slack);
/// * output ranges are sorted, non-empty, and pairwise separated by more
///   than `gap` bytes (maximally merged);
/// * every output endpoint is an input endpoint.
pub fn coalesce_ranges(ranges: &[(u64, u64)], gap: u64) -> Vec<(u64, u64)> {
    let mut sorted: Vec<(u64, u64)> = ranges.iter().copied().filter(|r| r.1 > r.0).collect();
    sorted.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(sorted.len());
    for (start, end) in sorted {
        match out.last_mut() {
            Some(last) if start <= last.1.saturating_add(gap) => {
                last.1 = last.1.max(end);
            }
            _ => out.push((start, end)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesce_merges_adjacent_and_respects_gap() {
        // Exactly adjacent always merges; gap-separated merges only when
        // the threshold allows it.
        assert_eq!(coalesce_ranges(&[(0, 10), (10, 20)], 0), vec![(0, 20)]);
        assert_eq!(
            coalesce_ranges(&[(0, 10), (15, 20)], 4),
            vec![(0, 10), (15, 20)]
        );
        assert_eq!(coalesce_ranges(&[(0, 10), (15, 20)], 5), vec![(0, 20)]);
        // Unsorted, overlapping, and empty inputs are normalized.
        assert_eq!(
            coalesce_ranges(&[(30, 40), (0, 20), (10, 25), (50, 50)], 0),
            vec![(0, 25), (30, 40)]
        );
        assert!(coalesce_ranges(&[], 16).is_empty());
    }

    #[test]
    fn memory_source_serves_exact_ranges() {
        let src = MemorySource::new((0u8..=255).collect());
        assert_eq!(src.len(), 256);
        assert_eq!(src.read_range(10, 4).unwrap(), vec![10, 11, 12, 13]);
        assert!(src.read_range(250, 10).is_err());
        assert!(src.read_range(300, 1).is_err());
    }

    #[test]
    fn fetch_verifies_length_and_retries() {
        // A source that returns a short buffer on the first call and the
        // real bytes afterwards: fetch must retry and succeed.
        struct Flaky {
            calls: AtomicU64,
        }
        impl ByteSource for Flaky {
            fn len(&self) -> u64 {
                8
            }
            fn read_range(&self, offset: u64, len: usize) -> io::Result<Vec<u8>> {
                if self.calls.fetch_add(1, Ordering::Relaxed) == 0 {
                    Ok(vec![0; len / 2]) // torn
                } else {
                    Ok((offset as u8..offset as u8 + len as u8).collect())
                }
            }
        }
        let rr = RangeReader::new(
            Arc::new(Flaky {
                calls: AtomicU64::new(0),
            }),
            RangeConfig {
                backoff_ms: 0,
                ..RangeConfig::default()
            },
        );
        assert_eq!(rr.fetch(2, 4).unwrap(), vec![2, 3, 4, 5]);
        let s = rr.stats();
        assert_eq!(s.retries, 1);
        assert_eq!(s.requests, 2);
        assert_eq!(s.bytes_fetched, 4);
    }

    #[test]
    fn fetch_exhausts_retries_with_typed_error() {
        struct Dead;
        impl ByteSource for Dead {
            fn len(&self) -> u64 {
                100
            }
            fn read_range(&self, _: u64, _: usize) -> io::Result<Vec<u8>> {
                Err(io::Error::other("unreachable store"))
            }
        }
        let rr = RangeReader::new(
            Arc::new(Dead),
            RangeConfig {
                retries: 2,
                backoff_ms: 0,
                ..RangeConfig::default()
            },
        );
        let err = rr.fetch(0, 10).unwrap_err();
        assert!(err.to_string().contains("unreachable store"));
        assert_eq!(rr.stats().requests, 3);
        assert_eq!(rr.stats().retries, 2);
    }

    #[test]
    fn prefetch_stages_blocks_and_counts_coalescing() {
        let bytes: Vec<u8> = (0..2048u64).map(|i| (i % 251) as u8).collect();
        let expect: Vec<Vec<u8>> = [(0u64, 100usize), (120, 80), (1000, 50)]
            .iter()
            .map(|&(o, l)| bytes[o as usize..o as usize + l].to_vec())
            .collect();
        let rr = RangeReader::new(
            Arc::new(MemorySource::new(bytes)),
            RangeConfig {
                gap_bytes: 64,
                backoff_ms: 0,
                ..RangeConfig::default()
            },
        );
        rr.prefetch_blocks(&[(0, 0, 100), (1, 120, 80), (2, 1000, 50)]);
        // (0,100) and (120,200) merge across the 20-byte gap; 1000 stays.
        let s = rr.stats();
        assert_eq!(s.requests, 2);
        assert_eq!(s.coalesced, 1);
        for (t, want) in expect.iter().enumerate() {
            assert_eq!(rr.take_staged(t as u32).unwrap().as_slice(), &want[..]);
        }
        assert_eq!(rr.stats().prefetch_hits, 3);
        assert!(rr.take_staged(0).is_none());
    }
}
