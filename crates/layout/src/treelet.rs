//! Treelets: median-split k-d trees with embedded LOD particles
//! (paper §III-C2).
//!
//! One treelet is built inside each shallow-tree leaf. Every *inner* node
//! sets aside a fixed number of LOD particles, chosen by stratified sampling
//! from the node's particles — a coarse representation of the subtree with
//! **zero** duplication or synthesized representatives. The remaining
//! particles are split at the median along the node's longest axis.
//!
//! The build produces a particle *ordering*: a node's own particles (its
//! LOD set, or everything for a leaf) occupy a contiguous range, and a
//! subtree occupies a contiguous span starting with its root's LOD block.
//! A progressive read to depth `d` therefore touches a prefix of each
//! relevant span — exactly what the quality-driven reads of §V-B need.

use crate::bitmap::Bitmap32;
use crate::particles::ParticleSet;
use bat_geom::rng::SplitMix64;
use bat_geom::sampling::{partition_selected, stratified_indices};
use bat_geom::{Aabb, Vec3};

/// Sentinel for "no child".
pub const NO_CHILD: u32 = u32::MAX;

/// Treelet build parameters.
#[derive(Debug, Clone, Copy)]
pub struct TreeletConfig {
    /// LOD particles stored at each inner node (paper default: 8).
    pub lod_per_inner: u32,
    /// Maximum particles in a treelet leaf (paper default: 128).
    pub max_leaf: u32,
    /// Seed for the stratified sampling.
    pub seed: u64,
}

impl Default for TreeletConfig {
    fn default() -> TreeletConfig {
        TreeletConfig {
            lod_per_inner: 8,
            max_leaf: 128,
            seed: 0x9E3779B97F4A7C15,
        }
    }
}

/// One node of a treelet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeletNode {
    /// Tight bounds over every particle in the subtree (including LOD).
    pub bounds: Aabb,
    /// Start of this node's own particle block, treelet-local.
    pub start: u32,
    /// Number of particles in the block (LOD count for inner, all for leaf).
    pub count: u32,
    /// Left child node index; `NO_CHILD` for leaves.
    pub left: u32,
    /// Right child node index; `NO_CHILD` for leaves.
    pub right: u32,
    /// Depth below the treelet root (root = 0).
    pub depth: u32,
}

impl TreeletNode {
    /// True for leaf nodes (no children).
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.left == NO_CHILD
    }
}

/// A built treelet: nodes plus per-node, per-attribute bitmaps. Particle
/// data lives in the owning [`crate::Bat`]'s reordered arrays at
/// `[first_particle, first_particle + num_particles)`.
#[derive(Debug, Clone)]
pub struct Treelet {
    /// Nodes in preorder (children follow their parent).
    pub nodes: Vec<TreeletNode>,
    /// `bitmaps[node][attr]`.
    pub bitmaps: Vec<Vec<Bitmap32>>,
    /// Start of this treelet's particles in the BAT's global order.
    pub first_particle: u64,
    /// Number of particles in the treelet.
    pub num_particles: u32,
    /// Deepest node depth in this treelet.
    pub max_depth: u32,
}

impl Treelet {
    /// Root node (index 0). Panics on an empty treelet, which cannot be
    /// constructed through [`build_structure`].
    pub fn root(&self) -> &TreeletNode {
        &self.nodes[0]
    }
}

/// Outcome of the structural phase of a treelet build: nodes plus the local
/// particle ordering (output slot `i` holds input-local index `order[i]`).
pub struct TreeletStructure {
    /// Nodes in preorder.
    pub nodes: Vec<TreeletNode>,
    /// Local particle ordering (slot `i` holds input index `order[i]`).
    pub order: Vec<u32>,
    /// Deepest node depth.
    pub max_depth: u32,
}

/// Build the treelet structure over `positions` (one shallow leaf's
/// particles, any order). Only geometry is needed; bitmaps are computed
/// afterwards from the reordered attribute data by [`compute_bitmaps`].
pub fn build_structure(positions: &[Vec3], cfg: &TreeletConfig, salt: u64) -> TreeletStructure {
    let n = positions.len();
    assert!(n > 0, "treelet needs at least one particle");
    assert!(cfg.max_leaf >= 1, "max_leaf must be at least 1");
    let mut nodes: Vec<TreeletNode> = Vec::with_capacity(2 * n / cfg.max_leaf.max(1) as usize + 1);
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut idx: Vec<u32> = (0..n as u32).collect();
    let mut rng = SplitMix64::new(cfg.seed ^ salt);
    let mut max_depth = 0;
    build_node(
        positions,
        &mut idx,
        cfg,
        0,
        &mut nodes,
        &mut order,
        &mut rng,
        &mut max_depth,
    );
    debug_assert_eq!(order.len(), n);
    TreeletStructure {
        nodes,
        order,
        max_depth,
    }
}

/// Recursive node construction. Appends this subtree's particle order to
/// `order` and returns the node's index.
#[allow(clippy::too_many_arguments)]
fn build_node(
    positions: &[Vec3],
    idx: &mut [u32],
    cfg: &TreeletConfig,
    depth: u32,
    nodes: &mut Vec<TreeletNode>,
    order: &mut Vec<u32>,
    rng: &mut SplitMix64,
    max_depth: &mut u32,
) -> u32 {
    *max_depth = (*max_depth).max(depth);
    let mut bounds = Aabb::empty();
    for &i in idx.iter() {
        bounds.extend(positions[i as usize]);
    }
    let node_id = nodes.len() as u32;
    let n = idx.len();

    if n as u32 <= cfg.max_leaf {
        nodes.push(TreeletNode {
            bounds,
            start: order.len() as u32,
            count: n as u32,
            left: NO_CHILD,
            right: NO_CHILD,
            depth,
        });
        order.extend_from_slice(idx);
        return node_id;
    }

    // Inner node: set aside LOD particles first (stratified over the slice,
    // which is in the parent's spatial order), then median-split the rest.
    // Keep at least two particles for the children.
    let k = (cfg.lod_per_inner as usize).min(n.saturating_sub(2));
    let picks = stratified_indices(n, k, rng);
    partition_selected(idx, &picks);
    let start = order.len() as u32;
    order.extend_from_slice(&idx[..k]);

    nodes.push(TreeletNode {
        bounds,
        start,
        count: k as u32,
        left: NO_CHILD, // patched below
        right: NO_CHILD,
        depth,
    });

    let rest = &mut idx[k..];
    let axis = bounds.longest_axis();
    let mid = rest.len() / 2;
    rest.select_nth_unstable_by(mid, |&a, &b| {
        positions[a as usize][axis].total_cmp(&positions[b as usize][axis])
    });
    let (lo, hi) = rest.split_at_mut(mid);
    // A degenerate axis (all equal positions) can still split by count:
    // select_nth gives mid elements on the left regardless.
    debug_assert!(!lo.is_empty() && !hi.is_empty());
    let left = build_node(positions, lo, cfg, depth + 1, nodes, order, rng, max_depth);
    let right = build_node(positions, hi, cfg, depth + 1, nodes, order, rng, max_depth);
    nodes[node_id as usize].left = left;
    nodes[node_id as usize].right = right;
    node_id
}

/// Compute per-node, per-attribute bitmaps for a treelet whose particles
/// have already been reordered into build order. `particles` is the global
/// reordered set; the treelet's particles start at `first_particle`.
///
/// Leaves bin their own particles; inner nodes merge their children's
/// bitmaps with the bitmaps of their own LOD particles (paper §III-C2).
pub fn compute_bitmaps(
    nodes: &[TreeletNode],
    particles: &ParticleSet,
    first_particle: usize,
    attr_ranges: &[(f64, f64)],
) -> Vec<Vec<Bitmap32>> {
    let na = attr_ranges.len();
    let mut bitmaps = vec![vec![Bitmap32::EMPTY; na]; nodes.len()];
    // Children always have larger indices than their parent (preorder
    // construction), so a reverse scan is a valid bottom-up order.
    for ni in (0..nodes.len()).rev() {
        let node = &nodes[ni];
        for (a, &(lo, hi)) in attr_ranges.iter().enumerate() {
            let mut bm = Bitmap32::EMPTY;
            let begin = first_particle + node.start as usize;
            for i in begin..begin + node.count as usize {
                bm.insert(particles.value(a, i), lo, hi);
            }
            if !node.is_leaf() {
                bm = bm
                    .or(bitmaps[node.left as usize][a])
                    .or(bitmaps[node.right as usize][a]);
            }
            bitmaps[ni][a] = bm;
        }
    }
    bitmaps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttributeDesc;
    use bat_geom::rng::Xoshiro256;

    fn cloud(n: usize, seed: u64) -> Vec<Vec3> {
        let mut rng = Xoshiro256::new(seed);
        (0..n)
            .map(|_| Vec3::new(rng.next_f32(), rng.next_f32(), rng.next_f32()))
            .collect()
    }

    fn check_structure(positions: &[Vec3], s: &TreeletStructure, cfg: &TreeletConfig) {
        // Order is a permutation.
        let mut seen = vec![false; positions.len()];
        for &i in &s.order {
            assert!(!seen[i as usize], "index {i} duplicated");
            seen[i as usize] = true;
        }
        assert!(seen.iter().all(|&b| b), "order must cover all particles");

        for (ni, node) in s.nodes.iter().enumerate() {
            // Every particle in the node's own block lies inside its bounds.
            for o in node.start..node.start + node.count {
                let p = positions[s.order[o as usize] as usize];
                assert!(node.bounds.contains_point(p), "node {ni}");
            }
            if node.is_leaf() {
                assert!(node.count <= cfg.max_leaf);
                assert_eq!(node.right, NO_CHILD);
            } else {
                assert!(node.count <= cfg.lod_per_inner);
                let l = &s.nodes[node.left as usize];
                let r = &s.nodes[node.right as usize];
                assert_eq!(l.depth, node.depth + 1);
                assert_eq!(r.depth, node.depth + 1);
                assert!(node.bounds.contains_box(&l.bounds));
                assert!(node.bounds.contains_box(&r.bounds));
                // Subtree spans: LOD block, then left subtree, then right.
                assert_eq!(l.start, node.start + node.count);
            }
        }
        // Total stored particles across nodes equals the input count.
        let total: u32 = s.nodes.iter().map(|n| n.count).sum();
        assert_eq!(total as usize, positions.len());
    }

    #[test]
    fn tiny_input_single_leaf() {
        let pts = cloud(5, 1);
        let cfg = TreeletConfig::default();
        let s = build_structure(&pts, &cfg, 0);
        assert_eq!(s.nodes.len(), 1);
        assert!(s.nodes[0].is_leaf());
        assert_eq!(s.max_depth, 0);
        check_structure(&pts, &s, &cfg);
    }

    #[test]
    fn structure_invariants_random() {
        let cfg = TreeletConfig {
            lod_per_inner: 8,
            max_leaf: 32,
            seed: 7,
        };
        for (n, seed) in [(33, 2u64), (100, 3), (1000, 4), (5000, 5)] {
            let pts = cloud(n, seed);
            let s = build_structure(&pts, &cfg, seed);
            assert!(s.nodes.len() > 1, "n={n}");
            check_structure(&pts, &s, &cfg);
        }
    }

    #[test]
    fn degenerate_coincident_points_still_split() {
        // All particles at the same position: median split by count must
        // terminate (no infinite recursion on zero-extent bounds).
        let pts = vec![Vec3::splat(0.5); 1000];
        let cfg = TreeletConfig {
            lod_per_inner: 4,
            max_leaf: 16,
            seed: 1,
        };
        let s = build_structure(&pts, &cfg, 0);
        check_structure(&pts, &s, &cfg);
    }

    #[test]
    fn lod_particles_spread_across_subtree() {
        // The root's LOD block should span the node spatially, not cluster.
        let pts = cloud(10_000, 11);
        let cfg = TreeletConfig::default();
        let s = build_structure(&pts, &cfg, 0);
        let root = &s.nodes[0];
        let mut lod_bounds = Aabb::empty();
        for o in root.start..root.start + root.count {
            lod_bounds.extend(pts[s.order[o as usize] as usize]);
        }
        // The 8 stratified picks should cover a decent share of the volume.
        assert!(
            lod_bounds.volume() > 0.1 * root.bounds.volume(),
            "LOD bounds {lod_bounds:?} too tight vs {:?}",
            root.bounds
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let pts = cloud(500, 21);
        let cfg = TreeletConfig::default();
        let a = build_structure(&pts, &cfg, 3);
        let b = build_structure(&pts, &cfg, 3);
        assert_eq!(a.order, b.order);
        assert_eq!(a.nodes.len(), b.nodes.len());
    }

    #[test]
    fn bitmaps_no_false_negatives() {
        let pts = cloud(2000, 31);
        let cfg = TreeletConfig {
            lod_per_inner: 8,
            max_leaf: 64,
            seed: 9,
        };
        let s = build_structure(&pts, &cfg, 0);

        // One attribute: value = x coordinate scaled.
        let mut set = ParticleSet::new(vec![AttributeDesc::f64("v")]);
        for &i in &s.order {
            let p = pts[i as usize];
            set.push(p, &[p.x as f64 * 100.0]);
        }
        let ranges = [(0.0, 100.0)];
        let bitmaps = compute_bitmaps(&s.nodes, &set, 0, &ranges);

        // For every node, every particle in its subtree must fall in an
        // occupied bin of the node's bitmap.
        for (ni, node_bitmaps) in bitmaps.iter().enumerate() {
            let bm = node_bitmaps[0];
            let span = subtree_span(&s.nodes, ni);
            for i in span.0..span.1 {
                let v = set.value(0, i);
                let single = Bitmap32::from_values([v], 0.0, 100.0);
                assert!(bm.overlaps(single), "node {ni} value {v}");
            }
        }
    }

    /// The contiguous particle span `[start, end)` of a subtree.
    fn subtree_span(nodes: &[TreeletNode], ni: usize) -> (usize, usize) {
        let node = &nodes[ni];
        if node.is_leaf() {
            return (node.start as usize, (node.start + node.count) as usize);
        }
        let (_, rend) = subtree_span(nodes, node.right as usize);
        (node.start as usize, rend)
    }

    #[test]
    fn inner_bitmap_includes_lod_and_children() {
        let pts = cloud(300, 41);
        let cfg = TreeletConfig {
            lod_per_inner: 4,
            max_leaf: 32,
            seed: 2,
        };
        let s = build_structure(&pts, &cfg, 0);
        let mut set = ParticleSet::new(vec![AttributeDesc::f64("v")]);
        for &i in &s.order {
            set.push(pts[i as usize], &[pts[i as usize].y as f64]);
        }
        let bitmaps = compute_bitmaps(&s.nodes, &set, 0, &[(0.0, 1.0)]);
        for (ni, node) in s.nodes.iter().enumerate() {
            let _ = ni;
            if !node.is_leaf() {
                let merged = bitmaps[node.left as usize][0].or(bitmaps[node.right as usize][0]);
                // Parent ⊇ children.
                assert_eq!(bitmaps[ni][0].or(merged), bitmaps[ni][0]);
            }
        }
    }
}
