//! Attribute descriptors and typed attribute arrays.
//!
//! The paper's data model (§III, §VI-A1) is positions as three `f32`s plus a
//! set of named per-particle attributes, typically `f64` (the uniform
//! benchmark uses 14 doubles, the Coal Boiler 7, the Dam Break 4). The API
//! follows the array-based attribute storage model of HDF5/ADIOS/Silo: one
//! SoA array per attribute.

use bat_wire::{Decoder, Encoder, WireError, WireResult};
use rayon::prelude::*;

/// Element type of an attribute array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum AttributeType {
    /// 32-bit float elements.
    F32 = 0,
    /// 64-bit float elements.
    F64 = 1,
}

impl AttributeType {
    /// Size of one element in bytes.
    pub fn size(self) -> usize {
        match self {
            AttributeType::F32 => 4,
            AttributeType::F64 => 8,
        }
    }

    /// Decode from a wire tag.
    pub fn from_tag(tag: u8) -> WireResult<AttributeType> {
        match tag {
            0 => Ok(AttributeType::F32),
            1 => Ok(AttributeType::F64),
            t => Err(WireError::BadTag {
                what: "attribute type",
                tag: t as u64,
            }),
        }
    }
}

/// Name and type of one attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttributeDesc {
    /// Attribute name (e.g. "temperature").
    pub name: String,
    /// Element type.
    pub dtype: AttributeType,
}

impl AttributeDesc {
    /// Construct from name and element type.
    pub fn new(name: impl Into<String>, dtype: AttributeType) -> AttributeDesc {
        AttributeDesc {
            name: name.into(),
            dtype,
        }
    }

    /// Convenience: an `f64` attribute (the common case in the paper).
    pub fn f64(name: impl Into<String>) -> AttributeDesc {
        AttributeDesc::new(name, AttributeType::F64)
    }

    /// Convenience: an `f32` attribute.
    pub fn f32(name: impl Into<String>) -> AttributeDesc {
        AttributeDesc::new(name, AttributeType::F32)
    }

    /// Serialize name + type tag.
    pub fn encode(&self, enc: &mut Encoder) {
        enc.put_str(&self.name);
        enc.put_u8(self.dtype as u8);
    }

    /// Inverse of [`AttributeDesc::encode`].
    pub fn decode(dec: &mut Decoder) -> WireResult<AttributeDesc> {
        let name = dec.get_str("attribute name")?;
        let dtype = AttributeType::from_tag(dec.get_u8("attribute type")?)?;
        Ok(AttributeDesc { name, dtype })
    }
}

/// A typed SoA attribute array.
#[derive(Debug, Clone, PartialEq)]
pub enum AttributeArray {
    /// 32-bit float elements.
    F32(Vec<f32>),
    /// 64-bit float elements.
    F64(Vec<f64>),
}

impl AttributeArray {
    /// Empty array of the given type.
    pub fn new(dtype: AttributeType) -> AttributeArray {
        match dtype {
            AttributeType::F32 => AttributeArray::F32(Vec::new()),
            AttributeType::F64 => AttributeArray::F64(Vec::new()),
        }
    }

    /// Empty array with reserved capacity.
    pub fn with_capacity(dtype: AttributeType, cap: usize) -> AttributeArray {
        match dtype {
            AttributeType::F32 => AttributeArray::F32(Vec::with_capacity(cap)),
            AttributeType::F64 => AttributeArray::F64(Vec::with_capacity(cap)),
        }
    }

    /// Element type of this array.
    pub fn dtype(&self) -> AttributeType {
        match self {
            AttributeArray::F32(_) => AttributeType::F32,
            AttributeArray::F64(_) => AttributeType::F64,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            AttributeArray::F32(v) => v.len(),
            AttributeArray::F64(v) => v.len(),
        }
    }

    /// True when the array holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Element `i` widened to `f64`.
    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        match self {
            AttributeArray::F32(v) => v[i] as f64,
            AttributeArray::F64(v) => v[i],
        }
    }

    /// Append a value (narrowed for `f32` arrays).
    #[inline]
    pub fn push(&mut self, v: f64) {
        match self {
            AttributeArray::F32(a) => a.push(v as f32),
            AttributeArray::F64(a) => a.push(v),
        }
    }

    /// Append all elements of `other`. Panics on type mismatch.
    pub fn extend_from(&mut self, other: &AttributeArray) {
        match (self, other) {
            (AttributeArray::F32(a), AttributeArray::F32(b)) => a.extend_from_slice(b),
            (AttributeArray::F64(a), AttributeArray::F64(b)) => a.extend_from_slice(b),
            _ => panic!("attribute type mismatch in extend_from"),
        }
    }

    /// `(min, max)` over the array, ignoring NaNs; `(0, 0)` when empty or
    /// all-NaN. This is the aggregator-local range used for bitmap binning.
    pub fn value_range(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        match self {
            AttributeArray::F32(v) => {
                for &x in v {
                    if !x.is_nan() {
                        lo = lo.min(x as f64);
                        hi = hi.max(x as f64);
                    }
                }
            }
            AttributeArray::F64(v) => {
                for &x in v {
                    if !x.is_nan() {
                        lo = lo.min(x);
                        hi = hi.max(x);
                    }
                }
            }
        }
        if lo > hi {
            (0.0, 0.0)
        } else {
            (lo, hi)
        }
    }

    /// Reorder so element `i` of the output is element `perm[i]` of the
    /// input. Parallel gather; each output slot reads one input slot.
    pub fn permute(&self, perm: &[u32]) -> AttributeArray {
        match self {
            AttributeArray::F32(v) => {
                AttributeArray::F32(perm.par_iter().map(|&i| v[i as usize]).collect())
            }
            AttributeArray::F64(v) => {
                AttributeArray::F64(perm.par_iter().map(|&i| v[i as usize]).collect())
            }
        }
    }

    /// Copy the subrange `[start, start+len)`.
    pub fn slice(&self, start: usize, len: usize) -> AttributeArray {
        match self {
            AttributeArray::F32(v) => AttributeArray::F32(v[start..start + len].to_vec()),
            AttributeArray::F64(v) => AttributeArray::F64(v[start..start + len].to_vec()),
        }
    }

    /// Serialized size in bytes (without length prefix).
    pub fn byte_size(&self) -> usize {
        self.len() * self.dtype().size()
    }

    /// Encode the raw element data (length-prefixed).
    pub fn encode(&self, enc: &mut Encoder) {
        match self {
            AttributeArray::F32(v) => enc.put_f32_slice(v),
            AttributeArray::F64(v) => enc.put_f64_slice(v),
        }
    }

    /// Encode the elements as a bare little-endian column, no length prefix
    /// (the columnar wire/file form; the element count travels out of band).
    pub fn encode_raw(&self, enc: &mut Encoder) {
        match self {
            AttributeArray::F32(v) => {
                for &x in v {
                    enc.put_f32(x);
                }
            }
            AttributeArray::F64(v) => {
                for &x in v {
                    enc.put_f64(x);
                }
            }
        }
    }

    /// Bulk-append elements from a bare little-endian column produced by
    /// [`AttributeArray::encode_raw`]. `raw` must be a whole number of
    /// elements of this array's type.
    pub fn extend_from_raw(&mut self, raw: &[u8], what: &'static str) -> WireResult<usize> {
        let esize = self.dtype().size();
        if !raw.len().is_multiple_of(esize) {
            return Err(WireError::BadLength {
                what,
                len: raw.len() as u64,
                remaining: raw.len() % esize,
            });
        }
        let n = raw.len() / esize;
        match self {
            AttributeArray::F32(v) => {
                v.reserve(n);
                v.extend(
                    raw.chunks_exact(4)
                        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])),
                );
            }
            AttributeArray::F64(v) => {
                v.reserve(n);
                v.extend(
                    raw.chunks_exact(8)
                        .map(|c| f64::from_le_bytes(c.try_into().expect("len 8"))),
                );
            }
        }
        Ok(n)
    }

    /// Decode raw element data of a known type.
    pub fn decode(dec: &mut Decoder, dtype: AttributeType) -> WireResult<AttributeArray> {
        Ok(match dtype {
            AttributeType::F32 => AttributeArray::F32(dec.get_f32_vec("attribute f32 data")?),
            AttributeType::F64 => AttributeArray::F64(dec.get_f64_vec("attribute f64 data")?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn desc_roundtrip() {
        let d = AttributeDesc::f64("velocity_x");
        let mut e = Encoder::new();
        d.encode(&mut e);
        let buf = e.finish();
        let out = AttributeDesc::decode(&mut Decoder::new(&buf)).unwrap();
        assert_eq!(out, d);
    }

    #[test]
    fn bad_type_tag_rejected() {
        assert!(AttributeType::from_tag(7).is_err());
    }

    #[test]
    fn push_get_widen() {
        let mut a = AttributeArray::new(AttributeType::F32);
        a.push(1.5);
        a.push(2.5);
        assert_eq!(a.get(1), 2.5);
        assert_eq!(a.len(), 2);
        assert_eq!(a.byte_size(), 8);
        let mut b = AttributeArray::new(AttributeType::F64);
        b.push(std::f64::consts::PI);
        assert_eq!(b.get(0), std::f64::consts::PI);
        assert_eq!(b.byte_size(), 8);
    }

    #[test]
    fn value_range_ignores_nan() {
        let a = AttributeArray::F64(vec![3.0, f64::NAN, -1.0, 7.0]);
        assert_eq!(a.value_range(), (-1.0, 7.0));
        let empty = AttributeArray::new(AttributeType::F64);
        assert_eq!(empty.value_range(), (0.0, 0.0));
        let all_nan = AttributeArray::F64(vec![f64::NAN]);
        assert_eq!(all_nan.value_range(), (0.0, 0.0));
    }

    #[test]
    fn permute_and_slice() {
        let a = AttributeArray::F64(vec![10.0, 20.0, 30.0]);
        let p = a.permute(&[2, 0, 1]);
        assert_eq!(p, AttributeArray::F64(vec![30.0, 10.0, 20.0]));
        let s = a.slice(1, 2);
        assert_eq!(s, AttributeArray::F64(vec![20.0, 30.0]));
    }

    #[test]
    fn array_roundtrip() {
        for arr in [
            AttributeArray::F32(vec![1.0, -2.0]),
            AttributeArray::F64(vec![4.0, 5.0, 6.0]),
        ] {
            let mut e = Encoder::new();
            arr.encode(&mut e);
            let buf = e.finish();
            let out = AttributeArray::decode(&mut Decoder::new(&buf), arr.dtype()).unwrap();
            assert_eq!(out, arr);
        }
    }

    #[test]
    #[should_panic]
    fn extend_type_mismatch_panics() {
        let mut a = AttributeArray::new(AttributeType::F32);
        a.extend_from(&AttributeArray::new(AttributeType::F64));
    }
}
