//! Layout size accounting (paper §VI-B reports ≈0.9 % storage overhead).
//!
//! "Overhead" is everything in the compacted file that is not raw particle
//! payload: headers, the shallow tree, node records, bitmap IDs, the
//! dictionary, and page-alignment padding. Because LOD particles are set
//! aside rather than duplicated, the layout's only cost *is* this structure.

use crate::format;

/// Size breakdown of a compacted BAT image.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayoutStats {
    /// Raw particle payload bytes (positions + attributes), pre-compression.
    pub raw_bytes: u64,
    /// Particle payload bytes as stored on disk. Equal to `raw_bytes` for v1
    /// files; for v2 this is the sum of the compressed position/attribute
    /// sections, so `stored_payload_bytes / raw_bytes` is the payload
    /// compression ratio.
    pub stored_payload_bytes: u64,
    /// Total compacted file bytes.
    pub file_bytes: u64,
    /// Structure bytes: headers, trees, bitmap IDs, dictionary, codec tables,
    /// and in-block node records.
    pub structure_bytes: u64,
    /// Page-alignment padding bytes.
    pub padding_bytes: u64,
    /// Attribute-index blob bytes (the packed B-trees after the treelets);
    /// 0 for files written without `BAT_INDEX_ATTRS`.
    pub index_bytes: u64,
    /// Number of treelets.
    pub num_treelets: u64,
    /// Total treelet nodes.
    pub num_nodes: u64,
    /// Dictionary entries.
    pub dict_entries: u64,
}

impl LayoutStats {
    /// Overhead fraction including padding: `(file − raw) / raw`.
    pub fn overhead(&self) -> f64 {
        if self.raw_bytes == 0 {
            return 0.0;
        }
        (self.file_bytes - self.raw_bytes) as f64 / self.raw_bytes as f64
    }

    /// Overhead fraction for structure only (the paper's "additional memory
    /// to store" the layout — padding exists only in the on-disk image).
    pub fn structure_overhead(&self) -> f64 {
        if self.raw_bytes == 0 {
            return 0.0;
        }
        self.structure_bytes as f64 / self.raw_bytes as f64
    }

    /// Payload compression ratio: stored payload / raw payload. 1.0 for v1
    /// files (payload is stored verbatim); < 1.0 when v2 codecs save bytes.
    pub fn compression_ratio(&self) -> f64 {
        if self.raw_bytes == 0 {
            return 1.0;
        }
        self.stored_payload_bytes as f64 / self.raw_bytes as f64
    }

    /// Measure a compacted BAT image exactly from its own bookkeeping.
    ///
    /// The accounting identity is `stored_payload_bytes + structure_bytes +
    /// index_bytes + padding_bytes == file_bytes` for both v1 and v2 images;
    /// for v1, `stored_payload_bytes == raw_bytes`. Post-treelet index blobs
    /// are charged to `index_bytes` (with their page-alignment gaps as
    /// padding), so totals always sum to the file size.
    pub fn measure(bytes: &[u8]) -> bat_wire::WireResult<LayoutStats> {
        let head = format::read_head(bytes)?;
        let bpp: usize = 12 + head.descs.iter().map(|d| d.dtype.size()).sum::<usize>();
        let raw = head.num_particles * bpp as u64;
        let num_nodes: u64 = head.leaves.iter().map(|l| l.num_nodes as u64).sum();

        // Padding = gap after the head payload + gaps between stored blocks.
        // For v2 the stored block is the compressed image, and the payload is
        // every section except the node records (section 0).
        let mut order: Vec<usize> = (0..head.leaves.len()).collect();
        order.sort_by_key(|&i| head.leaves[i].offset);
        let mut padding = 0u64;
        let mut stored_payload = 0u64;
        let mut payload_end = head.head_end as usize;
        for &i in &order {
            let l = &head.leaves[i];
            padding += l.offset - payload_end as u64;
            let layout = format::TreeletLayout::compute(
                l.num_nodes as usize,
                l.num_particles as usize,
                &head.descs,
            );
            stored_payload += match head.codec_rec(i) {
                Some(rec) => rec
                    .sections
                    .iter()
                    .skip(1)
                    .map(|s| s.stored_len as u64)
                    .sum::<u64>(),
                None => (layout.size - layout.positions_off) as u64,
            };
            payload_end = l.offset as usize + head.stored_block_size(i).unwrap_or(layout.size);
        }

        // Attribute-index blobs follow the last treelet; without this the
        // old accounting misclassified them as padding.
        let mut index_bytes = 0u64;
        let mut idx_order: Vec<&format::IndexDirEntry> = head.indexes.iter().collect();
        idx_order.sort_by_key(|e| e.offset);
        for e in idx_order {
            padding += e.offset.saturating_sub(payload_end as u64);
            index_bytes += e.len;
            payload_end = payload_end.max((e.offset + e.len) as usize);
        }
        padding += (bytes.len() - payload_end) as u64;

        Ok(LayoutStats {
            raw_bytes: raw,
            stored_payload_bytes: stored_payload,
            file_bytes: bytes.len() as u64,
            structure_bytes: bytes.len() as u64 - stored_payload - index_bytes - padding,
            padding_bytes: padding,
            index_bytes,
            num_treelets: head.leaves.len() as u64,
            num_nodes,
            dict_entries: head.dict.len() as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttributeDesc;
    use crate::build::{Bat, BatBuilder, BatConfig};
    use crate::particles::ParticleSet;
    use bat_geom::rng::Xoshiro256;
    use bat_geom::{Aabb, Vec3};

    fn coal_like_bat(n: usize) -> Bat {
        // 3 f32 coords + 7 f64 attributes, like the Coal Boiler (§VI-A2).
        let mut rng = Xoshiro256::new(13);
        let descs: Vec<AttributeDesc> = (0..7)
            .map(|i| AttributeDesc::f64(format!("a{i}")))
            .collect();
        let mut set = ParticleSet::new(descs);
        for _ in 0..n {
            let p = Vec3::new(rng.next_f32(), rng.next_f32(), rng.next_f32());
            let vals: Vec<f64> = (0..7).map(|k| p.x as f64 * (k + 1) as f64).collect();
            set.push(p, &vals);
        }
        BatBuilder::new(BatConfig::default()).build(set, Aabb::unit())
    }

    #[test]
    fn accounting_adds_up() {
        let bat = coal_like_bat(50_000);
        // `to_bytes` honors `BAT_INDEX_ATTRS`, so the identity must include
        // `index_bytes` (0 on unindexed runs).
        let bytes = bat.to_bytes();
        let stats = LayoutStats::measure(&bytes).unwrap();
        assert_eq!(
            stats.stored_payload_bytes
                + stats.structure_bytes
                + stats.index_bytes
                + stats.padding_bytes,
            stats.file_bytes
        );
        assert_eq!(stats.raw_bytes, 50_000 * (12 + 7 * 8));
        assert_eq!(stats.num_treelets, bat.treelets.len() as u64);
        assert!(stats.dict_entries >= 1);
    }

    #[test]
    fn v1_stores_payload_verbatim() {
        let bat = coal_like_bat(20_000);
        let bytes = crate::format::write_bat_with(&bat, crate::codec::Codec::V1);
        let stats = LayoutStats::measure(&bytes).unwrap();
        assert_eq!(stats.stored_payload_bytes, stats.raw_bytes);
        assert_eq!(stats.compression_ratio(), 1.0);
        assert_eq!(
            stats.raw_bytes + stats.structure_bytes + stats.padding_bytes,
            stats.file_bytes
        );
    }

    #[test]
    fn v2_accounting_reports_compression() {
        let bat = coal_like_bat(50_000);
        let bytes = crate::format::write_bat_with(&bat, crate::codec::Codec::V2Lossless);
        let stats = LayoutStats::measure(&bytes).unwrap();
        // Identity still holds with compressed payload sections.
        assert_eq!(
            stats.stored_payload_bytes + stats.structure_bytes + stats.padding_bytes,
            stats.file_bytes
        );
        // Raw bytes report the pre-compression payload; the stored payload
        // never exceeds it (codecs fall back to raw when not smaller).
        assert_eq!(stats.raw_bytes, 50_000 * (12 + 7 * 8));
        assert!(stats.stored_payload_bytes <= stats.raw_bytes);
        assert!(stats.compression_ratio() <= 1.0);
    }

    #[test]
    fn structure_overhead_is_low() {
        // The paper reports ≈0.9% additional memory for the layout. The
        // overhead amortizes with particles per treelet: at 200k uniform
        // particles the 4096 shallow cells are sparsely filled, so we only
        // require the few-percent regime here; the `stats_overhead`
        // experiment reports the sub-1% numbers at realistic file sizes.
        let bat = coal_like_bat(200_000);
        let bytes = bat.to_bytes();
        let stats = LayoutStats::measure(&bytes).unwrap();
        let ov = stats.structure_overhead();
        assert!(
            ov < 0.06,
            "structure overhead {ov:.4} should be a few percent"
        );
        assert!(ov > 0.001, "structure overhead {ov:.4} suspiciously low");
    }

    #[test]
    fn structure_overhead_amortizes_with_density() {
        // More particles over the same shallow cells → lower overhead.
        let small = {
            let bat = coal_like_bat(50_000);
            LayoutStats::measure(&bat.to_bytes())
                .unwrap()
                .structure_overhead()
        };
        let large = {
            let bat = coal_like_bat(400_000);
            LayoutStats::measure(&bat.to_bytes())
                .unwrap()
                .structure_overhead()
        };
        assert!(
            large < small,
            "overhead should shrink: {small:.4} -> {large:.4}"
        );
    }

    #[test]
    fn indexed_file_accounting_adds_up() {
        use bat_index::IndexSpec;
        let bat = coal_like_bat(50_000);
        let plain = LayoutStats::measure(&crate::format::write_bat_with(
            &bat,
            crate::codec::Codec::V1,
        ))
        .unwrap();
        let bytes =
            crate::format::write_bat_indexed(&bat, crate::codec::Codec::V1, &IndexSpec::All);
        let stats = LayoutStats::measure(&bytes).unwrap();
        assert!(stats.index_bytes > 0, "every attribute should be indexed");
        assert_eq!(
            stats.stored_payload_bytes
                + stats.structure_bytes
                + stats.index_bytes
                + stats.padding_bytes,
            stats.file_bytes
        );
        // Index blobs must not be misclassified as padding or payload.
        assert_eq!(stats.stored_payload_bytes, plain.stored_payload_bytes);
        assert!(stats.padding_bytes < plain.padding_bytes + 8 * 4096);
    }

    #[test]
    fn empty_bat_stats() {
        let bat = coal_like_bat(0);
        let bytes = bat.to_bytes();
        let stats = LayoutStats::measure(&bytes).unwrap();
        assert_eq!(stats.raw_bytes, 0);
        assert_eq!(stats.stored_payload_bytes, 0);
        assert_eq!(stats.overhead(), 0.0);
        assert_eq!(stats.compression_ratio(), 1.0);
        assert_eq!(
            stats.padding_bytes + stats.structure_bytes,
            stats.file_bytes
        );
    }
}
