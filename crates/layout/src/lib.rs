//! The Binned Attribute Tree (BAT): a low-overhead multiresolution particle
//! data layout with bitmap-index attribute filtering (paper §III-C, §V).
//!
//! A BAT is built by each write aggregator over the particles it receives,
//! in two parallel steps:
//!
//! 1. **Shallow tree** ([`shallow`]): particles are sorted by 63-bit Morton
//!    code; the unique 12-bit subprefixes of the codes are merged and a
//!    Karras-style bottom-up radix tree ([`radix`]) is built over them. Each
//!    shallow leaf covers a contiguous run of the sorted particles.
//! 2. **Treelets** ([`treelet`]): inside every shallow leaf, a median-split
//!    k-d tree is built. Each *inner* node sets aside a fixed number of LOD
//!    particles chosen by stratified sampling — a coarse representation with
//!    zero duplication. Each node also carries a 32-bit binned bitmap index
//!    per attribute ([`bitmap`]), computed over the aggregator-local value
//!    range; inner bitmaps merge their children's.
//!
//! The tree is then **compacted** ([`mod@format`]) into a single buffer: shallow
//! tree + shared bitmap dictionary ([`dict`]) at the head, treelets at 4 KiB
//! page boundaries for memory-mapped access. [`reader::BatFile`] opens a
//! compacted buffer (owned bytes or mmap) and serves the paper's
//! visualization reads ([`query`]): spatial box filters, attribute filters
//! with false-positive rejection, and progressive multiresolution reads
//! driven by a quality parameter in `[0, 1]`.
//!
//! ```
//! use bat_layout::{AttributeDesc, AttributeType, BatBuilder, BatConfig, ParticleSet, Query};
//! use bat_geom::{Aabb, Vec3};
//!
//! // 1k particles on a diagonal with one attribute.
//! let n = 1000;
//! let mut set = ParticleSet::new(vec![AttributeDesc::new("mass", AttributeType::F64)]);
//! for i in 0..n {
//!     let t = i as f32 / n as f32;
//!     set.push(Vec3::new(t, t, t), &[i as f64]);
//! }
//! let bounds = Aabb::new(Vec3::ZERO, Vec3::ONE);
//! let bat = BatBuilder::new(BatConfig::default()).build(set, bounds);
//! let bytes = bat.to_bytes();
//!
//! // Read it back and run a spatial + attribute query at full quality.
//! let file = bat_layout::BatFile::from_bytes(bytes).unwrap();
//! let q = Query::new()
//!     .with_bounds(Aabb::new(Vec3::ZERO, Vec3::splat(0.5)))
//!     .with_filter(0, 0.0, 250.0);
//! let mut hits = 0;
//! file.query(&q, |p| {
//!     assert!(p.position.x <= 0.5 && p.attrs[0] <= 250.0);
//!     hits += 1;
//! })
//! .unwrap();
//! assert_eq!(hits, 251);
//! ```

pub mod attr;
pub mod bitmap;
pub mod build;
pub mod cache;
pub mod codec;
pub mod columns;
pub mod dict;
pub mod footer;
pub mod format;
pub mod morton_sort;
pub mod particles;
pub mod quantize;
pub mod query;
pub mod radix;
pub mod reader;
pub mod shallow;
pub mod source;
pub mod stats;
pub mod treelet;

pub use attr::{AttributeArray, AttributeDesc, AttributeType};
pub use bat_index::{IndexError, IndexSpec};
pub use bitmap::Bitmap32;
pub use build::{Bat, BatBuilder, BatConfig};
pub use cache::{CacheStats, PageCache};
pub use codec::Codec;
pub use columns::ColumnarParticles;
pub use dict::BitmapDictionary;
pub use footer::{CrcSectionWriter, FileFooter, SectionCrc, SectionMismatch};
pub use format::{write_bat_indexed, IndexDirEntry};
pub use particles::ParticleSet;
pub use quantize::{quantize_positions, QuantizeReport};
pub use query::{quality_to_depth, PointRecord, Query, QueryError};
pub use reader::{BatFile, FilePlan, PlanStrategy, QueryScratch};
pub use source::{
    coalesce_ranges, ByteSource, FileSource, MemorySource, RangeConfig, RangeReader, RangeStats,
};
pub use stats::LayoutStats;
