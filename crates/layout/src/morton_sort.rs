//! Parallel stable LSD radix sort specialized for the Morton-code sort
//! that opens every BAT build (paper §III-C1: "particles are sorted by
//! Morton code").
//!
//! A comparison sort pays `O(n log n)` key comparisons; Morton codes are
//! fixed-width `u64`s, so an LSD radix sort gets the permutation in at
//! most 8 linear passes — fewer in practice, because passes over bytes
//! that are constant across the whole input (always the high bytes of a
//! quantized Morton code, and most of them for clustered data) are
//! skipped outright.
//!
//! Each pass is the textbook parallel counting sort: the `(code, index)`
//! pairs are split into chunks, every chunk histograms its digit in
//! parallel, a sequential column-major exclusive prefix over the
//! per-chunk histograms assigns each (chunk, digit) cell a disjoint
//! destination range, and the chunks scatter in parallel. Chunks scatter
//! their elements in input order into per-digit ranges laid out in chunk
//! order, so every pass is stable; 8 stable passes from the least
//! significant byte up yield exactly the stable sort by full code. The
//! chunk count therefore only affects scheduling, never the result —
//! the output equals `sort_by_key` (std's stable sort) for every thread
//! count, which is the determinism invariant of DESIGN.md §10.

use rayon::prelude::*;

/// Below this size the std stable sort wins; also the floor for parallel
/// chunk sizes so tiny tasks don't thrash the pool.
const SEQ_CUTOFF: usize = 16 << 10;

/// The sorting permutation of `codes` by value: output slot `i` names the
/// input index holding the `i`-th smallest code, ties in input order
/// (stable). `codes.len()` must fit in `u32`, like every particle count
/// in a BAT.
pub fn sorted_perm(codes: &[u64]) -> Vec<u32> {
    let n = codes.len();
    assert!(
        n <= u32::MAX as usize,
        "BAT particle counts are u32-indexed"
    );
    let threads = rayon::current_num_threads();
    if n < SEQ_CUTOFF || threads <= 1 {
        let mut perm: Vec<u32> = (0..n as u32).collect();
        perm.sort_by_key(|&i| codes[i as usize]);
        return perm;
    }

    // Pair each code with its origin index once, so passes never gather
    // through the permutation (random access); pairs move sequentially.
    let mut pairs: Vec<(u64, u32)> = codes
        .par_iter()
        .enumerate()
        .map(|(i, &c)| (c, i as u32))
        .collect();
    // Zero-initialized: every pass fully overwrites its destination, but
    // handing out `&[(u64, u32)]` over uninitialized memory would be UB.
    // One memset is noise next to the passes themselves.
    let mut scratch: Vec<(u64, u32)> = vec![(0, 0); n];

    // Bytes that never vary contribute nothing to the order: one OR and
    // one AND over the codes finds them (paralleling them isn't worth a
    // barrier; this is a single ~n-word scan).
    let (all_or, all_and) = codes
        .iter()
        .fold((0u64, u64::MAX), |(o, a), &c| (o | c, a & c));
    let varying = all_or ^ all_and;

    let chunk = n.div_ceil((4 * threads).max(1)).max(SEQ_CUTOFF / 4);
    let chunks = n.div_ceil(chunk);

    let mut src_is_pairs = true;
    for byte in 0..8 {
        if (varying >> (8 * byte)) & 0xFF == 0 {
            continue;
        }
        {
            let (src, dst) = if src_is_pairs {
                (&pairs[..], &mut scratch[..])
            } else {
                (&scratch[..], &mut pairs[..])
            };
            counting_pass(src, dst, chunk, chunks, 8 * byte);
        }
        src_is_pairs = !src_is_pairs;
    }
    if !src_is_pairs {
        std::mem::swap(&mut pairs, &mut scratch);
    }
    pairs.par_iter().map(|&(_, i)| i).collect()
}

/// One stable counting-sort pass on the byte at `shift`: parallel
/// per-chunk histograms, sequential offset assignment, parallel scatter
/// into disjoint destination ranges.
fn counting_pass(
    src: &[(u64, u32)],
    dst: &mut [(u64, u32)],
    chunk: usize,
    chunks: usize,
    shift: u32,
) {
    let n = src.len();
    let mut hist = vec![0u32; chunks * 256];
    {
        let hist_ptr = Shared(hist.as_mut_ptr());
        rayon::parallel_for(chunks, &|c| {
            let lo = c * chunk;
            let hi = (lo + chunk).min(n);
            // Each task owns row `c` of the histogram matrix.
            let row = unsafe { std::slice::from_raw_parts_mut(hist_ptr.get().add(c * 256), 256) };
            for &(code, _) in &src[lo..hi] {
                row[((code >> shift) & 0xFF) as usize] += 1;
            }
        });
    }

    // Column-major exclusive prefix: all chunks' digit-0 ranges first (in
    // chunk order), then digit 1, … — the layout that makes the pass
    // stable. Overwrites `hist` with each cell's starting offset.
    let mut running = 0u32;
    for digit in 0..256 {
        for c in 0..chunks {
            let cell = &mut hist[c * 256 + digit];
            let count = *cell;
            *cell = running;
            running += count;
        }
    }

    let dst_ptr = Shared(dst.as_mut_ptr());
    let hist = &hist;
    rayon::parallel_for(chunks, &|c| {
        let lo = c * chunk;
        let hi = (lo + chunk).min(n);
        let mut offsets = [0u32; 256];
        offsets.copy_from_slice(&hist[c * 256..(c + 1) * 256]);
        for &pair in &src[lo..hi] {
            let d = ((pair.0 >> shift) & 0xFF) as usize;
            // Disjoint ranges per (chunk, digit) cell: no two tasks write
            // the same slot.
            unsafe { dst_ptr.get().add(offsets[d] as usize).write(pair) };
            offsets[d] += 1;
        }
    });
}

/// `Sync` raw-pointer wrapper; accessed through `get()` so closures
/// capture the wrapper, not the raw pointer field.
struct Shared<T>(*mut T);
unsafe impl<T> Send for Shared<T> {}
unsafe impl<T> Sync for Shared<T> {}
impl<T> Shared<T> {
    fn get(&self) -> *mut T {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bat_geom::rng::SplitMix64;

    fn expect_stable(codes: &[u64]) -> Vec<u32> {
        let mut perm: Vec<u32> = (0..codes.len() as u32).collect();
        perm.sort_by_key(|&i| codes[i as usize]);
        perm
    }

    /// Make sure the parallel path runs even on 1-core hosts. Safe to do
    /// from concurrent tests: resizing never changes results (DESIGN.md
    /// §10), it only changes how work is scheduled.
    fn use_parallel_pool() {
        rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build_global()
            .unwrap();
    }

    #[test]
    fn empty_and_single() {
        assert!(sorted_perm(&[]).is_empty());
        assert_eq!(sorted_perm(&[7]), vec![0]);
    }

    #[test]
    fn matches_std_stable_sort_on_random_codes() {
        use_parallel_pool();
        let mut rng = SplitMix64::new(11);
        let codes: Vec<u64> = (0..100_000).map(|_| rng.next_u64()).collect();
        assert_eq!(sorted_perm(&codes), expect_stable(&codes));
    }

    #[test]
    fn duplicate_codes_keep_input_order() {
        use_parallel_pool();
        // Few distinct values → heavy ties; stability is observable.
        let mut rng = SplitMix64::new(12);
        let codes: Vec<u64> = (0..80_000).map(|_| rng.next_u64() % 16).collect();
        assert_eq!(sorted_perm(&codes), expect_stable(&codes));
    }

    #[test]
    fn clustered_codes_skip_constant_bytes() {
        use_parallel_pool();
        // High bytes constant (tight spatial cluster): the skip path.
        let mut rng = SplitMix64::new(13);
        let codes: Vec<u64> = (0..50_000)
            .map(|_| 0xABCD_EF00_0000_0000 | (rng.next_u64() & 0xFFFF))
            .collect();
        assert_eq!(sorted_perm(&codes), expect_stable(&codes));
    }

    #[test]
    fn all_codes_equal() {
        use_parallel_pool();
        let codes = vec![42u64; 30_000];
        let perm = sorted_perm(&codes);
        assert_eq!(perm, (0..30_000u32).collect::<Vec<u32>>());
    }
}
