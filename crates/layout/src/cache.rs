//! Sharded, memory-bounded treelet-block cache for the serve path.
//!
//! The BAT layout writes every treelet block at a 4 KiB page boundary
//! (DESIGN.md §9), so a treelet block is the natural page-granular caching
//! unit of the format: one entry covers the exact run of 4 KiB pages the
//! block spans, and its budget charge is that page span — never the raw
//! byte length — so cache accounting matches what the mmap read path would
//! fault in.
//!
//! The *mechanism* lives here in `bat-layout` so [`crate::reader::BatFile`]
//! can consult a cache before touching its mapping without a dependency
//! cycle (`bat-serve` depends on `bat-layout`, not the other way around).
//! The *policy* — sizing, admission priorities per query class, install —
//! is owned by `bat-serve` (DESIGN.md §12).
//!
//! Design:
//!
//! - **Sharded.** Entries hash over `(file_id, treelet)` to one of up to
//!   [`MAX_SHARDS`] shards, each behind its own lock, so concurrent
//!   serving workers do not serialize on a single cache mutex. Small
//!   budgets collapse to fewer shards so a shard can always hold at least
//!   one page.
//! - **Memory-bounded LRU.** Each shard keeps an intrusive LRU list and
//!   evicts from the cold end until an insert fits its slice of
//!   `BAT_CACHE_BYTES`.
//! - **Priority admission.** Every entry records the priority of the
//!   query that inserted it (set per worker thread via
//!   [`set_thread_priority`]). An insert may only evict entries of equal
//!   or lower priority; if walking the whole LRU list cannot free enough
//!   such bytes, the insert is *rejected* — a bulk scan cannot wash an
//!   interactive client's working set out of the cache.
//!
//! Correctness note: the cache stores verbatim copies of on-disk bytes and
//! is keyed by per-open file ids, so query results are byte-identical with
//! the cache disabled, enabled, or thrashing at a one-page budget (pinned
//! by `tests/serve_concurrent.rs` and the CI eviction-stress job).

use bat_wire::{pages_spanned, PAGE_SIZE};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Identifies one opened [`crate::reader::BatFile`]. Ids are never reused
/// within a process, so a reopened (possibly rewritten) file can never
/// alias a stale cache entry.
pub type FileId = u64;

/// Allocate a fresh [`FileId`] (called by `BatFile` on open).
pub fn next_file_id() -> FileId {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Admission priority of a cache insert. Higher values may evict lower
/// ones, never the reverse.
pub const PRIORITY_BULK: u8 = 0;
/// Default priority for unclassified reads.
pub const PRIORITY_NORMAL: u8 = 1;
/// Interactive/progressive refinement queries (the paper's viewer loop).
pub const PRIORITY_INTERACTIVE: u8 = 2;

/// Upper bound on shard count (power of two for cheap masking).
pub const MAX_SHARDS: usize = 16;

thread_local! {
    static THREAD_PRIORITY: std::cell::Cell<u8> = const { std::cell::Cell::new(PRIORITY_NORMAL) };
}

/// Set the calling thread's cache-admission priority until the guard
/// drops (restores the previous value). Serving workers set this per
/// query before executing a plan.
#[must_use = "the priority reverts when the guard drops"]
pub fn set_thread_priority(priority: u8) -> PriorityGuard {
    let prev = THREAD_PRIORITY.with(|p| p.replace(priority));
    PriorityGuard { prev }
}

/// The calling thread's current admission priority.
pub fn thread_priority() -> u8 {
    THREAD_PRIORITY.with(|p| p.get())
}

/// Restores the previous thread priority on drop.
pub struct PriorityGuard {
    prev: u8,
}

impl Drop for PriorityGuard {
    fn drop(&mut self) {
        THREAD_PRIORITY.with(|p| p.set(self.prev));
    }
}

/// Aggregate counters (process lifetime, all shards).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Inserts refused by the admission policy (victims outranked the
    /// incoming entry, or the block exceeds a shard's whole budget).
    pub rejected: u64,
    /// Entries currently resident.
    pub entries: u64,
    /// Bytes currently charged against the budget (page-rounded).
    pub bytes: u64,
}

const NIL: usize = usize::MAX;

struct Slot {
    key: (FileId, u32),
    block: Arc<Vec<u8>>,
    charged: usize,
    priority: u8,
    prev: usize,
    next: usize,
}

/// One LRU shard: an intrusive doubly-linked recency list over a slab.
#[derive(Default)]
struct Shard {
    map: HashMap<(FileId, u32), usize>,
    slots: Vec<Option<Slot>>,
    free: Vec<usize>,
    /// Most recently used slot.
    head: usize,
    /// Least recently used slot.
    tail: usize,
    bytes: usize,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            head: NIL,
            tail: NIL,
            ..Shard::default()
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = {
            let s = self.slots[i].as_ref().expect("linked slot");
            (s.prev, s.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.slots[p].as_mut().expect("prev slot").next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n].as_mut().expect("next slot").prev = prev,
        }
    }

    fn push_front(&mut self, i: usize) {
        {
            let s = self.slots[i].as_mut().expect("slot to link");
            s.prev = NIL;
            s.next = self.head;
        }
        if let Some(h) = self.slots.get_mut(self.head).and_then(Option::as_mut) {
            h.prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn remove(&mut self, i: usize) -> Slot {
        self.unlink(i);
        let slot = self.slots[i].take().expect("slot to remove");
        self.map.remove(&slot.key);
        self.bytes -= slot.charged;
        self.free.push(i);
        slot
    }

    fn insert_front(&mut self, slot: Slot) {
        let key = slot.key;
        let charged = slot.charged;
        let i = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Some(slot);
                i
            }
            None => {
                self.slots.push(Some(slot));
                self.slots.len() - 1
            }
        };
        self.map.insert(key, i);
        self.bytes += charged;
        self.push_front(i);
    }
}

/// The sharded, memory-bounded, priority-admitting treelet-block cache.
pub struct PageCache {
    shards: Vec<Mutex<Shard>>,
    shard_budget: usize,
    budget: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    rejected: AtomicU64,
}

impl PageCache {
    /// A cache bounded to `budget_bytes` (page-rounded charges), with a
    /// shard count scaled so every shard can hold at least one page.
    pub fn new(budget_bytes: usize) -> Arc<PageCache> {
        let shards = MAX_SHARDS.min((budget_bytes / PAGE_SIZE).max(1));
        PageCache::with_shards(budget_bytes, shards)
    }

    /// As [`PageCache::new`] with an explicit shard count (clamped to
    /// `1..=MAX_SHARDS`).
    pub fn with_shards(budget_bytes: usize, shards: usize) -> Arc<PageCache> {
        let shards = shards.clamp(1, MAX_SHARDS);
        Arc::new(PageCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::new())).collect(),
            shard_budget: budget_bytes / shards,
            budget: budget_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        })
    }

    /// Total byte budget across all shards.
    pub fn budget(&self) -> usize {
        self.budget
    }

    fn shard(&self, file: FileId, treelet: u32) -> &Mutex<Shard> {
        // Fibonacci-style mix of both key halves; shard count is small so
        // the top bits carry the selection.
        let h = file
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(17)
            .wrapping_add((treelet as u64).wrapping_mul(0xA24B_AED4_963E_E407));
        &self.shards[(h >> 48) as usize % self.shards.len()]
    }

    /// Look up a treelet block; a hit refreshes its recency.
    pub fn get(&self, file: FileId, treelet: u32) -> Option<Arc<Vec<u8>>> {
        let mut shard = self
            .shard(file, treelet)
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        match shard.map.get(&(file, treelet)).copied() {
            Some(i) => {
                shard.unlink(i);
                shard.push_front(i);
                let block = shard.slots[i].as_ref().expect("hit slot").block.clone();
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                if bat_obs::enabled() {
                    bat_obs::counter_add("cache.hits", 1);
                }
                Some(block)
            }
            None => {
                drop(shard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                if bat_obs::enabled() {
                    bat_obs::counter_add("cache.misses", 1);
                }
                None
            }
        }
    }

    /// True when a block for `(file, treelet)` is resident. Pure probe:
    /// touches neither recency nor the hit/miss counters, so planners
    /// (e.g. the range-path prefetcher deciding what to fetch) can consult
    /// the cache without distorting its statistics.
    pub fn contains(&self, file: FileId, treelet: u32) -> bool {
        let shard = self
            .shard(file, treelet)
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        shard.map.contains_key(&(file, treelet))
    }

    /// Offer a treelet block at `priority` (normally the thread priority
    /// of the executing query; see [`set_thread_priority`]). The charge is
    /// the block's 4 KiB page span. Eviction walks the shard's LRU list
    /// from the cold end, skipping entries that outrank `priority`; if the
    /// evictable bytes cannot cover the charge the insert is rejected.
    pub fn insert(&self, file: FileId, treelet: u32, block: Arc<Vec<u8>>, priority: u8) {
        let charged = pages_spanned(0, block.len()) as usize * PAGE_SIZE;
        if charged > self.shard_budget || charged == 0 {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            if bat_obs::enabled() {
                bat_obs::counter_add("cache.rejected", 1);
            }
            return;
        }
        let mut shard = self
            .shard(file, treelet)
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if shard.map.contains_key(&(file, treelet)) {
            // Racing workers materialized the same block; the resident
            // copy is identical by construction — keep it.
            return;
        }

        // Feasibility pass: can enough equal-or-lower-priority bytes be
        // freed, walking cold to hot?
        let need = (shard.bytes + charged).saturating_sub(self.shard_budget);
        if need > 0 {
            let mut freeable = 0usize;
            let mut i = shard.tail;
            while i != NIL && freeable < need {
                let s = shard.slots[i].as_ref().expect("lru slot");
                if s.priority <= priority {
                    freeable += s.charged;
                }
                i = s.prev;
            }
            if freeable < need {
                drop(shard);
                self.rejected.fetch_add(1, Ordering::Relaxed);
                if bat_obs::enabled() {
                    bat_obs::counter_add("cache.rejected", 1);
                }
                return;
            }
            // Eviction pass: free exactly what the feasibility pass found.
            let mut freed = 0usize;
            let mut i = shard.tail;
            let mut evicted = 0u64;
            while i != NIL && freed < need {
                let (prev, evictable, charge) = {
                    let s = shard.slots[i].as_ref().expect("lru slot");
                    (s.prev, s.priority <= priority, s.charged)
                };
                if evictable {
                    shard.remove(i);
                    freed += charge;
                    evicted += 1;
                }
                i = prev;
            }
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
            if bat_obs::enabled() {
                bat_obs::counter_add("cache.evictions", evicted);
            }
        }

        shard.insert_front(Slot {
            key: (file, treelet),
            block,
            charged,
            priority,
            prev: NIL,
            next: NIL,
        });
        // The shard lock must be released before the gauge: bytes_cached()
        // locks every shard, and the shard mutex is not reentrant.
        drop(shard);
        if bat_obs::enabled() {
            bat_obs::gauge_set("cache.bytes", self.bytes_cached() as f64);
        }
    }

    /// Bytes currently charged across all shards.
    pub fn bytes_cached(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).bytes)
            .sum()
    }

    /// Lifetime counters plus current residency.
    pub fn stats(&self) -> CacheStats {
        let mut entries = 0u64;
        let mut bytes = 0u64;
        for s in &self.shards {
            let s = s.lock().unwrap_or_else(|e| e.into_inner());
            entries += s.map.len() as u64;
            bytes += s.bytes as u64;
        }
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            entries,
            bytes,
        }
    }
}

// ---------------------------------------------------------------------------
// Global install (the zero-code engagement path)
// ---------------------------------------------------------------------------

enum GlobalState {
    /// Nothing decided yet: first [`global`] call consults
    /// `BAT_CACHE_BYTES`.
    Unset,
    /// Explicitly disabled (or the env was absent/unparsable).
    Disabled,
    Installed(Arc<PageCache>),
}

fn global_slot() -> &'static Mutex<GlobalState> {
    static GLOBAL: OnceLock<Mutex<GlobalState>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(GlobalState::Unset))
}

/// Install (or, with `None`, remove) the process-wide cache that
/// [`crate::reader::BatFile`] consumers attach by default. `bat-serve`
/// calls this when configuring a server; the env path below covers
/// processes that never touch `bat-serve`.
pub fn install_global(cache: Option<Arc<PageCache>>) {
    let mut slot = global_slot().lock().unwrap_or_else(|e| e.into_inner());
    *slot = match cache {
        Some(c) => GlobalState::Installed(c),
        None => GlobalState::Disabled,
    };
}

/// The process-wide cache, if any. The first call (absent an explicit
/// [`install_global`]) reads `BAT_CACHE_BYTES` — a byte budget, optional
/// `k`/`m`/`g` suffix — so the entire tier-1 suite can run against a
/// cache (even a one-page one) by exporting a single variable.
pub fn global() -> Option<Arc<PageCache>> {
    let mut slot = global_slot().lock().unwrap_or_else(|e| e.into_inner());
    if let GlobalState::Unset = *slot {
        *slot = match std::env::var("BAT_CACHE_BYTES")
            .ok()
            .and_then(|v| parse_bytes(&v))
        {
            Some(budget) if budget > 0 => GlobalState::Installed(PageCache::new(budget)),
            _ => GlobalState::Disabled,
        };
    }
    match &*slot {
        GlobalState::Installed(c) => Some(c.clone()),
        _ => None,
    }
}

/// Parse `"4096"`, `"64k"`, `"256m"`, `"2g"` (case-insensitive).
pub fn parse_bytes(s: &str) -> Option<usize> {
    let t = s.trim().to_ascii_lowercase();
    let (digits, mult) = match t.as_bytes().last()? {
        b'k' => (&t[..t.len() - 1], 1usize << 10),
        b'm' => (&t[..t.len() - 1], 1 << 20),
        b'g' => (&t[..t.len() - 1], 1 << 30),
        _ => (t.as_str(), 1),
    };
    digits
        .trim()
        .parse::<usize>()
        .ok()
        .and_then(|n| n.checked_mul(mult))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(pages: usize) -> Arc<Vec<u8>> {
        Arc::new(vec![0xAB; pages * PAGE_SIZE])
    }

    #[test]
    fn hit_miss_and_recency() {
        let c = PageCache::with_shards(8 * PAGE_SIZE, 1);
        assert!(c.get(1, 0).is_none());
        c.insert(1, 0, block(1), PRIORITY_NORMAL);
        assert!(c.get(1, 0).is_some());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn lru_eviction_order() {
        let c = PageCache::with_shards(2 * PAGE_SIZE, 1);
        c.insert(1, 0, block(1), PRIORITY_NORMAL);
        c.insert(1, 1, block(1), PRIORITY_NORMAL);
        // Touch 0 so 1 is the LRU victim.
        assert!(c.get(1, 0).is_some());
        c.insert(1, 2, block(1), PRIORITY_NORMAL);
        assert!(c.get(1, 0).is_some(), "recently used entry must survive");
        assert!(c.get(1, 1).is_none(), "LRU entry must be evicted");
        assert!(c.get(1, 2).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn admission_respects_priority() {
        let c = PageCache::with_shards(PAGE_SIZE, 1);
        c.insert(1, 0, block(1), PRIORITY_INTERACTIVE);
        // A bulk insert may not evict the interactive entry.
        c.insert(1, 1, block(1), PRIORITY_BULK);
        assert!(c.get(1, 0).is_some(), "high-priority entry must survive");
        assert!(c.get(1, 1).is_none(), "low-priority insert was rejected");
        assert_eq!(c.stats().rejected, 1);
        // An equal-priority insert may evict it.
        c.insert(1, 2, block(1), PRIORITY_INTERACTIVE);
        assert!(c.get(1, 2).is_some());
        assert!(c.get(1, 0).is_none());
    }

    #[test]
    fn oversized_blocks_rejected() {
        let c = PageCache::with_shards(PAGE_SIZE, 1);
        c.insert(1, 0, block(2), PRIORITY_INTERACTIVE);
        assert_eq!(c.stats().entries, 0);
        assert_eq!(c.stats().rejected, 1);
    }

    #[test]
    fn charges_are_page_rounded() {
        let c = PageCache::with_shards(4 * PAGE_SIZE, 1);
        c.insert(1, 0, Arc::new(vec![1u8; 10]), PRIORITY_NORMAL);
        assert_eq!(c.stats().bytes, PAGE_SIZE as u64);
    }

    #[test]
    fn shard_count_scales_with_budget() {
        assert_eq!(PageCache::new(PAGE_SIZE).shards.len(), 1);
        assert_eq!(PageCache::new(64 << 20).shards.len(), MAX_SHARDS);
    }

    #[test]
    fn thread_priority_guard_restores() {
        assert_eq!(thread_priority(), PRIORITY_NORMAL);
        {
            let _g = set_thread_priority(PRIORITY_INTERACTIVE);
            assert_eq!(thread_priority(), PRIORITY_INTERACTIVE);
            {
                let _g2 = set_thread_priority(PRIORITY_BULK);
                assert_eq!(thread_priority(), PRIORITY_BULK);
            }
            assert_eq!(thread_priority(), PRIORITY_INTERACTIVE);
        }
        assert_eq!(thread_priority(), PRIORITY_NORMAL);
    }

    #[test]
    fn parse_bytes_suffixes() {
        assert_eq!(parse_bytes("4096"), Some(4096));
        assert_eq!(parse_bytes("64k"), Some(64 << 10));
        assert_eq!(parse_bytes("2M"), Some(2 << 20));
        assert_eq!(parse_bytes("1g"), Some(1 << 30));
        assert_eq!(parse_bytes("nope"), None);
    }

    #[test]
    fn insert_with_obs_enabled_does_not_self_deadlock() {
        // Regression: the post-insert `cache.bytes` gauge sums every
        // shard's bytes; computing it while still holding the inserting
        // shard's (non-reentrant) lock hung the first observed insert.
        let _obs = bat_obs::enable();
        let reg = Arc::new(bat_obs::Registry::new());
        let _scope = bat_obs::scope(reg.clone());
        let c = PageCache::with_shards(2 * PAGE_SIZE, 1);
        for t in 0..4 {
            c.insert(7, t, block(1), PRIORITY_NORMAL);
            assert!(c.get(7, t).is_some());
        }
        assert_eq!(reg.gauge("cache.bytes").get(), (2 * PAGE_SIZE) as f64);
        assert!(reg.counter("cache.evictions").get() >= 2);
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let c = PageCache::new(64 * PAGE_SIZE);
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for i in 0..200u32 {
                        let key = i % 32;
                        if let Some(b) = c.get(t, key) {
                            assert_eq!(b.len(), PAGE_SIZE);
                        } else {
                            c.insert(t, key, Arc::new(vec![t as u8; PAGE_SIZE]), PRIORITY_NORMAL);
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = c.stats();
        assert!(s.bytes <= c.budget() as u64);
        assert_eq!(s.hits + s.misses, 800);
    }
}
