//! The executed two-phase write pipeline (paper §III, Fig. 1).
//!
//! Every rank calls [`write_particles`] collectively. Rank 0 gathers each
//! rank's particle count and spatial bounds, builds the Aggregation Tree
//! (adaptive k-d by default, or the AUG baseline for comparisons), assigns
//! leaves to aggregator ranks spread across the rank space, and scatters
//! the assignments. Ranks then send their particles to their leaf's
//! aggregator with nonblocking sends; each aggregator builds a Binned
//! Attribute Tree over what it received, compacts it, and writes one file.
//! Finally rank 0 gathers every aggregator's value ranges and root bitmaps
//! and writes the top-level `.batmeta` (paper §III-D).

use bat_aggregation::meta::{LeafReport, MetaTree};
use bat_aggregation::{assign_aggregators, build_aug_tree, AggConfig, AggregationTree, BalanceStats, RankInfo};
use bat_comm::Comm;
use bat_geom::Aabb;
use bat_iosim::{PhaseTimes, WritePhase};
use bat_layout::{BatBuilder, BatConfig, ParticleSet};
use bat_wire::{Decoder, Encoder, WireResult};
use bytes::Bytes;
use std::io;
use std::path::Path;
use std::time::Instant;

/// Tag for particle payloads flowing to write aggregators.
pub(crate) const TAG_DATA: u32 = 1;

/// Which aggregation strategy to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// The paper's adaptive k-d aggregation tree (§III-A).
    Adaptive,
    /// The adjustable-uniform-grid baseline of Kumar et al. \[27\].
    Aug,
}

/// Write pipeline configuration.
#[derive(Debug, Clone, Copy)]
pub struct WriteConfig {
    /// Aggregation strategy (adaptive tree or AUG baseline).
    pub strategy: Strategy,
    /// Aggregation-tree parameters (target size, overfull policy).
    pub agg: AggConfig,
    /// BAT layout parameters.
    pub bat: BatConfig,
}

impl WriteConfig {
    /// Adaptive aggregation at the given target file size, with the paper's
    /// default overfull policy and BAT parameters.
    pub fn with_target_size(target_file_bytes: u64, bytes_per_particle: u64) -> WriteConfig {
        WriteConfig {
            strategy: Strategy::Adaptive,
            agg: AggConfig::new(target_file_bytes, bytes_per_particle),
            // Auto subprefix: resolves to the paper's 12 bits at realistic
            // aggregator populations, fewer for small ones (less padding).
            bat: BatConfig::auto(),
        }
    }

    /// Automatic target-size selection: rank 0 picks the size from the
    /// gathered totals using the paper's recommendations (§VI-A2, encoded
    /// in [`bat_aggregation::recommended_target_size`]). Addresses the
    /// §VII future-work item.
    pub fn auto(bytes_per_particle: u64) -> WriteConfig {
        WriteConfig::with_target_size(0, bytes_per_particle)
    }

    /// Same parameters but using the AUG baseline.
    pub fn aug(mut self) -> WriteConfig {
        self.strategy = Strategy::Aug;
        self
    }
}

/// Result of a collective write, identical on every rank.
#[derive(Debug, Clone)]
pub struct WriteReport {
    /// Slowest-rank time per pipeline component, plus end-to-end total.
    pub times: PhaseTimes,
    /// Leaf-file balance statistics.
    pub balance: BalanceStats,
    /// Number of leaf files written.
    pub files: usize,
    /// Total particle payload bytes across all ranks.
    pub bytes_total: u64,
}

/// One aggregator duty: which leaf to receive and write.
#[derive(Debug, Clone)]
struct LeafDuty {
    leaf_idx: u32,
    file: String,
    bounds: Aabb,
    /// `(source rank, particle count)` pairs, including the aggregator
    /// itself if it owns particles in the leaf.
    sources: Vec<(u32, u64)>,
}

/// Per-rank assignment scattered from rank 0.
#[derive(Debug, Clone, Default)]
struct Assignment {
    /// Aggregator to send this rank's particles to (`None` = no particles).
    agg_of_me: Option<u32>,
    /// Set when this rank aggregates a leaf.
    duty: Option<LeafDuty>,
}

fn put_aabb(enc: &mut Encoder, b: &Aabb) {
    for v in [b.min.x, b.min.y, b.min.z, b.max.x, b.max.y, b.max.z] {
        enc.put_f32(v);
    }
}

fn get_aabb(dec: &mut Decoder) -> WireResult<Aabb> {
    Ok(Aabb::new(
        bat_geom::Vec3::new(dec.get_f32("aabb")?, dec.get_f32("aabb")?, dec.get_f32("aabb")?),
        bat_geom::Vec3::new(dec.get_f32("aabb")?, dec.get_f32("aabb")?, dec.get_f32("aabb")?),
    ))
}

impl Assignment {
    fn encode(&self) -> Bytes {
        let mut enc = Encoder::new();
        match self.agg_of_me {
            Some(a) => {
                enc.put_bool(true);
                enc.put_u32(a);
            }
            None => enc.put_bool(false),
        }
        match &self.duty {
            Some(d) => {
                enc.put_bool(true);
                enc.put_u32(d.leaf_idx);
                enc.put_str(&d.file);
                put_aabb(&mut enc, &d.bounds);
                enc.put_u64(d.sources.len() as u64);
                for &(r, c) in &d.sources {
                    enc.put_u32(r);
                    enc.put_u64(c);
                }
            }
            None => enc.put_bool(false),
        }
        Bytes::from(enc.finish())
    }

    fn decode(data: &[u8]) -> WireResult<Assignment> {
        let mut dec = Decoder::new(data);
        let agg_of_me = if dec.get_bool("has agg")? {
            Some(dec.get_u32("agg rank")?)
        } else {
            None
        };
        let duty = if dec.get_bool("has duty")? {
            let leaf_idx = dec.get_u32("leaf idx")?;
            let file = dec.get_str("leaf file")?;
            let bounds = get_aabb(&mut dec)?;
            let ns = dec.get_usize("num sources")?;
            let mut sources = Vec::with_capacity(ns);
            for _ in 0..ns {
                let r = dec.get_u32("source rank")?;
                let c = dec.get_u64("source count")?;
                sources.push((r, c));
            }
            Some(LeafDuty { leaf_idx, file, bounds, sources })
        } else {
            None
        };
        Ok(Assignment { agg_of_me, duty })
    }
}

/// Resolve an automatic target size (`target_file_bytes == 0`) from the
/// gathered rank population.
pub fn resolve_config(ranks: &[RankInfo], cfg: &WriteConfig) -> WriteConfig {
    let mut resolved = *cfg;
    if resolved.agg.target_file_bytes == 0 {
        let total: u64 = ranks
            .iter()
            .map(|r| r.particles * cfg.agg.bytes_per_particle)
            .sum();
        resolved.agg.target_file_bytes =
            bat_aggregation::recommended_target_size(total, ranks.len());
    }
    resolved
}

/// Build the aggregation tree for the chosen strategy (resolving an
/// automatic target size first).
pub fn build_tree(ranks: &[RankInfo], cfg: &WriteConfig) -> AggregationTree {
    let cfg = resolve_config(ranks, cfg);
    match cfg.strategy {
        Strategy::Adaptive => AggregationTree::build(ranks, &cfg.agg),
        Strategy::Aug => build_aug_tree(ranks, &cfg.agg),
    }
}

/// The leaf file name for a dataset `basename`.
pub fn leaf_file_name(basename: &str, leaf_idx: u32) -> String {
    format!("{basename}.{leaf_idx:05}.bat")
}

/// The metadata file name for a dataset `basename`.
pub fn meta_file_name(basename: &str) -> String {
    format!("{basename}.batmeta")
}

/// Collectively write a timestep. Every rank passes its local particles and
/// its bounds in the simulation domain; files land in `dir` under
/// `basename`. Returns the same [`WriteReport`] on every rank.
pub fn write_particles(
    comm: &Comm,
    set: ParticleSet,
    bounds: Aabb,
    cfg: &WriteConfig,
    dir: &Path,
    basename: &str,
) -> io::Result<WriteReport> {
    write_particles_in_transit(comm, set, bounds, cfg, dir, basename, |_, _| {})
}

/// As [`write_particles`], additionally invoking `hook(leaf_index, &bat)`
/// on every aggregator once its BAT is built, *before* it is written — the
/// paper's in-transit visualization/analysis entry point (§III-C: "the
/// tree can be used for in transit visualization and analysis on the
/// aggregators before or instead of being written to disk").
pub fn write_particles_in_transit(
    comm: &Comm,
    set: ParticleSet,
    bounds: Aabb,
    cfg: &WriteConfig,
    dir: &Path,
    basename: &str,
    mut hook: impl FnMut(u32, &bat_layout::Bat),
) -> io::Result<WriteReport> {
    let bat_cfg = cfg.bat;
    write_pipeline(comm, set, bounds, cfg, dir, basename, |leaf_idx, merged, leaf_bounds| {
        let bat = BatBuilder::new(bat_cfg).build(merged, leaf_bounds);
        hook(leaf_idx, &bat);
        let local_bitmaps = (0..bat.descs().len()).map(|a| bat.root_bitmap(a)).collect();
        (bat.to_bytes(), bat.attr_ranges.clone(), local_bitmaps)
    })
}

/// A user-defined aggregator-side layout (paper §VII future work: "Allowing
/// users to build their own data layout would ease adoption of our method
/// for simulation-analysis pipelines that already use a specific layout").
///
/// The adaptive aggregation, transfer, and metadata machinery are reused
/// unchanged; only the bytes written per leaf file come from the sink. The
/// top-level metadata still carries exact global attribute ranges and
/// conservative root bitmaps (computed generically from the merged
/// particles), so metadata-level spatial/attribute culling keeps working —
/// but the leaf files themselves are opaque to [`crate::Dataset`] and the
/// parallel read pipeline; reading them back is the layout owner's job.
pub trait LayoutSink: Sync {
    /// Produce the leaf file's bytes for the merged particles of one
    /// aggregation leaf.
    fn build(&self, leaf_idx: u32, set: &ParticleSet, bounds: Aabb) -> Vec<u8>;
}

/// As [`write_particles`], but writing each leaf with a user-supplied
/// [`LayoutSink`] instead of the BAT (§VII).
pub fn write_particles_with_sink(
    comm: &Comm,
    set: ParticleSet,
    bounds: Aabb,
    cfg: &WriteConfig,
    dir: &Path,
    basename: &str,
    sink: &impl LayoutSink,
) -> io::Result<WriteReport> {
    write_pipeline(comm, set, bounds, cfg, dir, basename, |leaf_idx, merged, leaf_bounds| {
        let bytes = sink.build(leaf_idx, &merged, leaf_bounds);
        // Generic metadata stats: exact local ranges, bitmaps binned over
        // them (identical semantics to the BAT's root bitmaps).
        let ranges: Vec<(f64, f64)> =
            (0..merged.num_attrs()).map(|a| merged.attr(a).value_range()).collect();
        let bitmaps = ranges
            .iter()
            .enumerate()
            .map(|(a, &(lo, hi))| {
                bat_layout::Bitmap32::from_values(
                    (0..merged.len()).map(|i| merged.value(a, i)),
                    lo,
                    hi,
                )
            })
            .collect();
        (bytes, ranges, bitmaps)
    })
}

/// The shared two-phase pipeline; `leaf_builder` maps one leaf's merged
/// particles to `(file bytes, local attribute ranges, root bitmaps)`.
fn write_pipeline(
    comm: &Comm,
    set: ParticleSet,
    bounds: Aabb,
    cfg: &WriteConfig,
    dir: &Path,
    basename: &str,
    mut leaf_builder: impl FnMut(u32, ParticleSet, Aabb) -> (Vec<u8>, Vec<(f64, f64)>, Vec<bat_layout::Bitmap32>),
) -> io::Result<WriteReport> {
    let descs = set.descs().to_vec();
    let mut times = PhaseTimes::new();
    comm.barrier();
    let t_start = Instant::now();

    // --- Phase 1: gather rank infos; rank 0 builds the tree (§III-A). ---
    let t0 = Instant::now();
    let info = RankInfo::new(comm.rank() as u32, bounds, set.len() as u64);
    let mut enc = Encoder::new();
    info.encode(&mut enc);
    let gathered = comm.gather(0, Bytes::from(enc.finish()));
    bat_obs::observe_duration("write.gather_bounds_ns", t0.elapsed());

    let t_tree = Instant::now();
    let assignment_bytes = if comm.rank() == 0 {
        let infos: Vec<RankInfo> = gathered
            .expect("root gathers")
            .iter()
            .map(|b| RankInfo::decode(&mut Decoder::new(b)).expect("valid rank info"))
            .collect();
        let mut tree = build_tree(&infos, cfg);
        assign_aggregators(&mut tree.leaves, comm.size());

        // Build per-rank assignments.
        let mut assignments: Vec<Assignment> = vec![Assignment::default(); comm.size()];
        for (li, leaf) in tree.leaves.iter().enumerate() {
            let duty = LeafDuty {
                leaf_idx: li as u32,
                file: leaf_file_name(basename, li as u32),
                bounds: leaf.bounds,
                sources: leaf
                    .ranks
                    .iter()
                    .map(|&r| (r, infos[r as usize].particles))
                    .collect(),
            };
            for &(r, _) in &duty.sources {
                assignments[r as usize].agg_of_me = Some(leaf.aggregator);
            }
            assignments[leaf.aggregator as usize].duty = Some(duty);
        }
        Some(assignments.iter().map(Assignment::encode).collect::<Vec<_>>())
    } else {
        None
    };
    if comm.rank() == 0 {
        bat_obs::observe_duration("write.agg_tree_build_ns", t_tree.elapsed());
    }
    times[WritePhase::TreeBuild] = t0.elapsed().as_secs_f64();

    // --- Phase 2: scatter assignments. ---
    let t0 = Instant::now();
    let mine = comm.scatter(0, assignment_bytes);
    let assignment = Assignment::decode(&mine).expect("valid assignment");
    let el = t0.elapsed();
    bat_obs::observe_duration("write.scatter_ns", el);
    times[WritePhase::Scatter] = el.as_secs_f64();

    // --- Phase 3: transfer particles to aggregators (§III-B). ---
    let t0 = Instant::now();
    let my_bytes = set.raw_bytes() as u64;
    if let Some(agg) = assignment.agg_of_me {
        let mut enc = Encoder::with_capacity(set.raw_bytes() + 64);
        set.encode(&mut enc);
        let payload = Bytes::from(enc.finish());
        bat_obs::counter_add("write.shuffle.send_bytes", payload.len() as u64);
        bat_obs::counter_add("write.shuffle.send_msgs", 1);
        comm.isend(agg as usize, TAG_DATA, payload);
    }
    // Aggregators receive from every source (self-sends included above).
    let mut received: Option<ParticleSet> = None;
    if let Some(duty) = &assignment.duty {
        let mut merged = ParticleSet::new(descs.clone());
        for &(src, count) in &duty.sources {
            let msg = comm.recv(Some(src as usize), TAG_DATA);
            bat_obs::counter_add("write.shuffle.recv_bytes", msg.payload.len() as u64);
            bat_obs::counter_add("write.shuffle.recv_msgs", 1);
            let part = ParticleSet::decode(&mut Decoder::new(&msg.payload))
                .expect("valid particle payload");
            assert_eq!(part.len() as u64, count, "source {src} count mismatch");
            merged.append(&part);
        }
        received = Some(merged);
    }
    let el = t0.elapsed();
    bat_obs::observe_duration("write.shuffle_ns", el);
    times[WritePhase::Transfer] = el.as_secs_f64();

    // --- Phase 4: build the layout on each aggregator (§III-C). ---
    let t0 = Instant::now();
    let mut compacted: Option<Vec<u8>> = None;
    let mut report: Option<LeafReport> = None;
    if let Some(duty) = &assignment.duty {
        let merged = received.take().expect("aggregator received data");
        let particles = merged.len() as u64;
        let (bytes, local_ranges, local_bitmaps) =
            leaf_builder(duty.leaf_idx, merged, duty.bounds);
        report = Some(LeafReport {
            file: duty.file.clone(),
            bounds: duty.bounds,
            particles,
            aggregator: comm.rank() as u32,
            local_ranges,
            local_bitmaps,
        });
        compacted = Some(bytes);
    }
    let el = t0.elapsed();
    if assignment.duty.is_some() {
        bat_obs::observe_duration("write.layout_build_ns", el);
    }
    times[WritePhase::LayoutBuild] = el.as_secs_f64();

    // --- Phase 5: write leaf files. ---
    let t0 = Instant::now();
    if let (Some(bytes), Some(duty)) = (&compacted, &assignment.duty) {
        std::fs::write(dir.join(&duty.file), bytes)?;
        bat_obs::counter_add("write.file.bytes", bytes.len() as u64);
        bat_obs::counter_add("write.file.count", 1);
        bat_obs::observe_duration("write.file_write_ns", t0.elapsed());
    }
    times[WritePhase::FileWrite] = t0.elapsed().as_secs_f64();

    // --- Phase 6: gather leaf reports; rank 0 writes metadata (§III-D). ---
    let t0 = Instant::now();
    let payload = match &report {
        Some(r) => {
            let mut enc = Encoder::new();
            enc.put_bool(true);
            r.encode(&mut enc);
            Bytes::from(enc.finish())
        }
        None => {
            let mut enc = Encoder::new();
            enc.put_bool(false);
            Bytes::from(enc.finish())
        }
    };
    let reports = comm.gather(0, payload);
    let mut meta_summary: Option<(usize, BalanceStats)> = None;
    if comm.rank() == 0 {
        let mut leaf_reports = Vec::new();
        for b in reports.expect("root gathers") {
            let mut dec = Decoder::new(&b);
            if dec.get_bool("has report").expect("valid report flag") {
                leaf_reports.push(LeafReport::decode(&mut dec).expect("valid leaf report"));
            }
        }
        // Order leaves by index for stable metadata.
        leaf_reports.sort_by(|a, b| a.file.cmp(&b.file));
        let balance = balance_from_reports(&leaf_reports, cfg.agg.bytes_per_particle);
        let files = leaf_reports.len();
        let meta = MetaTree::build(descs.clone(), leaf_reports);
        std::fs::write(dir.join(meta_file_name(basename)), meta.encode())?;
        meta_summary = Some((files, balance));
    }
    let el = t0.elapsed();
    bat_obs::observe_duration("write.metadata_ns", el);
    times[WritePhase::Metadata] = el.as_secs_f64();
    times.total = t_start.elapsed().as_secs_f64();
    bat_obs::observe_duration("write.total_ns", t_start.elapsed());
    bat_obs::counter_add("write.particles", set.len() as u64);

    // --- Merge the report across ranks so every rank returns the same. ---
    let bytes_total = comm.allreduce_u64(my_bytes, |a, b| a + b);
    let merged_times = reduce_times(comm, &times);
    let (files, balance) = broadcast_summary(comm, meta_summary);

    Ok(WriteReport { times: merged_times, balance, files, bytes_total })
}

/// Max-merge phase times across ranks and broadcast the result.
pub(crate) fn reduce_times(comm: &Comm, times: &PhaseTimes) -> PhaseTimes {
    let mut enc = Encoder::new();
    for p in WritePhase::ALL {
        enc.put_f64(times[p]);
    }
    enc.put_f64(times.total);
    let gathered = comm.gather(0, Bytes::from(enc.finish()));
    let merged_bytes = if comm.rank() == 0 {
        let mut merged = PhaseTimes::new();
        for b in gathered.expect("root gathers") {
            let mut dec = Decoder::new(&b);
            let mut pt = PhaseTimes::new();
            for p in WritePhase::ALL {
                pt[p] = dec.get_f64("phase time").expect("valid time");
            }
            pt.total = dec.get_f64("total time").expect("valid total");
            merged.max_merge(&pt);
        }
        let mut enc = Encoder::new();
        for p in WritePhase::ALL {
            enc.put_f64(merged[p]);
        }
        enc.put_f64(merged.total);
        Some(Bytes::from(enc.finish()))
    } else {
        None
    };
    let out = comm.bcast(0, merged_bytes);
    let mut dec = Decoder::new(&out);
    let mut pt = PhaseTimes::new();
    for p in WritePhase::ALL {
        pt[p] = dec.get_f64("merged phase").expect("valid merged");
    }
    pt.total = dec.get_f64("merged total").expect("valid merged total");
    pt
}

fn balance_from_reports(reports: &[LeafReport], bpp: u64) -> BalanceStats {
    let leaves: Vec<bat_aggregation::AggLeaf> = reports
        .iter()
        .map(|r| bat_aggregation::AggLeaf {
            ranks: Vec::new(),
            bounds: r.bounds,
            particles: r.particles,
            bytes: r.particles * bpp,
            aggregator: r.aggregator,
        })
        .collect();
    bat_aggregation::tree::balance_of(&leaves)
}

fn broadcast_summary(
    comm: &Comm,
    summary: Option<(usize, BalanceStats)>,
) -> (usize, BalanceStats) {
    let payload = summary.map(|(files, b)| {
        let mut enc = Encoder::new();
        enc.put_u64(files as u64);
        enc.put_u64(b.num_files as u64);
        enc.put_f64(b.mean_bytes);
        enc.put_f64(b.stddev_bytes);
        enc.put_u64(b.max_bytes);
        enc.put_u64(b.min_bytes);
        Bytes::from(enc.finish())
    });
    let out = comm.bcast(0, payload);
    let mut dec = Decoder::new(&out);
    let files = dec.get_u64("files").expect("valid summary") as usize;
    let balance = BalanceStats {
        num_files: dec.get_u64("num files").expect("valid") as usize,
        mean_bytes: dec.get_f64("mean").expect("valid"),
        stddev_bytes: dec.get_f64("stddev").expect("valid"),
        max_bytes: dec.get_u64("max").expect("valid"),
        min_bytes: dec.get_u64("min").expect("valid"),
    };
    (files, balance)
}
