//! The executed two-phase write pipeline (paper §III, Fig. 1).
//!
//! Every rank calls [`write_particles`] collectively. Rank 0 gathers each
//! rank's particle count and spatial bounds, builds the Aggregation Tree
//! (adaptive k-d by default, or the AUG baseline for comparisons), assigns
//! leaves to aggregator ranks spread across the rank space, and scatters
//! the assignments. Ranks then send their particles to their leaf's
//! aggregator with nonblocking sends; each aggregator builds a Binned
//! Attribute Tree over what it received, compacts it, and writes one file.
//! Finally rank 0 gathers every aggregator's value ranges and root bitmaps
//! and writes the top-level `.batmeta` (paper §III-D).

use bat_aggregation::meta::{LeafReport, MetaTree};
use bat_aggregation::{
    assign_aggregators, build_aug_tree, AggConfig, AggregationTree, BalanceStats, CommitManifest,
    ManifestEntry, RankInfo,
};
use bat_comm::{Comm, CommError};
use bat_faults::Fault;
use bat_geom::Aabb;
use bat_iosim::{PhaseTimes, WritePhase};
use bat_layout::{BatBuilder, BatConfig, ColumnarParticles, CrcSectionWriter, ParticleSet};
use bat_wire::{Decoder, Encoder, WireError, WireResult};
use bytes::Bytes;
use std::io::{self, Write};
use std::path::Path;
use std::time::Instant;

/// Tag for particle payloads flowing to write aggregators.
pub(crate) const TAG_DATA: u32 = 1;

/// Which aggregation strategy to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// The paper's adaptive k-d aggregation tree (§III-A).
    Adaptive,
    /// The adjustable-uniform-grid baseline of Kumar et al. \[27\].
    Aug,
}

/// Write pipeline configuration.
#[derive(Debug, Clone, Copy)]
pub struct WriteConfig {
    /// Aggregation strategy (adaptive tree or AUG baseline).
    pub strategy: Strategy,
    /// Aggregation-tree parameters (target size, overfull policy).
    pub agg: AggConfig,
    /// BAT layout parameters.
    pub bat: BatConfig,
}

impl WriteConfig {
    /// Adaptive aggregation at the given target file size, with the paper's
    /// default overfull policy and BAT parameters.
    pub fn with_target_size(target_file_bytes: u64, bytes_per_particle: u64) -> WriteConfig {
        WriteConfig {
            strategy: Strategy::Adaptive,
            agg: AggConfig::new(target_file_bytes, bytes_per_particle),
            // Auto subprefix: resolves to the paper's 12 bits at realistic
            // aggregator populations, fewer for small ones (less padding).
            bat: BatConfig::auto(),
        }
    }

    /// Automatic target-size selection: rank 0 picks the size from the
    /// gathered totals using the paper's recommendations (§VI-A2, encoded
    /// in [`bat_aggregation::recommended_target_size`]). Addresses the
    /// §VII future-work item.
    pub fn auto(bytes_per_particle: u64) -> WriteConfig {
        WriteConfig::with_target_size(0, bytes_per_particle)
    }

    /// Same parameters but using the AUG baseline.
    pub fn aug(mut self) -> WriteConfig {
        self.strategy = Strategy::Aug;
        self
    }
}

/// Result of a collective write, identical on every rank.
#[derive(Debug, Clone)]
pub struct WriteReport {
    /// Slowest-rank time per pipeline component, plus end-to-end total.
    pub times: PhaseTimes,
    /// Leaf-file balance statistics.
    pub balance: BalanceStats,
    /// Number of leaf files written.
    pub files: usize,
    /// Total particle payload bytes across all ranks.
    pub bytes_total: u64,
}

/// One aggregator duty: which leaf to receive and write.
#[derive(Debug, Clone)]
struct LeafDuty {
    leaf_idx: u32,
    file: String,
    bounds: Aabb,
    /// `(source rank, particle count)` pairs, including the aggregator
    /// itself if it owns particles in the leaf.
    sources: Vec<(u32, u64)>,
}

/// Per-rank assignment scattered from rank 0.
#[derive(Debug, Clone, Default)]
struct Assignment {
    /// Aggregator to send this rank's particles to (`None` = no particles).
    agg_of_me: Option<u32>,
    /// Set when this rank aggregates a leaf.
    duty: Option<LeafDuty>,
}

fn put_aabb(enc: &mut Encoder, b: &Aabb) {
    for v in [b.min.x, b.min.y, b.min.z, b.max.x, b.max.y, b.max.z] {
        enc.put_f32(v);
    }
}

fn get_aabb(dec: &mut Decoder) -> WireResult<Aabb> {
    Ok(Aabb::new(
        bat_geom::Vec3::new(
            dec.get_f32("aabb")?,
            dec.get_f32("aabb")?,
            dec.get_f32("aabb")?,
        ),
        bat_geom::Vec3::new(
            dec.get_f32("aabb")?,
            dec.get_f32("aabb")?,
            dec.get_f32("aabb")?,
        ),
    ))
}

impl Assignment {
    fn encode(&self) -> Bytes {
        let mut enc = Encoder::new();
        match self.agg_of_me {
            Some(a) => {
                enc.put_bool(true);
                enc.put_u32(a);
            }
            None => enc.put_bool(false),
        }
        match &self.duty {
            Some(d) => {
                enc.put_bool(true);
                enc.put_u32(d.leaf_idx);
                enc.put_str(&d.file);
                put_aabb(&mut enc, &d.bounds);
                enc.put_u64(d.sources.len() as u64);
                for &(r, c) in &d.sources {
                    enc.put_u32(r);
                    enc.put_u64(c);
                }
            }
            None => enc.put_bool(false),
        }
        Bytes::from(enc.finish())
    }

    fn decode(data: &[u8]) -> WireResult<Assignment> {
        let mut dec = Decoder::new(data);
        let agg_of_me = if dec.get_bool("has agg")? {
            Some(dec.get_u32("agg rank")?)
        } else {
            None
        };
        let duty = if dec.get_bool("has duty")? {
            let leaf_idx = dec.get_u32("leaf idx")?;
            let file = dec.get_str("leaf file")?;
            let bounds = get_aabb(&mut dec)?;
            let ns = dec.get_usize("num sources")?;
            let mut sources = Vec::with_capacity(ns);
            for _ in 0..ns {
                let r = dec.get_u32("source rank")?;
                let c = dec.get_u64("source count")?;
                sources.push((r, c));
            }
            Some(LeafDuty {
                leaf_idx,
                file,
                bounds,
                sources,
            })
        } else {
            None
        };
        Ok(Assignment { agg_of_me, duty })
    }
}

/// Resolve an automatic target size (`target_file_bytes == 0`) from the
/// gathered rank population.
pub fn resolve_config(ranks: &[RankInfo], cfg: &WriteConfig) -> WriteConfig {
    let mut resolved = *cfg;
    if resolved.agg.target_file_bytes == 0 {
        let total: u64 = ranks
            .iter()
            .map(|r| r.particles * cfg.agg.bytes_per_particle)
            .sum();
        resolved.agg.target_file_bytes =
            bat_aggregation::recommended_target_size(total, ranks.len());
    }
    resolved
}

/// Build the aggregation tree for the chosen strategy (resolving an
/// automatic target size first).
pub fn build_tree(ranks: &[RankInfo], cfg: &WriteConfig) -> AggregationTree {
    let cfg = resolve_config(ranks, cfg);
    match cfg.strategy {
        Strategy::Adaptive => AggregationTree::build(ranks, &cfg.agg),
        Strategy::Aug => build_aug_tree(ranks, &cfg.agg),
    }
}

/// The leaf file name for a dataset `basename`.
pub fn leaf_file_name(basename: &str, leaf_idx: u32) -> String {
    format!("{basename}.{leaf_idx:05}.bat")
}

/// The metadata file name for a dataset `basename`.
pub fn meta_file_name(basename: &str) -> String {
    format!("{basename}.batmeta")
}

/// Collectively write a timestep. Every rank passes its local particles and
/// its bounds in the simulation domain; files land in `dir` under
/// `basename`. Returns the same [`WriteReport`] on every rank.
pub fn write_particles(
    comm: &dyn Comm,
    set: ParticleSet,
    bounds: Aabb,
    cfg: &WriteConfig,
    dir: &Path,
    basename: &str,
) -> io::Result<WriteReport> {
    write_particles_in_transit(comm, set, bounds, cfg, dir, basename, |_, _| {})
}

/// As [`write_particles`], additionally invoking `hook(leaf_index, &bat)`
/// on every aggregator once its BAT is built, *before* it is written — the
/// paper's in-transit visualization/analysis entry point (§III-C: "the
/// tree can be used for in transit visualization and analysis on the
/// aggregators before or instead of being written to disk").
pub fn write_particles_in_transit(
    comm: &dyn Comm,
    set: ParticleSet,
    bounds: Aabb,
    cfg: &WriteConfig,
    dir: &Path,
    basename: &str,
    mut hook: impl FnMut(u32, &bat_layout::Bat),
) -> io::Result<WriteReport> {
    let bat_cfg = cfg.bat;
    write_pipeline(
        comm,
        set,
        bounds,
        cfg,
        dir,
        basename,
        |leaf_idx, merged, leaf_bounds| {
            let bat = BatBuilder::new(bat_cfg).build(merged, leaf_bounds);
            hook(leaf_idx, &bat);
            let local_bitmaps = (0..bat.descs().len()).map(|a| bat.root_bitmap(a)).collect();
            let ranges = bat.attr_ranges.clone();
            (LeafData::Bat(Box::new(bat)), ranges, local_bitmaps)
        },
    )
}

/// A user-defined aggregator-side layout (paper §VII future work: "Allowing
/// users to build their own data layout would ease adoption of our method
/// for simulation-analysis pipelines that already use a specific layout").
///
/// The adaptive aggregation, transfer, and metadata machinery are reused
/// unchanged; only the bytes written per leaf file come from the sink. The
/// top-level metadata still carries exact global attribute ranges and
/// conservative root bitmaps (computed generically from the merged
/// particles), so metadata-level spatial/attribute culling keeps working —
/// but the leaf files themselves are opaque to [`crate::Dataset`] and the
/// parallel read pipeline; reading them back is the layout owner's job.
pub trait LayoutSink: Sync {
    /// Produce the leaf file's bytes for the merged particles of one
    /// aggregation leaf.
    fn build(&self, leaf_idx: u32, set: &ParticleSet, bounds: Aabb) -> Vec<u8>;
}

/// As [`write_particles`], but writing each leaf with a user-supplied
/// [`LayoutSink`] instead of the BAT (§VII).
pub fn write_particles_with_sink(
    comm: &dyn Comm,
    set: ParticleSet,
    bounds: Aabb,
    cfg: &WriteConfig,
    dir: &Path,
    basename: &str,
    sink: &impl LayoutSink,
) -> io::Result<WriteReport> {
    write_pipeline(
        comm,
        set,
        bounds,
        cfg,
        dir,
        basename,
        |leaf_idx, merged, leaf_bounds| {
            let bytes = sink.build(leaf_idx, &merged, leaf_bounds);
            // Generic metadata stats: exact local ranges, bitmaps binned over
            // them (identical semantics to the BAT's root bitmaps).
            let ranges: Vec<(f64, f64)> = (0..merged.num_attrs())
                .map(|a| merged.attr(a).value_range())
                .collect();
            let bitmaps = ranges
                .iter()
                .enumerate()
                .map(|(a, &(lo, hi))| {
                    bat_layout::Bitmap32::from_values(
                        (0..merged.len()).map(|i| merged.value(a, i)),
                        lo,
                        hi,
                    )
                })
                .collect();
            (LeafData::Raw(bytes), ranges, bitmaps)
        },
    )
}

/// Bytes destined for one leaf file: a built BAT is streamed to disk head
/// first, then treelet by treelet (never materializing the file in memory);
/// a [`LayoutSink`] hands over an opaque buffer.
enum LeafData {
    Bat(Box<bat_layout::Bat>),
    Raw(Vec<u8>),
}

/// Durably write one leaf file with the commit protocol (DESIGN.md §11):
/// stream to a `.tmp` sibling through a [`CrcSectionWriter`] (per-section
/// CRC32C over the head and each treelet, plus the trailing footer), fsync,
/// and atomically rename into place. Returns the committed
/// `(file_len, whole_file_crc)` the metadata manifest records.
///
/// `torn` simulates a crash mid-write (injected by the `write.leaf`
/// failpoint): the first N bytes land in the `.tmp` file and the write
/// fails, so no committed file ever carries the torn bytes.
fn write_leaf_file(
    dir: &Path,
    file_name: &str,
    data: &LeafData,
    torn: Option<u64>,
) -> io::Result<(u64, u32)> {
    let tmp = dir.join(format!("{file_name}.tmp"));
    let committed = (|| -> io::Result<(u64, u32)> {
        let file = std::fs::File::create(&tmp)?;
        let buf = io::BufWriter::new(file);
        let (buf, total, crc) = match data {
            LeafData::Bat(bat) => {
                let writer = bat.writer();
                let ends = bat_layout::footer::bat_section_ends(&writer);
                let mut cw = CrcSectionWriter::new(buf, ends);
                match torn {
                    Some(n) => {
                        let mut tw = bat_faults::TornWriter::new(&mut cw, n, "write.leaf");
                        bat_obs::time("bat.compact_ns", || writer.write_to(&mut tw))?;
                    }
                    None => bat_obs::time("bat.compact_ns", || writer.write_to(&mut cw))?,
                }
                bat_obs::counter_add("bat.compact_bytes", writer.file_size() as u64);
                let (buf, _footer, total, crc) = cw.finish()?;
                (buf, total, crc)
            }
            LeafData::Raw(bytes) => {
                let mut cw = CrcSectionWriter::new(buf, vec![bytes.len() as u64]);
                match torn {
                    Some(n) => {
                        bat_faults::TornWriter::new(&mut cw, n, "write.leaf").write_all(bytes)?
                    }
                    None => cw.write_all(bytes)?,
                }
                let (buf, _footer, total, crc) = cw.finish()?;
                (buf, total, crc)
            }
        };
        let file = buf.into_inner().map_err(io::IntoInnerError::into_error)?;
        bat_faults::fire_io("write.leaf.sync")?;
        file.sync_all()?;
        bat_obs::counter_add("commit.fsyncs", 1);
        drop(file);
        std::fs::rename(&tmp, dir.join(file_name))?;
        fsync_dir(dir)?;
        Ok((total, crc))
    })();
    if committed.is_err() {
        // Best effort: a failed write must not leave a stray `.tmp` behind
        // for a later commit of the same name to trip on.
        let _ = std::fs::remove_file(&tmp);
    }
    committed
}

/// Fsync a directory so a just-renamed entry is durable — the rename only
/// becomes persistent once its directory does.
fn fsync_dir(dir: &Path) -> io::Result<()> {
    std::fs::File::open(dir)?.sync_all()?;
    bat_obs::counter_add("commit.fsyncs", 1);
    Ok(())
}

/// A peer (or this rank) left the protocol: mark this rank dead so the
/// failure cascades to everyone blocked on us, and surface a clean error.
pub(crate) fn abandon(comm: &dyn Comm, stage: &str, e: CommError) -> io::Error {
    comm.mark_dead();
    let io: io::Error = e.into();
    io::Error::new(
        io.kind(),
        format!("collective operation abandoned during {stage}: {io}"),
    )
}

/// Send with bounded retry on injected transient failures.
///
/// The `write.shuffle.send` failpoint models a transient transport error:
/// each triggered `error` burns one attempt (exponential backoff, counted
/// in `write.retries`); `kill` dies in place. Exhausting the attempts
/// abandons the protocol like any other liveness failure.
fn send_with_retry(comm: &dyn Comm, dst: usize, tag: u32, payload: Bytes) -> io::Result<()> {
    const ATTEMPTS: u32 = 4;
    let mut backoff = std::time::Duration::from_millis(1);
    for attempt in 0..ATTEMPTS {
        match bat_faults::fire("write.shuffle.send") {
            None => {
                comm.isend(dst, tag, payload);
                return Ok(());
            }
            Some(Fault::Kill) => {
                comm.mark_dead();
                return Err(bat_faults::injected_error(
                    "write.shuffle.send",
                    "rank killed",
                ));
            }
            Some(_) if attempt + 1 < ATTEMPTS => {
                bat_obs::counter_add("write.retries", 1);
                std::thread::sleep(backoff);
                backoff *= 2;
            }
            Some(_) => break,
        }
    }
    comm.mark_dead();
    Err(bat_faults::injected_error(
        "write.shuffle.send",
        "send failed after retries",
    ))
}

/// Why the metadata commit failed: a local I/O error (record it, finish
/// the protocol, err together) or an injected kill (abandon immediately —
/// the rank is "gone" and survivors must observe the death).
enum MetaAbort {
    Io(io::Error),
    Killed(io::Error),
}

/// Commit the top-level metadata (DESIGN.md §11): the MetaTree bytes with
/// the [`CommitManifest`] appended, written to a `.tmp` sibling, fsynced,
/// and renamed into place. The rename is the dataset's commit point —
/// before it there is no `.batmeta` and the dataset reads as uncommitted;
/// after it every leaf the manifest lists is durable and checksummed.
fn commit_meta(
    dir: &Path,
    basename: &str,
    meta: &MetaTree,
    files: Vec<ManifestEntry>,
) -> Result<(), MetaAbort> {
    let meta_bytes = meta.encode();
    let manifest = CommitManifest::new(&meta_bytes, files);
    let mut bytes = meta_bytes;
    bytes.extend_from_slice(&manifest.encode());

    let name = meta_file_name(basename);
    let tmp = dir.join(format!("{name}.tmp"));
    match bat_faults::fire("write.meta") {
        Some(Fault::Kill) => {
            return Err(MetaAbort::Killed(bat_faults::injected_error(
                "write.meta",
                "rank killed before the metadata write",
            )))
        }
        Some(Fault::Error) => {
            return Err(MetaAbort::Io(bat_faults::injected_error(
                "write.meta",
                "metadata write failed",
            )))
        }
        Some(Fault::Torn(n)) => {
            // Crash mid-write: a torn prefix stays in the `.tmp` sibling,
            // which no reader ever opens — the dataset is uncommitted.
            let _ = std::fs::write(&tmp, &bytes[..bytes.len().min(n as usize)]);
            return Err(MetaAbort::Io(bat_faults::injected_error(
                "write.meta",
                "torn metadata write",
            )));
        }
        None => {}
    }
    let durable = (|| -> io::Result<()> {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
        bat_obs::counter_add("commit.fsyncs", 1);
        Ok(())
    })();
    if let Err(e) = durable {
        let _ = std::fs::remove_file(&tmp);
        return Err(MetaAbort::Io(e));
    }
    if let Some(Fault::Kill) = bat_faults::fire("write.meta.rename.before") {
        // Crash after the tmp is durable but before the commit point: the
        // dataset must read back as uncommitted (no `.batmeta` on disk).
        return Err(MetaAbort::Killed(bat_faults::injected_error(
            "write.meta.rename.before",
            "rank killed before the metadata rename",
        )));
    }
    let renamed = std::fs::rename(&tmp, dir.join(&name)).and_then(|()| fsync_dir(dir));
    if let Err(e) = renamed {
        let _ = std::fs::remove_file(&tmp);
        return Err(MetaAbort::Io(e));
    }
    if let Some(Fault::Kill) = bat_faults::fire("write.meta.rename.after") {
        // Crash after the commit point: survivors err (the collective never
        // finishes) but the dataset on disk is complete and verifies clean.
        return Err(MetaAbort::Killed(bat_faults::injected_error(
            "write.meta.rename.after",
            "rank killed after the metadata rename",
        )));
    }
    Ok(())
}

/// Decode the rank infos rank 0 gathered in phase 1.
fn decode_infos(blobs: &[Bytes]) -> WireResult<Vec<RankInfo>> {
    blobs
        .iter()
        .map(|b| RankInfo::decode(&mut Decoder::new(b)))
        .collect()
}

fn wire_io_err(stage: &str, err: Option<WireError>) -> io::Error {
    let msg = match err {
        Some(e) => format!("collective write aborted during {stage}: {e}"),
        None => format!(
            "collective write aborted during {stage}: a peer rank reported corrupt wire data"
        ),
    };
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// The shared two-phase pipeline; `leaf_builder` maps one leaf's merged
/// particles to `(leaf data, local attribute ranges, root bitmaps)`.
///
/// Corrupt wire payloads and file-write failures never panic a rank:
/// errors are recorded, the protocol (sends, receives, and every trailing
/// collective) runs to completion so no healthy rank is left blocked, and
/// then all ranks return `Err` together.
fn write_pipeline(
    comm: &dyn Comm,
    set: ParticleSet,
    bounds: Aabb,
    cfg: &WriteConfig,
    dir: &Path,
    basename: &str,
    mut leaf_builder: impl FnMut(
        u32,
        ParticleSet,
        Aabb,
    ) -> (LeafData, Vec<(f64, f64)>, Vec<bat_layout::Bitmap32>),
) -> io::Result<WriteReport> {
    // Spin up the execution engine before timing starts, honoring
    // `BAT_THREADS` (see README "Thread count"): first touch initializes
    // the pool from the env, and the gauge records what the BAT builds
    // below will actually run with.
    bat_obs::gauge_set("pool.threads", rayon::current_num_threads() as f64);

    let descs = set.descs_arc();
    let mut times = PhaseTimes::new();
    // Bounded entry barrier: a peer that died before the collective even
    // started (or a lost barrier message under a receive deadline) must
    // surface as `Err`, never a panic or a hang (DESIGN.md §11).
    comm.try_barrier()
        .map_err(|e| abandon(comm, "entry barrier", e))?;
    let t_start = Instant::now();

    // --- Phase 1: gather rank infos; rank 0 builds the tree (§III-A). ---
    let t0 = Instant::now();
    let info = RankInfo::new(comm.rank() as u32, bounds, set.len() as u64);
    let mut enc = Encoder::new();
    info.encode(&mut enc);
    let gathered = comm
        .try_gather(0, Bytes::from(enc.finish()))
        .map_err(|e| abandon(comm, "bounds gather", e))?;
    bat_obs::observe_duration("write.gather_bounds_ns", t0.elapsed());

    let t_tree = Instant::now();
    let mut setup_err: Option<WireError> = None;
    let assignment_bytes = if comm.rank() == 0 {
        match decode_infos(&gathered.expect("root gathers")) {
            Ok(infos) => {
                let mut tree = build_tree(&infos, cfg);
                assign_aggregators(&mut tree.leaves, comm.size());

                // Build per-rank assignments.
                let mut assignments: Vec<Assignment> = vec![Assignment::default(); comm.size()];
                for (li, leaf) in tree.leaves.iter().enumerate() {
                    let duty = LeafDuty {
                        leaf_idx: li as u32,
                        file: leaf_file_name(basename, li as u32),
                        bounds: leaf.bounds,
                        sources: leaf
                            .ranks
                            .iter()
                            .map(|&r| (r, infos[r as usize].particles))
                            .collect(),
                    };
                    for &(r, _) in &duty.sources {
                        assignments[r as usize].agg_of_me = Some(leaf.aggregator);
                    }
                    assignments[leaf.aggregator as usize].duty = Some(duty);
                }
                Some(
                    assignments
                        .iter()
                        .map(Assignment::encode)
                        .collect::<Vec<_>>(),
                )
            }
            Err(e) => {
                // Scatter well-formed empty assignments; the agreement
                // collective below turns this into an error on every rank.
                setup_err = Some(e);
                Some(vec![Assignment::default().encode(); comm.size()])
            }
        }
    } else {
        None
    };
    if comm.rank() == 0 {
        bat_obs::observe_duration("write.agg_tree_build_ns", t_tree.elapsed());
    }
    times[WritePhase::TreeBuild] = t0.elapsed().as_secs_f64();

    // --- Phase 2: scatter assignments. ---
    let t0 = Instant::now();
    let mine = comm
        .try_scatter(0, assignment_bytes)
        .map_err(|e| abandon(comm, "assignment scatter", e))?;
    let assignment = match Assignment::decode(&mine) {
        Ok(a) => a,
        Err(e) => {
            setup_err.get_or_insert(e);
            Assignment::default()
        }
    };
    // Agreement: every rank learns whether any rank failed setup. Erring
    // together here (before any data flows) keeps phase 3's sends and
    // receives matched on the surviving ranks.
    let abort = comm
        .try_allreduce_u64(setup_err.is_some() as u64, &|a, b| a | b)
        .map_err(|e| abandon(comm, "setup agreement", e))?
        != 0;
    if abort {
        return Err(wire_io_err("setup", setup_err));
    }
    let el = t0.elapsed();
    bat_obs::observe_duration("write.scatter_ns", el);
    times[WritePhase::Scatter] = el.as_secs_f64();

    // --- Phase 3: transfer particles to aggregators (§III-B). ---
    let t0 = Instant::now();
    let my_bytes = set.raw_bytes() as u64;
    let mut local_io: Option<io::Error> = None;
    if let Some(agg) = assignment.agg_of_me {
        let payload = ColumnarParticles::encode_frame(&set);
        bat_obs::counter_add("write.shuffle.send_bytes", payload.len() as u64);
        bat_obs::counter_add("write.shuffle.send_msgs", 1);
        send_with_retry(comm, agg as usize, TAG_DATA, payload)?;
    }
    // Aggregators receive from every source (self-sends included above).
    // Each frame stays a zero-copy columnar view over the message body;
    // the single merge below is the only copy on the receive side.
    let mut received: Option<ParticleSet> = None;
    let mut agg_err: Option<WireError> = None;
    if let Some(duty) = &assignment.duty {
        // An aggregator dying here is a *liveness* fault: mark this rank
        // dead and abandon at once so peers observe the death through
        // their own bounded receives instead of a half-run protocol.
        match bat_faults::fire("write.shuffle.recv") {
            Some(Fault::Kill) => {
                comm.mark_dead();
                return Err(bat_faults::injected_error(
                    "write.shuffle.recv",
                    "rank killed",
                ));
            }
            Some(_) => {
                local_io.get_or_insert(bat_faults::injected_error(
                    "write.shuffle.recv",
                    "receive failed",
                ));
            }
            None => {}
        }
        let mut views = Vec::with_capacity(duty.sources.len());
        for &(src, count) in &duty.sources {
            // Consume the message even after an earlier source failed so
            // no payload is left queued for a later collective to trip on.
            let msg = match comm.recv_bounded(Some(src as usize), TAG_DATA) {
                Ok(m) => m,
                Err(e) => return Err(abandon(comm, "particle shuffle", e)),
            };
            bat_obs::counter_add("write.shuffle.recv_bytes", msg.payload.len() as u64);
            bat_obs::counter_add("write.shuffle.recv_msgs", 1);
            match ColumnarParticles::parse_frame(&msg.block()) {
                Ok(view) if view.len() as u64 == count => views.push(view),
                Ok(view) => {
                    agg_err.get_or_insert(WireError::BadLength {
                        what: "shuffled particle count",
                        len: view.len() as u64,
                        remaining: count as usize,
                    });
                }
                Err(e) => {
                    agg_err.get_or_insert(e);
                }
            }
        }
        if agg_err.is_none() {
            match ColumnarParticles::concat_owned(descs.clone(), &views) {
                Ok(merged) => received = Some(merged),
                Err(e) => {
                    agg_err.get_or_insert(e);
                }
            }
        }
    }
    let el = t0.elapsed();
    bat_obs::observe_duration("write.shuffle_ns", el);
    times[WritePhase::Transfer] = el.as_secs_f64();

    // --- Phase 4: build the layout on each aggregator (§III-C). ---
    let t0 = Instant::now();
    let mut compacted: Option<LeafData> = None;
    let mut report: Option<LeafReport> = None;
    if let (Some(duty), Some(merged)) = (&assignment.duty, received.take()) {
        let particles = merged.len() as u64;
        let (data, local_ranges, local_bitmaps) = leaf_builder(duty.leaf_idx, merged, duty.bounds);
        report = Some(LeafReport {
            file: duty.file.clone(),
            bounds: duty.bounds,
            particles,
            aggregator: comm.rank() as u32,
            local_ranges,
            local_bitmaps,
            // Filled in by phase 5 once the file is committed.
            file_len: 0,
            file_crc: 0,
        });
        compacted = Some(data);
    }
    let el = t0.elapsed();
    if assignment.duty.is_some() {
        bat_obs::observe_duration("write.layout_build_ns", el);
    }
    times[WritePhase::LayoutBuild] = el.as_secs_f64();

    // --- Phase 5: write leaf files (streamed; see `LeafData`). ---
    let t0 = Instant::now();
    if let (Some(data), Some(duty)) = (&compacted, &assignment.duty) {
        let mut injected = false;
        let torn = match bat_faults::fire("write.leaf") {
            Some(Fault::Kill) => {
                comm.mark_dead();
                return Err(bat_faults::injected_error("write.leaf", "rank killed"));
            }
            Some(Fault::Error) => {
                injected = true;
                None
            }
            Some(Fault::Torn(n)) => Some(n),
            None => None,
        };
        let written = if injected {
            Err(bat_faults::injected_error(
                "write.leaf",
                "leaf write failed",
            ))
        } else {
            write_leaf_file(dir, &duty.file, data, torn)
        };
        match written {
            Ok((len, crc)) => {
                bat_obs::counter_add("write.file.bytes", len);
                bat_obs::counter_add("write.file.count", 1);
                bat_obs::observe_duration("write.file_write_ns", t0.elapsed());
                if let Some(r) = report.as_mut() {
                    r.file_len = len;
                    r.file_crc = crc;
                }
            }
            Err(e) => {
                report = None; // the leaf is not on disk; don't advertise it
                local_io.get_or_insert(e);
            }
        }
    }
    times[WritePhase::FileWrite] = t0.elapsed().as_secs_f64();

    // --- Phase 6: gather leaf reports; rank 0 writes metadata (§III-D). ---
    let t0 = Instant::now();
    // Report status: 0 = not an aggregator, 1 = report follows, 2 = this
    // aggregator failed (corrupt frame or file-write error).
    let failed = agg_err.is_some() || local_io.is_some();
    let payload = {
        let mut enc = Encoder::new();
        match &report {
            _ if failed => enc.put_u8(2),
            Some(r) => {
                enc.put_u8(1);
                r.encode(&mut enc);
            }
            None => enc.put_u8(0),
        }
        Bytes::from(enc.finish())
    };
    let reports = comm
        .try_gather(0, payload)
        .map_err(|e| abandon(comm, "report gather", e))?;
    let mut meta_summary: Option<(usize, BalanceStats)> = None;
    let mut root_err: Option<WireError> = None;
    if comm.rank() == 0 {
        let mut leaf_reports = Vec::new();
        for b in reports.expect("root gathers") {
            let mut dec = Decoder::new(&b);
            match dec.get_u8("report status") {
                Ok(0) => {}
                Ok(1) => match LeafReport::decode(&mut dec) {
                    Ok(r) => leaf_reports.push(r),
                    Err(e) => {
                        root_err.get_or_insert(e);
                    }
                },
                Ok(tag) => {
                    root_err.get_or_insert(WireError::BadTag {
                        what: "leaf report status",
                        tag: tag as u64,
                    });
                }
                Err(e) => {
                    root_err.get_or_insert(e);
                }
            }
        }
        if root_err.is_none() {
            // Order leaves by index for stable metadata.
            leaf_reports.sort_by(|a, b| a.file.cmp(&b.file));
            let balance = balance_from_reports(&leaf_reports, cfg.agg.bytes_per_particle);
            let files = leaf_reports.len();
            let entries: Vec<ManifestEntry> = leaf_reports
                .iter()
                .map(|r| ManifestEntry {
                    file: r.file.clone(),
                    len: r.file_len,
                    crc: r.file_crc,
                })
                .collect();
            let meta = MetaTree::build(descs.to_vec(), leaf_reports);
            match commit_meta(dir, basename, &meta, entries) {
                Ok(()) => meta_summary = Some((files, balance)),
                Err(MetaAbort::Io(e)) => {
                    local_io.get_or_insert(e);
                }
                Err(MetaAbort::Killed(e)) => {
                    comm.mark_dead();
                    return Err(e);
                }
            }
        }
    }
    let el = t0.elapsed();
    bat_obs::observe_duration("write.metadata_ns", el);
    times[WritePhase::Metadata] = el.as_secs_f64();
    times.total = t_start.elapsed().as_secs_f64();
    bat_obs::observe_duration("write.total_ns", t_start.elapsed());
    bat_obs::counter_add("write.particles", set.len() as u64);

    // --- Merge the report across ranks so every rank returns the same. ---
    // These trailing collectives always run, error or not: every rank that
    // got here is still in the protocol, and skipping one would strand
    // peers. They are bounded, though — if a peer died mid-pipeline they
    // err on every survivor instead of hanging, and any local error
    // recorded above takes precedence in the returned report.
    let finalize = (|| -> Result<_, CommError> {
        let bytes_total = comm.try_allreduce_u64(my_bytes, &|a, b| a + b)?;
        let merged_times = try_reduce_times(comm, &times)?;
        let summary = try_broadcast_summary(comm, meta_summary)?;
        Ok((bytes_total, merged_times, summary))
    })();
    let (bytes_total, merged_times, summary) = match finalize {
        Ok(v) => v,
        Err(e) => {
            let ab = abandon(comm, "finalize", e);
            return Err(local_io.unwrap_or(ab));
        }
    };

    if let Some(e) = local_io {
        return Err(e);
    }
    if let Some(e) = agg_err.or(root_err) {
        return Err(wire_io_err("aggregation", Some(e)));
    }
    let Some((files, balance)) = summary else {
        return Err(wire_io_err("aggregation", None));
    };
    Ok(WriteReport {
        times: merged_times,
        balance,
        files,
        bytes_total,
    })
}

/// Max-merge phase times across ranks and broadcast the result. Bounded:
/// a dead peer errs the merge instead of hanging the trailing collective.
pub(crate) fn try_reduce_times(
    comm: &dyn Comm,
    times: &PhaseTimes,
) -> Result<PhaseTimes, CommError> {
    let mut enc = Encoder::new();
    for p in WritePhase::ALL {
        enc.put_f64(times[p]);
    }
    enc.put_f64(times.total);
    let gathered = comm.try_gather(0, Bytes::from(enc.finish()))?;
    let merged_bytes = if comm.rank() == 0 {
        let mut merged = PhaseTimes::new();
        for b in gathered.expect("root gathers") {
            let mut dec = Decoder::new(&b);
            let mut pt = PhaseTimes::new();
            for p in WritePhase::ALL {
                pt[p] = dec.get_f64("phase time").expect("valid time");
            }
            pt.total = dec.get_f64("total time").expect("valid total");
            merged.max_merge(&pt);
        }
        let mut enc = Encoder::new();
        for p in WritePhase::ALL {
            enc.put_f64(merged[p]);
        }
        enc.put_f64(merged.total);
        Some(Bytes::from(enc.finish()))
    } else {
        None
    };
    let out = comm.try_bcast(0, merged_bytes)?;
    let mut dec = Decoder::new(&out);
    let mut pt = PhaseTimes::new();
    for p in WritePhase::ALL {
        pt[p] = dec.get_f64("merged phase").expect("valid merged");
    }
    pt.total = dec.get_f64("merged total").expect("valid merged total");
    Ok(pt)
}

fn balance_from_reports(reports: &[LeafReport], bpp: u64) -> BalanceStats {
    let leaves: Vec<bat_aggregation::AggLeaf> = reports
        .iter()
        .map(|r| bat_aggregation::AggLeaf {
            ranks: Vec::new(),
            bounds: r.bounds,
            particles: r.particles,
            bytes: r.particles * bpp,
            aggregator: r.aggregator,
        })
        .collect();
    bat_aggregation::tree::balance_of(&leaves)
}

/// Broadcast rank 0's `(files, balance)` summary, or its absence when the
/// metadata step failed; `Ok(None)` tells every rank to report the abort.
fn try_broadcast_summary(
    comm: &dyn Comm,
    summary: Option<(usize, BalanceStats)>,
) -> Result<Option<(usize, BalanceStats)>, CommError> {
    let payload = (comm.rank() == 0).then(|| {
        let mut enc = Encoder::new();
        match summary {
            Some((files, b)) => {
                enc.put_u8(1);
                enc.put_u64(files as u64);
                enc.put_u64(b.num_files as u64);
                enc.put_f64(b.mean_bytes);
                enc.put_f64(b.stddev_bytes);
                enc.put_u64(b.max_bytes);
                enc.put_u64(b.min_bytes);
            }
            None => enc.put_u8(0),
        }
        Bytes::from(enc.finish())
    });
    let out = comm.try_bcast(0, payload)?;
    let mut dec = Decoder::new(&out);
    if dec.get_u8("summary status").expect("valid summary") == 0 {
        return Ok(None);
    }
    let files = dec.get_u64("files").expect("valid summary") as usize;
    let balance = BalanceStats {
        num_files: dec.get_u64("num files").expect("valid") as usize,
        mean_bytes: dec.get_f64("mean").expect("valid"),
        stddev_bytes: dec.get_f64("stddev").expect("valid"),
        max_bytes: dec.get_u64("max").expect("valid"),
        min_bytes: dec.get_u64("min").expect("valid"),
    };
    Ok(Some((files, balance)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bat_geom::Vec3;

    #[test]
    fn rank_info_decode_errors_are_propagated_not_panicked() {
        // A well-formed gather round-trips.
        let info = RankInfo::new(3, Aabb::unit(), 42);
        let mut enc = Encoder::new();
        info.encode(&mut enc);
        let good = Bytes::from(enc.finish());
        let infos = decode_infos(std::slice::from_ref(&good)).expect("valid rank info decodes");
        assert_eq!(infos[0].particles, 42);

        // Any corrupt entry fails the whole decode with Err, never a panic.
        assert!(decode_infos(&[Bytes::copy_from_slice(b"junk")]).is_err());
        assert!(decode_infos(&[good.clone(), Bytes::new()]).is_err());
        let truncated = Bytes::copy_from_slice(&good[..good.len() / 2]);
        assert!(decode_infos(&[truncated]).is_err());
    }

    #[test]
    fn assignment_decode_rejects_garbage() {
        let duty = LeafDuty {
            leaf_idx: 7,
            file: leaf_file_name("ts", 7),
            bounds: Aabb::new(Vec3::ZERO, Vec3::ONE),
            sources: vec![(0, 10), (3, 20)],
        };
        let a = Assignment {
            agg_of_me: Some(2),
            duty: Some(duty),
        };
        let bytes = a.encode();
        let back = Assignment::decode(&bytes).unwrap();
        assert_eq!(back.agg_of_me, Some(2));
        let d = back.duty.expect("duty survives");
        assert_eq!(d.leaf_idx, 7);
        assert_eq!(d.sources, vec![(0, 10), (3, 20)]);

        assert!(Assignment::decode(b"\xff\xff\xff").is_err());
        assert!(Assignment::decode(&bytes[..bytes.len() - 3]).is_err());
    }
}
