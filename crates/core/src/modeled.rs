//! The two-phase pipelines at supercomputer scale, against the
//! `bat-iosim` performance model.
//!
//! The paper's weak-scaling studies run at 1.5k–43k ranks on Stampede2 and
//! Summit. Those rank counts cannot execute as threads on one machine, but
//! the *decisions* the pipeline makes at that scale can be computed exactly:
//! rank 0's aggregation-tree build is serial in the paper too, so we run
//! the real algorithm on the real rank population and **measure** it, and
//! the resulting plan (who sends how many bytes to whom, which files exist
//! at what sizes) drives the storage/network queueing model, which prices
//! the transfer, write, and read phases. Only durations of I/O and network
//! operations are modeled; every byte count and file layout is real. See
//! DESIGN.md §2.

use crate::write::{build_tree, WriteConfig};
use bat_aggregation::assign::assign_read_aggregators;
use bat_aggregation::{assign_aggregators, BalanceStats, RankInfo};
use bat_iosim::{NetworkModel, PhaseTimes, StorageModel, SystemProfile, WritePhase};
use std::time::Instant;

/// Outcome of a modeled write or read.
#[derive(Debug, Clone)]
pub struct ModeledOutcome {
    /// Per-phase durations; `total` is their sum (the pipeline's phases are
    /// bulk-synchronous).
    pub times: PhaseTimes,
    /// Leaf-file balance statistics from the real aggregation plan.
    pub balance: BalanceStats,
    /// Number of leaf files.
    pub files: usize,
    /// Total particle payload bytes.
    pub bytes_total: u64,
}

impl ModeledOutcome {
    /// Achieved bandwidth in bytes/second.
    pub fn bandwidth(&self) -> f64 {
        self.times.bandwidth(self.bytes_total)
    }
}

/// Size in bytes of the control structure each rank contributes to the
/// gather (rank id + bounds + count).
const RANK_INFO_BYTES: u64 = 36;

/// Model a collective write of the given rank population on `profile`.
///
/// The aggregation tree is *built for real* over `ranks` and timed; the
/// transfer/build/write phases are priced by the queueing model.
pub fn model_write(
    profile: &SystemProfile,
    ranks: &[RankInfo],
    cfg: &WriteConfig,
) -> ModeledOutcome {
    let n = ranks.len();
    let nodes = profile.nodes_for(n);
    let mut net = NetworkModel::new(profile, nodes);
    let mut storage = StorageModel::new(&profile.storage);
    let mut times = PhaseTimes::new();
    let bpp = cfg.agg.bytes_per_particle;

    // --- Phase 1: gather infos + build the tree (really) on "rank 0". ---
    let t_gather = net.control_collective(n, RANK_INFO_BYTES, 0.0);
    let t0 = Instant::now();
    let mut tree = build_tree(ranks, cfg);
    assign_aggregators(&mut tree.leaves, n);
    times[WritePhase::TreeBuild] = t_gather + t0.elapsed().as_secs_f64();

    // --- Phase 2: scatter assignments. ---
    net.reset();
    times[WritePhase::Scatter] = net.control_collective(n, 64, 0.0);

    // --- Phase 3: transfer particles to aggregators. ---
    net.reset();
    let mut transfer_done = 0.0f64;
    let particles_of = |r: u32| ranks[r as usize].particles;
    for leaf in &tree.leaves {
        for &r in &leaf.ranks {
            let bytes = particles_of(r) * bpp;
            if r != leaf.aggregator && bytes > 0 {
                let t = net.transfer(r as usize, leaf.aggregator as usize, 0.0, bytes);
                transfer_done = transfer_done.max(t);
            }
        }
    }
    times[WritePhase::Transfer] = transfer_done;
    net.publish_metrics("iosim.write.network");

    // --- Phase 4: BAT construction on each aggregator. ---
    let build_rate = profile.compute.bat_build_rate;
    let slowest_build = tree
        .leaves
        .iter()
        .map(|l| l.bytes as f64 / build_rate)
        .fold(0.0, f64::max);
    times[WritePhase::LayoutBuild] = slowest_build;

    // --- Phase 5: write one file per leaf. ---
    net.reset();
    storage.reset();
    let mut write_done = 0.0f64;
    for (li, leaf) in tree.leaves.iter().enumerate() {
        let created = storage.create_file(0.0);
        let stored = storage.write_file(li, created, leaf.bytes);
        let injected = net.inject(leaf.aggregator as usize, created, leaf.bytes);
        write_done = write_done.max(stored.max(injected));
    }
    times[WritePhase::FileWrite] = write_done;

    // --- Phase 6: metadata gather + write. ---
    net.reset();
    let t_reports = net.control_collective(n, 128, 0.0);
    let meta_bytes = 128 * tree.leaves.len() as u64 + 1024;
    let created = storage.create_file(write_done);
    let t_meta = storage.write_file(tree.leaves.len(), created, meta_bytes) - write_done;
    times[WritePhase::Metadata] = t_reports + t_meta;
    storage.publish_metrics("iosim.write.storage");

    times.total = times.component_sum();
    let bytes_total: u64 = ranks.iter().map(|r| r.particles * bpp).sum();
    ModeledOutcome {
        balance: tree.balance(),
        files: tree.leaves.len(),
        bytes_total,
        times,
    }
}

/// Model a collective checkpoint-restart read: `reader_ranks` ranks read
/// back the data written by the plan for `ranks` under `cfg` (each reader
/// fetching its own region). With `reader_ranks == ranks.len()` this is the
/// paper's weak-scaling read; other values model restarting on a different
/// rank count (§IV-A).
pub fn model_read(
    profile: &SystemProfile,
    ranks: &[RankInfo],
    cfg: &WriteConfig,
    reader_ranks: usize,
) -> ModeledOutcome {
    let n = reader_ranks.max(1);
    let nodes = profile.nodes_for(n);
    let mut net = NetworkModel::new(profile, nodes);
    let mut storage = StorageModel::new(&profile.storage);
    let mut times = PhaseTimes::new();
    let bpp = cfg.agg.bytes_per_particle;

    let mut tree = build_tree(ranks, cfg);
    assign_aggregators(&mut tree.leaves, ranks.len());
    let owners = assign_read_aggregators(tree.leaves.len(), n);

    // --- Metadata: one read + broadcast. ---
    let t_open = storage.open_file(0.0);
    let meta_bytes = 128 * tree.leaves.len() as u64 + 1024;
    let t_meta = storage.read_file(tree.leaves.len(), t_open, meta_bytes);
    times[WritePhase::Metadata] = t_meta + (n as f64).log2().ceil() * net.latency();

    // --- File reads by the read aggregators. ---
    storage.reset();
    let mut read_done = 0.0f64;
    for (li, leaf) in tree.leaves.iter().enumerate() {
        let opened = storage.open_file(0.0);
        let t = storage.read_file(li, opened, leaf.bytes);
        let injected = net.inject(owners[li] as usize, opened, leaf.bytes);
        read_done = read_done.max(t.max(injected));
    }
    times[WritePhase::FileWrite] = read_done;

    // --- Transfer: each writing rank's region flows back to a reader. ---
    // Readers map over the writer population proportionally (a restart on
    // fewer/more ranks re-partitions the same domain).
    net.reset();
    let mut transfer_done = 0.0f64;
    for (li, leaf) in tree.leaves.iter().enumerate() {
        let owner = owners[li] as usize;
        for &r in &leaf.ranks {
            let bytes = ranks[r as usize].particles * bpp;
            let reader = (r as usize * n) / ranks.len();
            if reader != owner && bytes > 0 {
                let t = net.transfer(owner, reader, 0.0, bytes);
                transfer_done = transfer_done.max(t);
            }
        }
    }
    times[WritePhase::Transfer] = transfer_done;
    net.publish_metrics("iosim.read.network");
    storage.publish_metrics("iosim.read.storage");

    times.total = times.component_sum();
    let bytes_total: u64 = ranks.iter().map(|r| r.particles * bpp).sum();
    ModeledOutcome {
        balance: tree.balance(),
        files: tree.leaves.len(),
        bytes_total,
        times,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::write::Strategy;
    use bat_geom::{Aabb, Vec3};

    /// Uniform 3D grid of ranks, `per` particles each (the Fig. 5 setup).
    fn uniform_ranks(n: usize, per: u64) -> Vec<RankInfo> {
        let g = (n as f64).cbrt().ceil() as usize;
        (0..n)
            .map(|r| {
                let (x, y, z) = (r % g, (r / g) % g, r / (g * g));
                let min = Vec3::new(x as f32, y as f32, z as f32);
                let max = min + Vec3::ONE;
                RankInfo::new(r as u32, Aabb::new(min, max), per)
            })
            .collect()
    }

    /// Bytes/particle of the uniform benchmark: 3×f32 + 14×f64 (§VI-A1).
    const BPP: u64 = 124;

    fn cfg(target_mb: u64) -> WriteConfig {
        WriteConfig::with_target_size(target_mb << 20, BPP)
    }

    #[test]
    fn write_model_produces_sane_bandwidth() {
        let profile = SystemProfile::stampede2();
        let ranks = uniform_ranks(1536, 32_768);
        let out = model_write(&profile, &ranks, &cfg(64));
        let bw = out.bandwidth();
        // Bandwidth must be positive and below the filesystem peak.
        assert!(bw > 1e8, "bw {bw:.3e}");
        assert!(bw < profile.peak_storage_bw(), "bw {bw:.3e}");
        assert_eq!(out.bytes_total, 1536 * 32_768 * BPP);
        assert!(out.files > 0);
    }

    #[test]
    fn larger_target_fewer_files() {
        let profile = SystemProfile::stampede2();
        let ranks = uniform_ranks(3072, 32_768);
        let small = model_write(&profile, &ranks, &cfg(8));
        let large = model_write(&profile, &ranks, &cfg(128));
        assert!(
            large.files < small.files,
            "{} vs {}",
            large.files,
            small.files
        );
    }

    #[test]
    fn small_targets_hit_metadata_wall_at_scale() {
        // At high rank counts, tiny target sizes create file storms whose
        // create cost dominates — the Fig. 5 degradation.
        let profile = SystemProfile::stampede2();
        let ranks = uniform_ranks(24_576, 32_768);
        let small = model_write(&profile, &ranks, &cfg(8));
        let large = model_write(&profile, &ranks, &cfg(128));
        assert!(
            large.bandwidth() > small.bandwidth(),
            "large target should win at 24k ranks: {:.3e} vs {:.3e}",
            large.bandwidth(),
            small.bandwidth()
        );
    }

    #[test]
    fn weak_scaling_bandwidth_grows_then_saturates() {
        let profile = SystemProfile::summit();
        let mut prev_bw = 0.0;
        let mut grew = 0;
        for n in [168, 672, 2688, 10_752] {
            let ranks = uniform_ranks(n, 32_768);
            let out = model_write(&profile, &ranks, &cfg(64));
            if out.bandwidth() > prev_bw {
                grew += 1;
            }
            prev_bw = out.bandwidth();
        }
        assert!(grew >= 2, "bandwidth should scale up over the sweep");
    }

    #[test]
    fn read_model_mirrors_write() {
        let profile = SystemProfile::stampede2();
        let ranks = uniform_ranks(1536, 32_768);
        let w = model_write(&profile, &ranks, &cfg(32));
        let r = model_read(&profile, &ranks, &cfg(32), 1536);
        assert_eq!(w.files, r.files);
        assert!(r.times.total > 0.0);
        // Reads skip tree construction and layout builds entirely.
        assert_eq!(r.times[WritePhase::TreeBuild], 0.0);
        assert_eq!(r.times[WritePhase::LayoutBuild], 0.0);
    }

    #[test]
    fn read_on_different_rank_count() {
        let profile = SystemProfile::stampede2();
        let ranks = uniform_ranks(1536, 32_768);
        for readers in [96, 1536, 4096] {
            let r = model_read(&profile, &ranks, &cfg(32), readers);
            assert!(r.times.total > 0.0, "readers={readers}");
        }
    }

    #[test]
    fn aug_strategy_flows_through() {
        let profile = SystemProfile::stampede2();
        let ranks = uniform_ranks(512, 32_768);
        let mut c = cfg(16);
        c.strategy = Strategy::Aug;
        let out = model_write(&profile, &ranks, &c);
        assert!(out.files > 0);
        assert!(out.bandwidth() > 0.0);
    }
}
