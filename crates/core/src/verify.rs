//! Offline dataset verification and recovery (DESIGN.md §11).
//!
//! [`verify_dataset`] proves, from the bytes on disk alone, whether a
//! dataset is fully committed and intact — and when it is not, reports
//! exactly which files are torn and which byte ranges inside them. The
//! commit protocol makes this decidable:
//!
//! - `.batmeta` is the commit marker. Absent (or present only as a `.tmp`
//!   sibling) → the write never committed. Present with a torn
//!   [`CommitManifest`] → the commit itself was interrupted; the dataset
//!   must be treated as uncommitted.
//! - The manifest lists every leaf file with its committed length and
//!   whole-file CRC32C, so missing, truncated, extended, and bit-rotted
//!   leaves are all distinguishable.
//! - Each leaf file carries its own per-section [`FileFooter`], so damage
//!   is localized to the head or an individual treelet block.
//!
//! [`Dataset::open_degraded`] is the recovery path: it opens the
//! consistent subset of a damaged dataset read-only, skipping the leaves
//! verification rejected and answering queries from the rest.

use crate::dataset::Dataset;
use bat_aggregation::{CommitManifest, MetaTree};
use bat_layout::{FileFooter, SectionMismatch};
use bat_wire::crc32c;
use std::fmt;
use std::io;
use std::path::Path;

/// Verdict for one leaf file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LeafStatus {
    /// Length and whole-file CRC match the manifest.
    Ok,
    /// The file is absent.
    Missing,
    /// On-disk length differs from the committed length (a torn or
    /// truncated file, or one extended after the commit).
    LengthMismatch {
        /// Committed length from the manifest.
        expected: u64,
        /// Actual on-disk length.
        found: u64,
    },
    /// Length matches but bytes do not; `sections` localizes the damage
    /// via the file's own footer (empty when the footer itself is gone
    /// or too damaged to localize).
    ChecksumMismatch {
        /// Damaged payload sections, per the leaf file's footer.
        sections: Vec<SectionMismatch>,
    },
    /// The file could not be read at all.
    Unreadable,
}

impl LeafStatus {
    /// Whether this leaf is safe to read.
    pub fn is_ok(&self) -> bool {
        matches!(self, LeafStatus::Ok)
    }
}

impl fmt::Display for LeafStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LeafStatus::Ok => write!(f, "ok"),
            LeafStatus::Missing => write!(f, "missing"),
            LeafStatus::LengthMismatch { expected, found } => {
                write!(
                    f,
                    "length mismatch: committed {expected} bytes, found {found}"
                )
            }
            LeafStatus::ChecksumMismatch { sections } if sections.is_empty() => {
                write!(f, "checksum mismatch (damage not localizable)")
            }
            LeafStatus::ChecksumMismatch { sections } => {
                write!(f, "checksum mismatch in section(s)")?;
                for s in sections {
                    write!(f, " {}[{}..{})", s.section, s.start, s.end)?;
                }
                Ok(())
            }
            LeafStatus::Unreadable => write!(f, "unreadable"),
        }
    }
}

/// One leaf file's verification result.
#[derive(Debug, Clone)]
pub struct LeafCheck {
    /// File name relative to the dataset directory.
    pub file: String,
    /// The verdict.
    pub status: LeafStatus,
}

/// Why the dataset as a whole is not committed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommitState {
    /// `.batmeta` present with a valid manifest: the write committed.
    Committed,
    /// `.batmeta` present but written before the commit protocol existed —
    /// no manifest to check leaf files against (footers still checked).
    Legacy,
    /// No `.batmeta` on disk: the write never reached its commit point.
    NotCommitted,
    /// `.batmeta` exists but its commit marker is torn or inconsistent —
    /// an interrupted commit; the message says what was wrong.
    TornCommit(String),
}

/// The full verification report for one dataset.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// Commit-marker verdict.
    pub commit: CommitState,
    /// Per-leaf verdicts, in manifest (metadata) order.
    pub leaves: Vec<LeafCheck>,
}

impl VerifyReport {
    /// Whether the dataset is committed and every leaf checks clean.
    pub fn is_clean(&self) -> bool {
        matches!(self.commit, CommitState::Committed | CommitState::Legacy)
            && self.leaves.iter().all(|l| l.status.is_ok())
    }

    /// The leaves that failed verification.
    pub fn damaged(&self) -> impl Iterator<Item = &LeafCheck> {
        self.leaves.iter().filter(|l| !l.status.is_ok())
    }
}

/// Check one leaf file against its committed length and CRC, localizing
/// any damage with the file's own footer.
fn check_leaf(path: &Path, expected_len: u64, expected_crc: u32) -> LeafStatus {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return LeafStatus::Missing,
        Err(_) => return LeafStatus::Unreadable,
    };
    if bytes.len() as u64 != expected_len {
        return LeafStatus::LengthMismatch {
            expected: expected_len,
            found: bytes.len() as u64,
        };
    }
    if crc32c(&bytes) == expected_crc {
        return LeafStatus::Ok;
    }
    // Whole-file CRC failed: use the footer to say where.
    let sections = match FileFooter::detect(&bytes) {
        Ok(Some(footer)) => footer.verify(&bytes[..footer.payload_len as usize]),
        // Footer gone or itself damaged: report the mismatch unlocalized.
        Ok(None) | Err(_) => Vec::new(),
    };
    LeafStatus::ChecksumMismatch { sections }
}

/// Verify dataset `basename` in `dir` against its commit manifest.
///
/// Never errs on damage — damage is the *result*. `Err` is reserved for
/// environmental failures (e.g. the directory itself is unreadable).
pub fn verify_dataset(dir: impl AsRef<Path>, basename: &str) -> io::Result<VerifyReport> {
    let dir = dir.as_ref();
    let meta_path = dir.join(crate::write::meta_file_name(basename));
    let meta_bytes = match std::fs::read(&meta_path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            return Ok(VerifyReport {
                commit: CommitState::NotCommitted,
                leaves: Vec::new(),
            });
        }
        Err(e) => return Err(e),
    };

    let manifest = match CommitManifest::detect(&meta_bytes) {
        Ok(m) => m,
        Err(e) => {
            return Ok(VerifyReport {
                commit: CommitState::TornCommit(e.to_string()),
                leaves: Vec::new(),
            });
        }
    };

    match manifest {
        Some(m) => {
            // The manifest already proved the MetaTree bytes checksum
            // clean; decoding them must succeed, and disagreement between
            // the two is itself a torn commit.
            let meta = match MetaTree::decode(&meta_bytes[..m.meta_len as usize]) {
                Ok(t) => t,
                Err(e) => {
                    return Ok(VerifyReport {
                        commit: CommitState::TornCommit(format!("metadata undecodable: {e}")),
                        leaves: Vec::new(),
                    });
                }
            };
            if meta.leaves.len() != m.files.len()
                || meta
                    .leaves
                    .iter()
                    .zip(&m.files)
                    .any(|(l, f)| l.file != f.file)
            {
                return Ok(VerifyReport {
                    commit: CommitState::TornCommit(
                        "manifest file list disagrees with the metadata tree".into(),
                    ),
                    leaves: Vec::new(),
                });
            }
            let leaves = m
                .files
                .iter()
                .map(|f| LeafCheck {
                    file: f.file.clone(),
                    status: check_leaf(&dir.join(&f.file), f.len, f.crc),
                })
                .collect();
            Ok(VerifyReport {
                commit: CommitState::Committed,
                leaves,
            })
        }
        None => {
            // Legacy dataset: no manifest. Check what the files themselves
            // allow — existence, and the per-section footer when present.
            let meta = match MetaTree::decode(&meta_bytes) {
                Ok(t) => t,
                Err(e) => {
                    return Ok(VerifyReport {
                        commit: CommitState::TornCommit(format!("metadata undecodable: {e}")),
                        leaves: Vec::new(),
                    });
                }
            };
            let leaves = meta
                .leaves
                .iter()
                .map(|l| {
                    let status = match std::fs::read(dir.join(&l.file)) {
                        Err(e) if e.kind() == io::ErrorKind::NotFound => LeafStatus::Missing,
                        Err(_) => LeafStatus::Unreadable,
                        Ok(bytes) => match FileFooter::detect(&bytes) {
                            Ok(Some(footer)) => {
                                let bad = footer.verify(&bytes[..footer.payload_len as usize]);
                                if bad.is_empty() {
                                    LeafStatus::Ok
                                } else {
                                    LeafStatus::ChecksumMismatch { sections: bad }
                                }
                            }
                            // Pre-footer file: nothing to check against.
                            Ok(None) => LeafStatus::Ok,
                            Err(_) => LeafStatus::ChecksumMismatch {
                                sections: Vec::new(),
                            },
                        },
                    };
                    LeafCheck {
                        file: l.file.clone(),
                        status,
                    }
                })
                .collect();
            Ok(VerifyReport {
                commit: CommitState::Legacy,
                leaves,
            })
        }
    }
}

impl Dataset {
    /// Open the consistent subset of a (possibly damaged) dataset
    /// read-only: verification runs first, and every leaf it rejected is
    /// excluded from queries instead of erroring them. Returns the
    /// dataset plus the verification report that drove the exclusions.
    ///
    /// Errs only when there is nothing consistent to open: the dataset
    /// never committed, or its commit marker is torn.
    pub fn open_degraded(
        dir: impl AsRef<Path>,
        basename: &str,
    ) -> io::Result<(Dataset, VerifyReport)> {
        let dir = dir.as_ref();
        let report = verify_dataset(dir, basename)?;
        match &report.commit {
            CommitState::Committed | CommitState::Legacy => {}
            CommitState::NotCommitted => {
                return Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("dataset {basename}: not committed (no metadata on disk)"),
                ));
            }
            CommitState::TornCommit(why) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("dataset {basename}: torn commit marker: {why}"),
                ));
            }
        }
        let excluded: Vec<u32> = report
            .leaves
            .iter()
            .enumerate()
            .filter(|(_, l)| !l.status.is_ok())
            .map(|(i, _)| i as u32)
            .collect();
        let ds = Dataset::open(dir, basename)?.with_excluded(excluded);
        Ok((ds, report))
    }
}
