//! The executed two-phase parallel read pipeline (paper §IV, Fig. 3).
//!
//! Checkpoint-restart reads mirror the two-phase write: every rank parses
//! the top-level metadata, a deterministic subset of ranks becomes *read
//! aggregators* (each responsible for a set of leaf files), and each rank
//! requests the particles overlapping its bounds from the aggregators of
//! the leaves it overlaps.
//!
//! Because an aggregator may need data served by another aggregator, the
//! transfer runs as a client/server loop over nonblocking operations: a
//! rank serves incoming queries, collects its own replies, then enters a
//! nonblocking barrier and *keeps serving* until the barrier completes —
//! the paper's `MPI_Ibarrier` termination protocol (§IV-B). Queries a rank
//! would send to itself are answered locally after the loop.

use bat_aggregation::assign::assign_read_aggregators;
use bat_aggregation::meta::MetaTree;
use bat_comm::Comm;
use bat_geom::Aabb;
use bat_iosim::{PhaseTimes, WritePhase};
use bat_layout::{BatFile, ColumnarParticles, ParticleSet, Query};
use bat_wire::{Decoder, Encoder};
use bytes::Bytes;
use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::time::Instant;

/// Tag for spatial queries to read aggregators.
const TAG_QUERY: u32 = 2;
/// Tag for query replies.
const TAG_REPLY: u32 = 3;

/// Result of a collective read on one rank.
#[derive(Debug, Clone)]
pub struct ReadReport {
    /// Particles overlapping the caller's bounds.
    pub particles: ParticleSet,
    /// Slowest-rank component times (Transfer = query/reply traffic,
    /// FileWrite slot holds file-read time, Metadata = metadata parse).
    pub times: PhaseTimes,
}

/// Collectively read back every particle overlapping `bounds` from the
/// dataset `basename` in `dir`. Works for any rank count relative to the
/// writing run (paper §IV-A).
pub fn read_particles(
    comm: &dyn Comm,
    bounds: Aabb,
    dir: &Path,
    basename: &str,
) -> io::Result<ParticleSet> {
    Ok(read_particles_timed(comm, bounds, dir, basename)?.particles)
}

/// As [`read_particles`], returning per-phase timings as well.
pub fn read_particles_timed(
    comm: &dyn Comm,
    bounds: Aabb,
    dir: &Path,
    basename: &str,
) -> io::Result<ReadReport> {
    let mut times = PhaseTimes::new();
    // Bounded entry barrier, same rationale as the write pipeline: dead
    // peers err cleanly instead of panicking the collective.
    comm.try_barrier()
        .map_err(|e| crate::write::abandon(comm, "read entry barrier", e))?;
    let t_start = Instant::now();

    // --- Phase 1: all ranks read the metadata (Fig. 3a). ---
    let t0 = Instant::now();
    let meta_bytes = std::fs::read(dir.join(crate::write::meta_file_name(basename)))?;
    let meta =
        MetaTree::decode(&meta_bytes).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    let num_files = meta.leaves.len();
    let file_owner = assign_read_aggregators(num_files, comm.size());
    times[WritePhase::Metadata] = t0.elapsed().as_secs_f64();

    // --- Phase 2: open the files I aggregate (Fig. 3a). ---
    let t0 = Instant::now();
    let my_files: Vec<u32> = (0..num_files as u32)
        .filter(|&l| file_owner[l as usize] == comm.rank() as u32)
        .collect();
    let mut open_files: HashMap<u32, BatFile> = HashMap::new();
    for &l in &my_files {
        let path = dir.join(&meta.leaves[l as usize].file);
        open_files.insert(l, BatFile::open(&path)?);
    }
    times[WritePhase::FileWrite] = t0.elapsed().as_secs_f64();

    // --- Phase 3: request overlapping leaves (Fig. 3b, c). ---
    let t0 = Instant::now();
    let wanted = meta.overlapping_leaves(&bounds);
    let mut local_leaves: Vec<u32> = Vec::new();
    let mut outstanding = 0usize;
    for &l in &wanted {
        let owner = file_owner[l as usize] as usize;
        if owner == comm.rank() {
            local_leaves.push(l);
        } else {
            let mut enc = Encoder::new();
            enc.put_u32(l);
            for v in [
                bounds.min.x,
                bounds.min.y,
                bounds.min.z,
                bounds.max.x,
                bounds.max.y,
                bounds.max.z,
            ] {
                enc.put_f32(v);
            }
            comm.isend(owner, TAG_QUERY, Bytes::from(enc.finish()));
            outstanding += 1;
        }
    }

    // Client/server loop with ibarrier termination (§IV-B). A corrupt
    // reply is recorded but the protocol still runs to completion, so the
    // error surfaces on this rank without hanging the others. Liveness is
    // bounded: a dead peer is noticed between polls, and with a configured
    // receive timeout the whole loop carries a deadline (DESIGN.md §11).
    let mut result = ParticleSet::new(meta.descs.clone());
    let mut reply_err: Option<bat_wire::WireError> = None;
    let mut barrier: Option<bat_comm::IBarrier> = None;
    let mut done = false;
    let deadline = comm.timeout().map(|t| Instant::now() + 4 * t);
    while !done {
        check_liveness(comm, deadline)?;
        // Serve one incoming query if present.
        if comm.iprobe(None, TAG_QUERY).is_some() {
            let msg = comm.recv(None, TAG_QUERY);
            let reply = serve_query(&open_files, &msg.payload);
            comm.isend(msg.src, TAG_REPLY, reply);
        }
        // Collect one reply if present: parse the columnar frame zero-copy
        // out of the message and bulk-append it.
        if outstanding > 0 && comm.iprobe(None, TAG_REPLY).is_some() {
            let msg = comm.recv(None, TAG_REPLY);
            if let Err(e) = ColumnarParticles::parse_frame(&msg.block())
                .and_then(|view| result.extend_from_columns(&view))
            {
                reply_err.get_or_insert(e);
            }
            outstanding -= 1;
        }
        // Once all replies are in, enter the nonblocking barrier; keep
        // serving until it completes.
        if outstanding == 0 && barrier.is_none() {
            barrier = Some(comm.ibarrier());
        }
        if let Some(b) = &mut barrier {
            if b.test() {
                done = true;
            }
        }
        if !done {
            std::thread::yield_now();
        }
    }
    // Drain any stragglers (none should exist after the barrier, but a
    // query sent just before a peer's barrier entry may still be queued).
    while comm.iprobe(None, TAG_QUERY).is_some() {
        let msg = comm.recv(None, TAG_QUERY);
        let reply = serve_query(&open_files, &msg.payload);
        comm.isend(msg.src, TAG_REPLY, reply);
    }
    times[WritePhase::Transfer] = t0.elapsed().as_secs_f64();

    // --- Phase 4: local queries against my own files (§IV-B). ---
    let t0 = Instant::now();
    for l in local_leaves {
        let file = &open_files[&l];
        if let Err(e) = append_query(file, &bounds, &mut result) {
            reply_err.get_or_insert(e);
        }
    }
    times[WritePhase::LayoutBuild] = t0.elapsed().as_secs_f64();
    times.total = t_start.elapsed().as_secs_f64();

    // Run the trailing collective before reporting any reply error so
    // healthy ranks are never left waiting on this one. A reply error
    // still takes precedence over a collective failure: it names the
    // root cause on this rank.
    let merged = crate::write::try_reduce_times(comm, &times);
    if let Some(e) = reply_err {
        return Err(io::Error::new(io::ErrorKind::InvalidData, e));
    }
    let merged = merged.map_err(|e| crate::write::abandon(comm, "read finalize", e))?;
    Ok(ReadReport {
        particles: result,
        times: merged,
    })
}

/// Fail the server loop when a peer has died or the loop deadline passed:
/// mark this rank dead (cascading the failure to anyone blocked on it)
/// and return a clean error instead of spinning forever.
fn check_liveness(comm: &dyn Comm, deadline: Option<Instant>) -> io::Result<()> {
    if let Some(dead) = (0..comm.size()).find(|&r| r != comm.rank() && comm.is_dead(r)) {
        comm.mark_dead();
        return Err(io::Error::new(
            io::ErrorKind::BrokenPipe,
            format!("read server loop abandoned: rank {dead} died"),
        ));
    }
    if deadline.is_some_and(|d| Instant::now() > d) {
        comm.mark_dead();
        return Err(io::Error::new(
            io::ErrorKind::TimedOut,
            "read server loop abandoned: deadline exceeded",
        ));
    }
    Ok(())
}

/// Answer one query message: spatial query over the requested leaf file.
///
/// A malformed query or an unservable/corrupt leaf yields an intentionally
/// empty (invalid) reply frame, which the requester records as a reply
/// error — the protocol still completes and no rank panics on untrusted
/// bytes (DESIGN.md §11).
fn serve_query(open_files: &HashMap<u32, BatFile>, payload: &[u8]) -> Bytes {
    try_serve_query(open_files, payload).unwrap_or_default()
}

fn try_serve_query(
    open_files: &HashMap<u32, BatFile>,
    payload: &[u8],
) -> bat_wire::WireResult<Bytes> {
    let mut dec = Decoder::new(payload);
    let leaf = dec.get_u32("query leaf")?;
    let mut vals = [0f32; 6];
    for v in &mut vals {
        *v = dec.get_f32("query bounds")?;
    }
    let qb = Aabb::new(
        bat_geom::Vec3::new(vals[0], vals[1], vals[2]),
        bat_geom::Vec3::new(vals[3], vals[4], vals[5]),
    );
    let file = open_files.get(&leaf).ok_or(bat_wire::WireError::BadTag {
        what: "query for a leaf this rank does not serve",
        tag: leaf as u64,
    })?;
    let mut out = ParticleSet::new(file.head().descs.clone());
    append_query(file, &qb, &mut out)?;
    Ok(ColumnarParticles::encode_frame(&out))
}

/// Run an exact spatial query on a file and append the hits.
fn append_query(file: &BatFile, bounds: &Aabb, out: &mut ParticleSet) -> bat_wire::WireResult<()> {
    let q = Query::new().with_bounds(*bounds);
    file.query(&q, |p| {
        out.push(p.position, p.attrs);
    })?;
    Ok(())
}

/// Tag for full-query messages (distributed in situ access, §IV-B).
const TAG_FULL_QUERY: u32 = 4;
/// Tag for full-query replies.
const TAG_FULL_REPLY: u32 = 5;

/// Collectively run an arbitrary [`Query`] against a written dataset — the
/// paper's distributed in situ analytics path (§IV-B: "This query mechanism
/// can also be leveraged to enable distributed data access for in situ
/// analytics").
///
/// Every rank passes its *own* query (different ranks may ask different
/// questions); the metadata tree culls candidate leaf files by bounds and
/// global bitmaps, read aggregators resolve each query against their files
/// (including progressive quality levels), and the union of the per-file
/// results returns to the asking rank. Termination uses the same
/// nonblocking-barrier server loop as checkpoint reads.
pub fn query_distributed(
    comm: &dyn Comm,
    q: &Query,
    dir: &Path,
    basename: &str,
) -> io::Result<ParticleSet> {
    let meta_bytes = std::fs::read(dir.join(crate::write::meta_file_name(basename)))?;
    let meta =
        MetaTree::decode(&meta_bytes).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    // Reject malformed queries before any traffic is generated; silently
    // matching nothing would look identical to an honest empty result.
    let q = &q
        .clone()
        .validated(meta.descs.len())
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
    let num_files = meta.leaves.len();
    let file_owner = assign_read_aggregators(num_files, comm.size());

    // Open the files this rank serves.
    let my_files: Vec<u32> = (0..num_files as u32)
        .filter(|&l| file_owner[l as usize] == comm.rank() as u32)
        .collect();
    let mut open_files: HashMap<u32, BatFile> = HashMap::new();
    for &l in &my_files {
        let path = dir.join(&meta.leaves[l as usize].file);
        open_files.insert(l, BatFile::open(&path)?);
    }

    // Metadata-level culling, then fan the query out.
    let wanted = meta
        .candidate_leaves(q)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    let mut local_leaves: Vec<u32> = Vec::new();
    let mut outstanding = 0usize;
    for &l in &wanted {
        let owner = file_owner[l as usize] as usize;
        if owner == comm.rank() {
            local_leaves.push(l);
        } else {
            let mut enc = Encoder::new();
            enc.put_u32(l);
            q.encode(&mut enc);
            comm.isend(owner, TAG_FULL_QUERY, Bytes::from(enc.finish()));
            outstanding += 1;
        }
    }

    let mut result = ParticleSet::new(meta.descs.clone());
    let mut reply_err: Option<bat_wire::WireError> = None;
    let mut barrier: Option<bat_comm::IBarrier> = None;
    let mut done = false;
    let deadline = comm.timeout().map(|t| Instant::now() + 4 * t);
    while !done {
        check_liveness(comm, deadline)?;
        if comm.iprobe(None, TAG_FULL_QUERY).is_some() {
            let msg = comm.recv(None, TAG_FULL_QUERY);
            let reply = serve_full_query(&open_files, &msg.payload);
            comm.isend(msg.src, TAG_FULL_REPLY, reply);
        }
        if outstanding > 0 && comm.iprobe(None, TAG_FULL_REPLY).is_some() {
            let msg = comm.recv(None, TAG_FULL_REPLY);
            if let Err(e) = ColumnarParticles::parse_frame(&msg.block())
                .and_then(|view| result.extend_from_columns(&view))
            {
                reply_err.get_or_insert(e);
            }
            outstanding -= 1;
        }
        if outstanding == 0 && barrier.is_none() {
            barrier = Some(comm.ibarrier());
        }
        if let Some(b) = &mut barrier {
            if b.test() {
                done = true;
            }
        }
        if !done {
            std::thread::yield_now();
        }
    }
    while comm.iprobe(None, TAG_FULL_QUERY).is_some() {
        let msg = comm.recv(None, TAG_FULL_QUERY);
        let reply = serve_full_query(&open_files, &msg.payload);
        comm.isend(msg.src, TAG_FULL_REPLY, reply);
    }
    // Local leaves resolved after the server loop (paper §IV-B).
    for l in local_leaves {
        let file = &open_files[&l];
        let mut out = result;
        let res = file.query(q, |p| out.push(p.position, p.attrs));
        result = out;
        if let Err(e) = res {
            reply_err.get_or_insert(e);
        }
    }
    if let Some(e) = reply_err {
        return Err(io::Error::new(io::ErrorKind::InvalidData, e));
    }
    Ok(result)
}

/// Answer one full-query message against the served files; like
/// [`serve_query`], failures become an empty (invalid) reply frame the
/// requester records as a reply error.
fn serve_full_query(open_files: &HashMap<u32, BatFile>, payload: &[u8]) -> Bytes {
    try_serve_full_query(open_files, payload).unwrap_or_default()
}

fn try_serve_full_query(
    open_files: &HashMap<u32, BatFile>,
    payload: &[u8],
) -> bat_wire::WireResult<Bytes> {
    let mut dec = Decoder::new(payload);
    let leaf = dec.get_u32("query leaf")?;
    let q = Query::decode(&mut dec)?;
    let file = open_files.get(&leaf).ok_or(bat_wire::WireError::BadTag {
        what: "query for a leaf this rank does not serve",
        tag: leaf as u64,
    })?;
    let mut out = ParticleSet::new(file.head().descs.clone());
    file.query(&q, |p| out.push(p.position, p.attrs))?;
    Ok(ColumnarParticles::encode_frame(&out))
}
