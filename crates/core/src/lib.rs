//! libbat: adaptive spatially aware parallel I/O for multiresolution
//! particle data layouts.
//!
//! A from-scratch Rust reproduction of Usher et al., *"Adaptive Spatially
//! Aware I/O for Multiresolution Particle Data Layouts"* (IPDPS 2021). This
//! crate ties the workspace together into the library a simulation would
//! link against:
//!
//! - [`write::write_particles`] — the two-phase **write** pipeline
//!   (paper §III, Fig. 1): gather rank bounds/counts at rank 0, build the
//!   adaptive Aggregation Tree (or the AUG baseline), transfer particles to
//!   aggregators, build and write one Binned Attribute Tree file per leaf,
//!   and write the top-level metadata.
//! - [`read::read_particles`] — the two-phase **read** pipeline
//!   (paper §IV, Fig. 3): read aggregators serve spatial queries over the
//!   leaf files through a nonblocking client/server loop terminated by an
//!   `ibarrier`, supporting restarts on more or fewer ranks than wrote the
//!   data.
//! - [`dataset::Dataset`] — postprocess **visualization reads**
//!   (paper §V): open a written timestep as a single logical file and run
//!   progressive multiresolution, spatial, and attribute-filtered queries.
//! - [`modeled`] — the same write/read pipelines executed against the
//!   `bat-iosim` performance model at supercomputer scale (up to the
//!   paper's 43k ranks), using the *real* aggregation algorithms and
//!   costing only I/O and network operations (see DESIGN.md §2).
//!
//! The executed pipelines run on [`bat_comm::Cluster`], an in-process
//! virtual cluster whose interface mirrors the MPI subset the paper uses;
//! porting to a real MPI binding means re-implementing [`bat_comm::Comm`].
//!
//! # Quickstart
//!
//! ```
//! use bat_comm::Cluster;
//! use bat_geom::{Aabb, Vec3};
//! use bat_layout::{AttributeDesc, ParticleSet};
//! use libbat::write::{write_particles, WriteConfig};
//! use libbat::read::read_particles;
//!
//! let dir = std::env::temp_dir().join(format!("libbat-doc-{}", std::process::id()));
//! std::fs::create_dir_all(&dir).unwrap();
//!
//! // 4 ranks, each owning a slab of the unit cube with 500 particles.
//! let dir2 = dir.clone();
//! Cluster::run(4, move |comm| {
//!     let r = comm.rank() as f32;
//!     let bounds = Aabb::new(Vec3::new(r * 0.25, 0.0, 0.0), Vec3::new(r * 0.25 + 0.25, 1.0, 1.0));
//!     let mut set = ParticleSet::new(vec![AttributeDesc::f64("mass")]);
//!     for i in 0..500 {
//!         // Strictly interior positions: spatial queries use inclusive
//!         // bounds, so particles exactly on a shared face would be
//!         // returned to both neighbors.
//!         let t = (i as f32 + 0.5) / 500.0;
//!         set.push(
//!             Vec3::new(bounds.min.x + t * 0.25, t, 0.5),
//!             &[i as f64],
//!         );
//!     }
//!     let cfg = WriteConfig::with_target_size(64 << 10, set.bytes_per_particle() as u64);
//!     let report = write_particles(&comm, set, bounds, &cfg, &dir2, "step0").unwrap();
//!     if comm.rank() == 0 {
//!         assert!(report.files >= 1);
//!     }
//!     // Restart: every rank reads its region back.
//!     let restored = read_particles(&comm, bounds, &dir2, "step0").unwrap();
//!     assert_eq!(restored.len(), 500);
//! });
//! std::fs::remove_dir_all(&dir).ok();
//! ```

pub mod dataset;
pub mod modeled;
pub mod read;
pub mod verify;
pub mod write;

pub use dataset::{Dataset, ReadBackend};
pub use modeled::{model_read, model_write, ModeledOutcome};
pub use verify::{verify_dataset, CommitState, LeafCheck, LeafStatus, VerifyReport};
pub use write::{Strategy, WriteConfig, WriteReport};

/// Re-exports of the workspace crates for downstream convenience.
pub use bat_aggregation as aggregation;
pub use bat_comm as comm;
pub use bat_geom as geom;
pub use bat_iosim as iosim;
pub use bat_layout as layout;
