//! Postprocess visualization reads over a written dataset (paper §V).
//!
//! [`Dataset::open`] loads the top-level metadata and lazily memory-maps
//! the leaf files. Queries run against the whole timestep as if it were a
//! single file: the metadata tree culls leaf files by bounds and by the
//! global root bitmaps, then each surviving file resolves the query with
//! its own shallow tree, treelets, and exact checks. Progressive
//! multiresolution reads (quality in `[0, 1]`, with an optional previous
//! quality) work across all files, which is how the paper's prototype web
//! viewer streams data (Fig. 4).

use bat_aggregation::meta::MetaTree;
use bat_iosim::ObjectStore;
use bat_layout::reader::QueryStats;
use bat_layout::source::FileSource;
use bat_layout::{cache, AttributeDesc, BatFile, PageCache, PointRecord, Query};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// How leaf files opened by a [`Dataset`] attach to a treelet page cache.
#[derive(Clone, Default)]
enum CachePolicy {
    /// Use the process-global cache, if one is installed
    /// (`BAT_CACHE_BYTES` / [`bat_layout::cache::install_global`]).
    #[default]
    Global,
    /// Attach every opened file to this dataset-private cache.
    Attached(Arc<PageCache>),
    /// Never cache, even if a global cache is installed.
    Disabled,
}

/// How a [`Dataset`] materializes leaf-file bytes (DESIGN.md §13).
///
/// Every backend returns byte-identical query results; they differ only in
/// the I/O they issue. The default comes from `BAT_READ_BACKEND`
/// (`mmap` | `owned` | `range-file` | `range-sim`), falling back to mmap.
#[derive(Clone, Default)]
pub enum ReadBackend {
    /// Memory-map each leaf file (the paper's local read path).
    #[default]
    Mmap,
    /// Read each leaf file into an owned buffer up front.
    Owned,
    /// Range requests (positioned reads) against the local file — remote
    /// semantics over local bytes, for request/byte accounting.
    RangeFile,
    /// Range requests against an in-process simulated object store
    /// ([`bat_iosim::ObjectStore`]); leaf files are uploaded on first open.
    RangeSim(Arc<ObjectStore>),
}

impl ReadBackend {
    /// The backend selected by `BAT_READ_BACKEND`, defaulting to mmap.
    /// `range-sim` uses the process-global [`ObjectStore::global`].
    pub fn from_env() -> ReadBackend {
        match std::env::var("BAT_READ_BACKEND").as_deref() {
            Ok("owned") => ReadBackend::Owned,
            Ok("range-file") => ReadBackend::RangeFile,
            Ok("range-sim") => ReadBackend::RangeSim(ObjectStore::global()),
            _ => ReadBackend::Mmap,
        }
    }

    /// The backend's `BAT_READ_BACKEND` spelling.
    pub fn name(&self) -> &'static str {
        match self {
            ReadBackend::Mmap => "mmap",
            ReadBackend::Owned => "owned",
            ReadBackend::RangeFile => "range-file",
            ReadBackend::RangeSim(_) => "range-sim",
        }
    }
}

/// A written timestep opened for visualization/analysis reads.
pub struct Dataset {
    meta: MetaTree,
    dir: PathBuf,
    /// Lazily opened leaf files (mmap handles are cheap but opening all
    /// files of a large dataset up front is not).
    files: Mutex<HashMap<u32, std::sync::Arc<BatFile>>>,
    /// Leaves excluded from queries — damaged files skipped by
    /// [`Dataset::open_degraded`] (sorted, usually empty).
    excluded: Vec<u32>,
    /// Cache attachment for files opened after the policy was set.
    cache: Mutex<CachePolicy>,
    /// Byte-access backend for files opened after the policy was set.
    backend: Mutex<ReadBackend>,
}

impl Dataset {
    /// Open dataset `basename` from `dir` (reads `basename.batmeta`).
    pub fn open(dir: impl AsRef<Path>, basename: &str) -> io::Result<Dataset> {
        let dir = dir.as_ref().to_path_buf();
        let meta_bytes = std::fs::read(dir.join(crate::write::meta_file_name(basename)))?;
        let meta = MetaTree::decode(&meta_bytes)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        Ok(Dataset {
            meta,
            dir,
            files: Mutex::new(HashMap::new()),
            excluded: Vec::new(),
            cache: Mutex::new(CachePolicy::default()),
            backend: Mutex::new(ReadBackend::from_env()),
        })
    }

    /// Select how leaf files are materialized. Already-opened files are
    /// dropped so they reopen under the new backend; in-flight queries
    /// keep their handles and finish unaffected.
    pub fn set_backend(&self, backend: ReadBackend) {
        *self.backend.lock() = backend;
        self.files.lock().clear();
    }

    /// The active read backend's name (`mmap`, `owned`, …).
    pub fn backend_name(&self) -> &'static str {
        self.backend.lock().name()
    }

    /// Attach a treelet page cache to this dataset: `Some(cache)` makes
    /// every leaf file consult (and fill) `cache`; `None` disables caching
    /// for this dataset even when a process-global cache is installed.
    /// Already-opened files are dropped so they reopen under the new
    /// policy; in-flight queries keep their handles and finish unaffected.
    pub fn set_cache(&self, cache: Option<Arc<PageCache>>) {
        *self.cache.lock() = match cache {
            Some(c) => CachePolicy::Attached(c),
            None => CachePolicy::Disabled,
        };
        self.files.lock().clear();
    }

    /// This dataset with the given leaves excluded from queries (the
    /// degraded-open path; see [`Dataset::open_degraded`]).
    pub(crate) fn with_excluded(mut self, mut excluded: Vec<u32>) -> Dataset {
        excluded.sort_unstable();
        self.excluded = excluded;
        self
    }

    /// Leaves excluded from queries by a degraded open.
    pub fn excluded_leaves(&self) -> &[u32] {
        &self.excluded
    }

    /// The parsed top-level metadata.
    pub fn meta(&self) -> &MetaTree {
        &self.meta
    }

    /// Attribute schema of the dataset.
    pub fn descs(&self) -> &[AttributeDesc] {
        &self.meta.descs
    }

    /// Total particles across all leaf files.
    pub fn num_particles(&self) -> u64 {
        self.meta.total_particles
    }

    /// Number of leaf files.
    pub fn num_files(&self) -> usize {
        self.meta.leaves.len()
    }

    /// Global `(min, max)` of attribute `a`.
    pub fn global_range(&self, a: usize) -> (f64, f64) {
        self.meta.global_ranges[a]
    }

    /// The (lazily opened, shared) handle for leaf file `leaf`. Public so
    /// a serving layer can plan and execute per-file work itself.
    pub fn file(&self, leaf: u32) -> io::Result<std::sync::Arc<BatFile>> {
        let mut files = self.files.lock();
        if let Some(f) = files.get(&leaf) {
            return Ok(f.clone());
        }
        if leaf as usize >= self.meta.leaves.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "leaf {leaf} out of range ({} files)",
                    self.meta.leaves.len()
                ),
            ));
        }
        let path = self.dir.join(&self.meta.leaves[leaf as usize].file);
        // Every backend attaches the process-global cache (as `open` does
        // for mmap); the dataset cache policy below can replace or remove
        // that attachment.
        let backend = self.backend.lock().clone();
        let opened = match &backend {
            ReadBackend::Mmap => BatFile::open(&path)?,
            ReadBackend::Owned => BatFile::from_bytes(std::fs::read(&path)?)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?
                .with_cache(cache::global()),
            ReadBackend::RangeFile => BatFile::from_source(Arc::new(FileSource::open(&path)?))
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?
                .with_cache(cache::global()),
            ReadBackend::RangeSim(store) => {
                // Upload (or refresh) the leaf's bytes under its absolute
                // path, so distinct datasets never collide and a rewritten
                // file never serves stale store content.
                let key = path.to_string_lossy().into_owned();
                store.put_file(&key, &path)?;
                BatFile::from_source(store.source(&key)?)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?
                    .with_cache(cache::global())
            }
        };
        let opened = match &*self.cache.lock() {
            CachePolicy::Global => opened,
            CachePolicy::Attached(c) => opened.with_cache(Some(c.clone())),
            CachePolicy::Disabled => opened.with_cache(None),
        };
        let f = std::sync::Arc::new(opened);
        files.insert(leaf, f.clone());
        Ok(files[&leaf].clone())
    }

    /// Run a query across the whole dataset, invoking `cb` per matching
    /// point. Quality/progressive parameters apply per leaf file, so a
    /// progressive sweep over the dataset refines every region uniformly.
    pub fn query(&self, q: &Query, mut cb: impl FnMut(PointRecord<'_>)) -> io::Result<QueryStats> {
        let q = &q
            .clone()
            .validated(self.meta.descs.len())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        let candidates = self
            .meta
            .candidate_leaves(q)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let mut stats = QueryStats::default();
        for leaf in candidates {
            if self.excluded.binary_search(&leaf).is_ok() {
                bat_obs::counter_add("read.degraded_skips", 1);
                continue;
            }
            let file = self.file(leaf)?;
            let s = file
                .query(q, &mut cb)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            stats.nodes_visited += s.nodes_visited;
            stats.treelets_visited += s.treelets_visited;
            stats.points_tested += s.points_tested;
            stats.points_returned += s.points_returned;
            stats.pages_touched += s.pages_touched;
            stats.bitmap_hits += s.bitmap_hits;
            stats.bitmap_skips += s.bitmap_skips;
            stats.cache_hits += s.cache_hits;
            stats.cache_misses += s.cache_misses;
            stats.filter_hits += s.filter_hits;
            stats.filter_false_positives += s.filter_false_positives;
        }
        Ok(stats)
    }

    /// Count matching points.
    pub fn count(&self, q: &Query) -> io::Result<u64> {
        Ok(self.query(q, |_| {})?.points_returned)
    }

    /// Total on-disk bytes of all leaf files (for overhead reporting).
    pub fn total_file_bytes(&self) -> io::Result<u64> {
        let mut total = 0;
        for leaf in &self.meta.leaves {
            total += std::fs::metadata(self.dir.join(&leaf.file))?.len();
        }
        Ok(total)
    }
}
