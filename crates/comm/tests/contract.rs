//! Transport-contract tests: the deadline and retry semantics every
//! [`bat_comm::Comm`] implementation must share, run against all three
//! transports (channel, socket, sim).
//!
//! The fault-driven `send_with_retry` cases need the failpoint registry:
//! `cargo test -p bat-comm --features failpoints --test contract`.

use bat_comm::{Cluster, Comm, CommError, TransportKind};
use bytes::Bytes;
use std::sync::Mutex;
use std::time::{Duration, Instant};

const TRANSPORTS: [TransportKind; 3] = [
    TransportKind::Channel,
    TransportKind::Socket,
    TransportKind::Sim,
];

/// The fault registry is process-global and rank-filtered; clusters reuse
/// rank numbers, so the retry tests must not overlap.
static SERIAL: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn zero_timeout_expires_immediately_on_every_transport() {
    for kind in TRANSPORTS {
        Cluster::run_with(kind, 2, |comm| {
            if comm.rank() == 0 {
                // A zero timeout is a valid deadline that is already
                // over: the receive must return Timeout without waiting,
                // not hang and not panic.
                let c = comm.with_timeout(Some(Duration::ZERO));
                let t0 = Instant::now();
                let r = c.recv_bounded(Some(1), 5);
                assert!(
                    matches!(
                        r,
                        Err(CommError::Timeout {
                            rank: 0,
                            src: Some(1),
                            tag: 5,
                            ..
                        })
                    ),
                    "{kind:?}: expected immediate Timeout, got {r:?}"
                );
                assert!(
                    t0.elapsed() < Duration::from_secs(1),
                    "{kind:?}: zero timeout waited {:?}",
                    t0.elapsed()
                );
            }
        });
    }
}

#[test]
fn with_timeout_returns_an_independent_handle() {
    for kind in TRANSPORTS {
        Cluster::run_with(kind, 2, |comm| {
            let bounded = comm.with_timeout(Some(Duration::from_millis(40)));
            assert_eq!(bounded.timeout(), Some(Duration::from_millis(40)));
            assert_eq!(bounded.rank(), comm.rank());
            assert_eq!(bounded.size(), comm.size());
            // The original handle's deadline is untouched, and the
            // bounded handle's deadline governs its receives.
            if comm.rank() == 0 {
                let t0 = Instant::now();
                let r = bounded.recv_bounded(Some(1), 9);
                assert!(
                    matches!(r, Err(CommError::Timeout { .. })),
                    "{kind:?}: got {r:?}"
                );
                let waited = t0.elapsed();
                assert!(
                    waited >= Duration::from_millis(40) && waited < Duration::from_secs(5),
                    "{kind:?}: 40 ms deadline waited {waited:?}"
                );
                // Unbounding again also works (explicit None).
                let unbounded = bounded.with_timeout(None);
                assert_eq!(unbounded.timeout(), None);
            }
        });
    }
}

#[test]
fn send_with_retry_delivers_without_faults() {
    let _guard = lock();
    for kind in TRANSPORTS {
        Cluster::run_with(kind, 2, |comm| {
            if comm.rank() == 1 {
                comm.send_with_retry(0, 3, Bytes::copy_from_slice(b"payload"))
                    .expect("clean send_with_retry succeeds");
            } else {
                let msg = comm
                    .recv_timeout(Some(1), 3, Duration::from_secs(10))
                    .expect("message arrives");
                assert_eq!(&msg.payload[..], b"payload");
            }
        });
    }
}

#[cfg(feature = "failpoints")]
mod faults {
    use super::*;

    #[test]
    fn send_with_retry_heals_transient_faults() {
        let _guard = lock();
        for kind in TRANSPORTS {
            bat_faults::reset();
            // The first two attempts fail, the third goes through: the
            // message must arrive exactly once and the call return Ok.
            bat_faults::configure("comm.send.retry=error@rank=1@limit=2").expect("fault spec");
            Cluster::run_with(kind, 2, |comm| {
                if comm.rank() == 1 {
                    comm.send_with_retry(0, 4, Bytes::copy_from_slice(b"healed"))
                        .expect("retries heal transient faults");
                } else {
                    let msg = comm
                        .recv_timeout(Some(1), 4, Duration::from_secs(10))
                        .expect("healed message arrives");
                    assert_eq!(&msg.payload[..], b"healed");
                    // Exactly once: no duplicate from the failed attempts.
                    assert!(comm.iprobe(Some(1), 4).is_none());
                }
            });
            assert!(
                bat_faults::hits("comm.send.retry") >= 2,
                "{kind:?}: failpoint never fired"
            );
            bat_faults::reset();
        }
    }

    #[test]
    fn send_with_retry_exhaustion_is_typed_and_marks_dead() {
        let _guard = lock();
        for kind in TRANSPORTS {
            bat_faults::reset();
            // Every attempt fails: after the attempt budget the sender
            // gets a typed SendFailed, marks itself dead, and the
            // receiver's bounded wait fails fast with PeerDead.
            bat_faults::configure("comm.send.retry=error@rank=1").expect("fault spec");
            Cluster::run_with(kind, 2, |comm| {
                if comm.rank() == 1 {
                    let r = comm.send_with_retry(0, 6, Bytes::copy_from_slice(b"lost"));
                    match r {
                        Err(CommError::SendFailed {
                            rank: 1,
                            dst: 0,
                            tag: 6,
                            attempts: 4,
                        }) => {}
                        other => {
                            panic!("{kind:?}: expected SendFailed after 4 attempts, got {other:?}")
                        }
                    }
                    assert!(comm.is_dead(1), "{kind:?}: exhausted sender must be dead");
                } else {
                    let r = comm.recv_timeout(Some(1), 6, Duration::from_secs(10));
                    assert!(
                        matches!(r, Err(CommError::PeerDead { peer: 1, .. })),
                        "{kind:?}: expected PeerDead, got {r:?}"
                    );
                }
            });
            bat_faults::reset();
        }
    }

    #[test]
    fn send_with_retry_kill_fails_fast() {
        let _guard = lock();
        for kind in TRANSPORTS {
            bat_faults::reset();
            // A kill fault is a crash, not a transient: no retries, the
            // first attempt returns SendFailed{attempts: 1}.
            bat_faults::configure("comm.send.retry=kill@rank=1").expect("fault spec");
            Cluster::run_with(kind, 2, |comm| {
                if comm.rank() == 1 {
                    let t0 = Instant::now();
                    let r = comm.send_with_retry(0, 8, Bytes::copy_from_slice(b"killed"));
                    match r {
                        Err(CommError::SendFailed { attempts: 1, .. }) => {}
                        other => {
                            panic!("{kind:?}: expected first-attempt SendFailed, got {other:?}")
                        }
                    }
                    assert!(
                        t0.elapsed() < Duration::from_secs(1),
                        "{kind:?}: kill must not back off"
                    );
                } else {
                    let r = comm.recv_timeout(Some(1), 8, Duration::from_secs(10));
                    assert!(
                        matches!(r, Err(CommError::PeerDead { peer: 1, .. })),
                        "{kind:?}: expected PeerDead, got {r:?}"
                    );
                }
            });
            bat_faults::reset();
        }
    }
}
