//! Star-topology membership: a crashed-and-restarted rank must be able
//! to rejoin the fabric through the hub's retained listener, and the
//! connect path must survive the startup races a supervisor creates
//! (dialing before the peer listens, or into a resetting predecessor).

use bat_comm::{Cluster, ClusterConfig, Comm, CommError};
use bytes::Bytes;
use std::time::{Duration, Instant};

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("bat-rejoin-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create socket dir");
    dir
}

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// A spoke announces death, departs, reconnects as a fresh incarnation,
/// and the hub re-admits it: the dead flag clears and traffic flows both
/// ways again, without disturbing the other spoke.
#[test]
fn star_spoke_rejoins_after_death() {
    let dir = fresh_dir("star");
    let cfg = ClusterConfig::unix_in_dir(&dir, 3).star();

    // The hub blocks in connect until both spokes dial in.
    let hub_cfg = cfg.with_rank(0);
    let hub = std::thread::spawn(move || Cluster::connect(&hub_cfg).expect("hub connect"));
    let comm1 = Cluster::connect(&cfg.with_rank(1)).expect("spoke 1 connect");
    let comm2 = Cluster::connect(&cfg.with_rank(2)).expect("spoke 2 connect");
    let comm0 = hub.join().expect("hub thread");

    comm1.isend(0, 7, Bytes::copy_from_slice(b"first life"));
    let m = comm0
        .recv_timeout(Some(1), 7, Duration::from_secs(5))
        .expect("pre-crash msg");
    assert_eq!(&m.payload[..], b"first life");

    // Crash: announce death (the PeerDead the router/supervisor would
    // observe), then tear the connection down.
    comm1.mark_dead();
    wait_until("hub to observe spoke 1 death", || comm0.is_dead(1));
    comm1.shutdown();
    drop(comm1);
    let r = comm0.recv_timeout(Some(1), 7, Duration::from_secs(5));
    assert!(
        matches!(r, Err(CommError::PeerDead { peer: 1, .. })),
        "receives from the dead incarnation must fail fast, got {r:?}"
    );

    // Respawn: a fresh incarnation dials the hub and is re-admitted.
    let comm1b = Cluster::connect(&cfg.with_rank(1)).expect("spoke 1 rejoin");
    wait_until("hub to clear spoke 1 dead flag", || !comm0.is_dead(1));

    comm1b.isend(0, 8, Bytes::copy_from_slice(b"second life"));
    let m = comm0
        .recv_timeout(Some(1), 8, Duration::from_secs(5))
        .expect("post-rejoin msg");
    assert_eq!(&m.payload[..], b"second life");
    comm0.isend(1, 9, Bytes::copy_from_slice(b"welcome back"));
    let m = comm1b
        .recv_timeout(Some(0), 9, Duration::from_secs(5))
        .expect("hub->spoke msg");
    assert_eq!(&m.payload[..], b"welcome back");

    // The other spoke never noticed.
    comm2.isend(0, 10, Bytes::copy_from_slice(b"steady"));
    let m = comm0
        .recv_timeout(Some(2), 10, Duration::from_secs(5))
        .expect("spoke 2 msg");
    assert_eq!(&m.payload[..], b"steady");

    for c in [comm0, comm1b, comm2] {
        c.shutdown();
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The startup race the supervisor creates: a worker whose first dial
/// lands on a predecessor's socket that accepts and immediately resets
/// must retry the whole connect+handshake, not fail the mesh build.
#[test]
fn connect_retries_through_a_resetting_predecessor() {
    let dir = fresh_dir("reset");
    let cfg = ClusterConfig::unix_in_dir(&dir, 2);
    let path0 = std::path::PathBuf::from(&cfg.endpoints[0]);

    // A fake predecessor holds rank 0's socket: it accepts one
    // connection and drops it mid-handshake.
    let fake = std::os::unix::net::UnixListener::bind(&path0).expect("bind fake predecessor");
    let spoke_cfg = cfg.with_rank(1);
    let spoke = std::thread::spawn(move || Cluster::connect(&spoke_cfg));
    let (conn, _) = fake.accept().expect("fake accept");
    drop(conn);
    drop(fake);
    std::fs::remove_file(&path0).ok();

    // Now the real rank 0 comes up; the spoke's retry loop must find it.
    let comm0 = Cluster::connect(&cfg.with_rank(0)).expect("real rank 0 connect");
    let comm1 = spoke
        .join()
        .expect("spoke thread")
        .expect("spoke survives the reset");

    comm1.isend(0, 3, Bytes::copy_from_slice(b"made it"));
    let m = comm0
        .recv_timeout(Some(1), 3, Duration::from_secs(5))
        .expect("post-retry msg");
    assert_eq!(&m.payload[..], b"made it");

    comm0.shutdown();
    comm1.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
