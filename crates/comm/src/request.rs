//! Nonblocking receive requests.

use crate::comm::{Comm, Message};

/// A posted nonblocking receive (`MPI_Irecv` analogue).
///
/// Complete it with [`RecvRequest::wait`] (blocking) or poll with
/// [`RecvRequest::test`]. Multiple outstanding requests on the same
/// `(source, tag)` complete in the order they are waited on, each taking the
/// earliest queued match.
pub struct RecvRequest {
    comm: Box<dyn Comm>,
    src: Option<usize>,
    tag: u32,
    done: bool,
}

impl RecvRequest {
    pub(crate) fn new(comm: Box<dyn Comm>, src: Option<usize>, tag: u32) -> RecvRequest {
        RecvRequest {
            comm,
            src,
            tag,
            done: false,
        }
    }

    /// Block until the matching message arrives and return it.
    ///
    /// Panics if the request was already completed by a successful `test`.
    pub fn wait(mut self) -> Message {
        assert!(!self.done, "receive request already completed");
        self.done = true;
        self.comm.recv_internal(self.src, self.tag)
    }

    /// Poll for completion: returns the message if one is queued, without
    /// blocking. After a successful `test`, the request is complete and must
    /// not be waited on.
    pub fn test(&mut self) -> Option<Message> {
        assert!(!self.done, "receive request already completed");
        let msg = self.comm.try_recv_internal(self.src, self.tag);
        if msg.is_some() {
            self.done = true;
        }
        msg
    }

    /// True once the request has delivered its message.
    pub fn is_complete(&self) -> bool {
        self.done
    }

    /// The source filter this request matches (`None` = any source).
    pub fn source(&self) -> Option<usize> {
        self.src
    }

    /// The tag this request matches.
    pub fn tag(&self) -> u32 {
        self.tag
    }
}

/// Wait for a set of receive requests, returning messages in request order
/// (`MPI_Waitall` analogue).
pub fn wait_all(reqs: Vec<RecvRequest>) -> Vec<Message> {
    reqs.into_iter().map(RecvRequest::wait).collect()
}
