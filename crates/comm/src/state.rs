//! Shared cluster state: per-rank mailboxes with condvar wakeups.

use crate::comm::Message;
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// One rank's incoming-message queue.
///
/// Messages are kept in arrival order; matching scans from the front so
/// per-(source, tag) delivery is FIFO (MPI's non-overtaking guarantee).
#[derive(Default)]
pub(crate) struct Mailbox {
    pub(crate) queue: Mutex<Vec<Message>>,
    pub(crate) cv: Condvar,
}

impl Mailbox {
    /// Index of the first queued message matching `(src, tag)`.
    pub(crate) fn find(queue: &[Message], src: Option<usize>, tag: u32) -> Option<usize> {
        queue
            .iter()
            .position(|m| m.tag == tag && src.is_none_or(|s| s == m.src))
    }
}

/// State shared by every rank thread in a cluster.
pub(crate) struct ClusterState {
    pub(crate) size: usize,
    pub(crate) mailboxes: Vec<Mailbox>,
    /// Set when any rank panics; blocked ranks wake and panic instead of
    /// deadlocking on messages that will never arrive.
    poisoned: AtomicBool,
    /// Per-rank death flags ([`crate::Comm::mark_dead`]): a dead rank has
    /// abandoned the protocol. Unlike poisoning, death is per-rank and
    /// survivable — receivers waiting on a dead peer get a clean
    /// [`crate::CommError::PeerDead`] instead of a panic.
    dead: Vec<AtomicBool>,
    /// Per-rank ibarrier invocation counters, used to disambiguate the round
    /// tags of successive nonblocking barriers.
    ibarrier_gen: Vec<AtomicU64>,
}

impl ClusterState {
    pub(crate) fn new(size: usize) -> Arc<ClusterState> {
        Arc::new(ClusterState {
            size,
            mailboxes: (0..size).map(|_| Mailbox::default()).collect(),
            poisoned: AtomicBool::new(false),
            dead: (0..size).map(|_| AtomicBool::new(false)).collect(),
            ibarrier_gen: (0..size).map(|_| AtomicU64::new(0)).collect(),
        })
    }

    /// Allocate the next ibarrier generation number for `rank`. Barriers are
    /// collective, so all ranks observe matching sequences.
    pub(crate) fn next_ibarrier_generation(&self, rank: usize) -> u64 {
        self.ibarrier_gen[rank].fetch_add(1, Ordering::Relaxed)
    }

    pub(crate) fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// Mark the cluster dead and wake every blocked rank.
    pub(crate) fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
        for mb in &self.mailboxes {
            // Acquire the lock so a rank between its poison-check and its
            // condvar wait cannot miss the notification.
            let _guard = mb.queue.lock();
            mb.cv.notify_all();
        }
    }

    pub(crate) fn is_dead(&self, rank: usize) -> bool {
        self.dead[rank].load(Ordering::Acquire)
    }

    /// Mark one rank dead and wake every blocked receiver so waits on that
    /// rank fail fast instead of running out their deadline.
    pub(crate) fn mark_dead(&self, rank: usize) {
        self.dead[rank].store(true, Ordering::Release);
        for mb in &self.mailboxes {
            // Same lock discipline as `poison`: a receiver between its
            // death-check and its condvar wait must not miss the wakeup.
            let _guard = mb.queue.lock();
            mb.cv.notify_all();
        }
    }

    /// Deliver a message into `dst`'s mailbox and wake it. Messages to a
    /// dead rank are dropped — nobody is left to consume them, and letting
    /// them queue would only hide the fault.
    pub(crate) fn deliver(&self, dst: usize, msg: Message) {
        if self.is_dead(dst) {
            return;
        }
        let mb = &self.mailboxes[dst];
        let mut q = mb.queue.lock();
        q.push(msg);
        mb.cv.notify_all();
    }
}

/// Shared poison flag for thread-hosted socket clusters: ranks live in one
/// process but talk over real sockets, so a panicking rank still needs a
/// side channel to wake its siblings out of blocked receives. Each rank
/// registers its inbox here; `poison` trips the flag and notifies them all.
/// Multi-process clusters get a private cell per process (never tripped
/// remotely — peers observe the death through the connection instead).
#[derive(Default)]
pub(crate) struct PoisonCell {
    flag: AtomicBool,
    inboxes: Mutex<Vec<Arc<Mailbox>>>,
}

impl PoisonCell {
    pub(crate) fn register(&self, inbox: Arc<Mailbox>) {
        self.inboxes.lock().push(inbox);
    }

    pub(crate) fn is_poisoned(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    pub(crate) fn poison(&self) {
        self.flag.store(true, Ordering::Release);
        for mb in self.inboxes.lock().iter() {
            // Same missed-wakeup discipline as `ClusterState::poison`.
            let _guard = mb.queue.lock();
            mb.cv.notify_all();
        }
    }
}
