//! Cluster entry points: thread-hosted launch across any transport, plus
//! explicit topology configuration for multi-process clusters.
//!
//! [`Cluster::run`] spawns `n` rank threads and hands each a boxed
//! [`Comm`]; which transport backs those handles is picked by
//! `BAT_TRANSPORT` (`channel` default, `socket`, `sim`), so the entire
//! test suite and every pipeline can run over real sockets or the
//! simulated network without touching a call site.
//!
//! Multi-process clusters skip `run` entirely: each process parses a
//! [`ClusterConfig`] (usually from the `BAT_CLUSTER` env var) naming its
//! rank, the cluster size, and every peer endpoint, then calls
//! [`Cluster::connect`] to join the mesh.

use crate::channel::ChannelComm;
use crate::comm::Comm;
use crate::sim::{SimComm, SimParams};
use crate::socket::{Endpoint, Listener, SocketComm};
use crate::state::{ClusterState, PoisonCell};
use parking_lot::Mutex;
use std::io;
use std::panic::AssertUnwindSafe;
use std::sync::Arc;

/// Which byte-moving fabric backs a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// In-process mailboxes (threads; the default and byte-identity
    /// reference).
    Channel,
    /// TCP or Unix-domain stream sockets (threads or processes).
    Socket,
    /// In-process with a `bat-iosim` latency/bandwidth model.
    Sim,
}

impl TransportKind {
    fn parse(s: &str) -> Result<TransportKind, String> {
        match s {
            "channel" | "thread" | "threads" => Ok(TransportKind::Channel),
            "socket" | "tcp" | "unix" => Ok(TransportKind::Socket),
            "sim" | "simulated" => Ok(TransportKind::Sim),
            other => Err(format!(
                "unknown transport `{other}` (expected channel|socket|sim)"
            )),
        }
    }
}

/// How socket ranks are wired together.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Topology {
    /// Full mesh: every rank connects to every other (the original
    /// shape; worker↔worker traffic possible, no rejoin after a crash).
    #[default]
    Mesh,
    /// Hub-and-spoke: ranks `1..n` connect only to rank 0, which keeps
    /// its listener alive and re-admits a restarted rank. The shard
    /// fabric's shape — all traffic flows through the router, and a
    /// supervised worker can crash, respawn, and rejoin.
    Star,
}

impl Topology {
    fn parse(s: &str) -> Result<Topology, String> {
        match s {
            "mesh" | "full" => Ok(Topology::Mesh),
            "star" | "hub" => Ok(Topology::Star),
            other => Err(format!("unknown topology `{other}` (expected mesh|star)")),
        }
    }
}

/// Explicit cluster topology: size, this process's rank, the transport,
/// and every rank's endpoint. Parsed from a `key=value;…` spec, the shape
/// the `BAT_CLUSTER` env var and `batcli` flags share:
///
/// ```text
/// transport=tcp;rank=1;size=3;peers=127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003
/// transport=unix;rank=0;size=2;topo=star;peers=/tmp/bat0.sock,/tmp/bat1.sock
/// ```
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of ranks.
    pub size: usize,
    /// This process's rank in `0..size`.
    pub rank: usize,
    /// Transport the cluster runs over.
    pub transport: TransportKind,
    /// Wiring shape for socket clusters (`topo=` key, default mesh).
    pub topology: Topology,
    /// One endpoint per rank (`host:port` for TCP, paths for Unix
    /// sockets); empty for in-process transports.
    pub endpoints: Vec<String>,
}

impl ClusterConfig {
    /// Parse a `key=value;…` topology spec (see the type-level example).
    pub fn parse(spec: &str) -> Result<ClusterConfig, String> {
        let mut size = None;
        let mut rank = None;
        let mut transport = TransportKind::Socket;
        let mut topology = Topology::default();
        let mut endpoints = Vec::new();
        for kv in spec.split(';').filter(|s| !s.is_empty()) {
            let (key, val) = kv
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got `{kv}`"))?;
            match key.trim() {
                "size" => {
                    size = Some(
                        val.parse::<usize>()
                            .map_err(|_| format!("bad size `{val}`"))?,
                    )
                }
                "rank" => {
                    rank = Some(
                        val.parse::<usize>()
                            .map_err(|_| format!("bad rank `{val}`"))?,
                    )
                }
                "transport" => transport = TransportKind::parse(val.trim())?,
                "topo" | "topology" => topology = Topology::parse(val.trim())?,
                "peers" => {
                    endpoints = val
                        .split(',')
                        .filter(|s| !s.is_empty())
                        .map(|s| s.trim().to_string())
                        .collect()
                }
                other => return Err(format!("unknown cluster key `{other}`")),
            }
        }
        let size = size
            .or((!endpoints.is_empty()).then_some(endpoints.len()))
            .ok_or("cluster spec needs size= or peers=")?;
        let rank = rank.ok_or("cluster spec needs rank=")?;
        if rank >= size {
            return Err(format!("rank {rank} out of range for size {size}"));
        }
        if transport == TransportKind::Socket && endpoints.len() != size {
            return Err(format!(
                "socket cluster of size {size} needs {size} peers=, got {}",
                endpoints.len()
            ));
        }
        Ok(ClusterConfig {
            size,
            rank,
            transport,
            topology,
            endpoints,
        })
    }

    /// The topology from the `BAT_CLUSTER` env var, if set.
    pub fn from_env() -> Option<Result<ClusterConfig, String>> {
        std::env::var("BAT_CLUSTER").ok().map(|s| Self::parse(&s))
    }

    /// Serialize back into the spec format (for spawning worker
    /// processes: set `BAT_CLUSTER` to `cfg.with_rank(r).to_spec()`).
    pub fn to_spec(&self) -> String {
        let transport = match self.transport {
            TransportKind::Channel => "channel",
            TransportKind::Socket => "tcp",
            TransportKind::Sim => "sim",
        };
        let topo = match self.topology {
            // Omitted when mesh so specs from older builds round-trip.
            Topology::Mesh => String::new(),
            Topology::Star => ";topo=star".to_string(),
        };
        format!(
            "transport={};rank={};size={}{};peers={}",
            transport,
            self.rank,
            self.size,
            topo,
            self.endpoints.join(",")
        )
    }

    /// This topology viewed from a different rank.
    pub fn with_rank(&self, rank: usize) -> ClusterConfig {
        ClusterConfig {
            rank,
            ..self.clone()
        }
    }

    /// A Unix-domain-socket topology with one socket path per rank under
    /// `dir` (the shape `batcli shard-serve` and `bench_shard` use).
    pub fn unix_in_dir(dir: &std::path::Path, size: usize) -> ClusterConfig {
        ClusterConfig {
            size,
            rank: 0,
            transport: TransportKind::Socket,
            topology: Topology::default(),
            endpoints: (0..size)
                .map(|r| dir.join(format!("rank{r}.sock")).display().to_string())
                .collect(),
        }
    }

    /// The same topology wired as a star (supervised fabrics: workers
    /// dial only the hub, and a respawned worker can rejoin).
    pub fn star(mut self) -> ClusterConfig {
        self.topology = Topology::Star;
        self
    }

    pub(crate) fn parsed_endpoints(&self) -> io::Result<Vec<Endpoint>> {
        self.endpoints.iter().map(|e| Endpoint::parse(e)).collect()
    }
}

/// Cap on thread-hosted socket cluster sizes: a full mesh needs
/// O(n²) file descriptors in one process, so big rank counts (the 64-rank
/// stress tests) fall back to the channel transport.
fn socket_max_ranks() -> usize {
    std::env::var("BAT_SOCKET_MAX_RANKS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(12)
}

/// A virtual cluster. Stateless; [`Cluster::run`] is the entry point.
pub struct Cluster;

impl Cluster {
    /// Run `f` on `n` rank threads, each with its own [`Comm`], and return
    /// the per-rank results in rank order. The transport is chosen by
    /// `BAT_TRANSPORT` (default: channel).
    ///
    /// If any rank panics, the cluster is poisoned (ranks blocked in `recv`
    /// wake up and panic rather than deadlock) and the first panic is
    /// propagated to the caller.
    ///
    /// Rank counts well above the physical core count are fine: blocked
    /// ranks park on condition variables rather than spinning.
    pub fn run<T, F>(n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Box<dyn Comm>) -> T + Sync,
    {
        Self::run_with(Self::transport_from_env(n), n, f)
    }

    /// The transport `run` would pick for an `n`-rank cluster.
    pub fn transport_from_env(n: usize) -> TransportKind {
        match std::env::var("BAT_TRANSPORT").as_deref() {
            Ok(s) => match TransportKind::parse(s) {
                Ok(TransportKind::Socket) if n > socket_max_ranks() => {
                    // O(n²) sockets in one process would exhaust fd limits.
                    bat_obs::counter_add("comm.transport_fallback", 1);
                    TransportKind::Channel
                }
                Ok(kind) => kind,
                Err(_) => TransportKind::Channel,
            },
            Err(_) => TransportKind::Channel,
        }
    }

    /// [`Cluster::run`] over an explicit transport.
    pub fn run_with<T, F>(kind: TransportKind, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Box<dyn Comm>) -> T + Sync,
    {
        assert!(n > 0, "cluster needs at least one rank");
        match kind {
            TransportKind::Channel => {
                let state = ClusterState::new(n);
                run_ranks(n, &f, move |rank| {
                    RankHandle::plain(Box::new(ChannelComm::new(state.clone(), rank)))
                })
            }
            TransportKind::Sim => {
                let comms = Mutex::new(
                    SimComm::cluster(n, SimParams::from_env())
                        .into_iter()
                        .map(Some)
                        .collect::<Vec<_>>(),
                );
                run_ranks(n, &f, move |rank| {
                    RankHandle::plain(Box::new(
                        comms.lock()[rank].take().expect("one handle per rank"),
                    ))
                })
            }
            TransportKind::Socket => {
                // Pre-bind every listener on an ephemeral loopback port so
                // endpoints are known before any rank starts connecting
                // (no port race), and share one poison cell so a panicking
                // rank still wakes its in-process siblings.
                let listeners: Vec<Listener> = (0..n)
                    .map(|_| {
                        Listener::bind(&Endpoint::Tcp("127.0.0.1:0".into()))
                            .expect("bind loopback listener")
                    })
                    .collect();
                let endpoints: Vec<String> = listeners
                    .iter()
                    .map(|l| l.local_endpoint().expect("listener addr"))
                    .collect();
                let slots = Mutex::new(listeners.into_iter().map(Some).collect::<Vec<_>>());
                let poison = Arc::new(PoisonCell::default());
                run_ranks(n, &f, move |rank| {
                    let listener = slots.lock()[rank].take().expect("one listener per rank");
                    let cfg = ClusterConfig {
                        size: n,
                        rank,
                        transport: TransportKind::Socket,
                        topology: Topology::default(),
                        endpoints: endpoints.clone(),
                    };
                    let comm = SocketComm::establish(listener, &cfg, poison.clone())
                        .expect("socket transport setup");
                    let cleanup = comm.clone();
                    RankHandle {
                        comm: Box::new(comm),
                        cleanup: Some(Box::new(move || cleanup.shutdown())),
                    }
                })
            }
        }
    }

    /// Join a multi-process cluster described by `cfg` (usually
    /// `ClusterConfig::from_env()` from `BAT_CLUSTER`). Only the socket
    /// transport is meaningful across processes; in-process transports are
    /// accepted for size-1 topologies so single-rank tools can run under a
    /// generic launcher.
    pub fn connect(cfg: &ClusterConfig) -> io::Result<Box<dyn Comm>> {
        bat_faults::init_from_env();
        bat_faults::set_rank(Some(cfg.rank));
        match cfg.transport {
            TransportKind::Socket => Ok(Box::new(SocketComm::connect(cfg)?)),
            TransportKind::Channel | TransportKind::Sim if cfg.size == 1 => {
                Ok(Box::new(ChannelComm::new(ClusterState::new(1), 0)))
            }
            _ => Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "channel/sim transports are in-process; multi-process clusters need transport=tcp|unix",
            )),
        }
    }
}

/// What a rank thread needs: its comm handle and an optional teardown to
/// run after the rank function returns (socket transports close their
/// connections and join reader threads here).
struct RankHandle {
    comm: Box<dyn Comm>,
    cleanup: Option<Box<dyn FnOnce() + Send>>,
}

impl RankHandle {
    fn plain(comm: Box<dyn Comm>) -> RankHandle {
        RankHandle {
            comm,
            cleanup: None,
        }
    }
}

/// Shared thread-hosting loop: per-rank obs registries, fault context,
/// panic → poison, cleanup, and first-panic propagation.
fn run_ranks<T, F, M>(n: usize, f: &F, make: M) -> Vec<T>
where
    T: Send,
    F: Fn(Box<dyn Comm>) -> T + Sync,
    M: Fn(usize) -> RankHandle + Sync,
{
    // When metrics are on, each rank thread records into its own scoped
    // registry (so concurrent ranks never contend on one map) which is
    // drained into the launcher's registry after the join: counters add
    // and histograms merge across ranks, giving cluster-wide totals and
    // across-rank latency distributions.
    let rank_regs: Vec<std::sync::Arc<bat_obs::Registry>> = if bat_obs::enabled() {
        (0..n)
            .map(|_| std::sync::Arc::new(bat_obs::Registry::new()))
            .collect()
    } else {
        Vec::new()
    };

    let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let mut first_panic: Option<Box<dyn std::any::Any + Send>> = None;
    let make = &make;

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for rank in 0..n {
            let rank_reg = rank_regs.get(rank).cloned();
            handles.push(scope.spawn(move || {
                let _obs_scope = rank_reg.map(bat_obs::scope);
                // Fault context: load `BAT_FAULTS` once per process and
                // tag this thread with its rank so `@rank=R` triggers
                // can target a single rank (no-ops without the
                // `failpoints` feature).
                bat_faults::init_from_env();
                bat_faults::set_rank(Some(rank));
                std::panic::catch_unwind(AssertUnwindSafe(|| {
                    let RankHandle { comm, cleanup } = make(rank);
                    // Kept aside so a panicking `f` can still poison: the
                    // primary handle moves into the closure.
                    let guard = comm.clone_comm();
                    let out = std::panic::catch_unwind(AssertUnwindSafe(|| f(comm)));
                    if out.is_err() {
                        guard.poison();
                    }
                    if let Some(c) = cleanup {
                        c();
                    }
                    match out {
                        Ok(v) => v,
                        Err(p) => std::panic::resume_unwind(p),
                    }
                }))
            }));
        }
        for (rank, h) in handles.into_iter().enumerate() {
            // Threads never leak panics past catch_unwind, so join() is
            // infallible here.
            match h.join().expect("rank thread join") {
                Ok(v) => results[rank] = Some(v),
                Err(p) => {
                    if first_panic.is_none() {
                        first_panic = Some(p);
                    }
                }
            }
        }
    });

    for reg in &rank_regs {
        reg.drain_into_current();
    }

    if let Some(p) = first_panic {
        std::panic::resume_unwind(p);
    }
    results
        .into_iter()
        .map(|r| r.expect("all ranks returned"))
        .collect()
}
