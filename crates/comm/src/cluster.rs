//! Cluster entry point: spawn rank threads and collect their results.

use crate::comm::Comm;
use crate::state::ClusterState;
use std::panic::AssertUnwindSafe;

/// A virtual cluster. Stateless; [`Cluster::run`] is the entry point.
pub struct Cluster;

impl Cluster {
    /// Run `f` on `n` rank threads, each with its own [`Comm`], and return
    /// the per-rank results in rank order.
    ///
    /// If any rank panics, the cluster is poisoned (ranks blocked in `recv`
    /// wake up and panic rather than deadlock) and the first panic is
    /// propagated to the caller.
    ///
    /// Rank counts well above the physical core count are fine: blocked
    /// ranks park on condition variables rather than spinning.
    pub fn run<T, F>(n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Comm) -> T + Sync,
    {
        assert!(n > 0, "cluster needs at least one rank");
        let state = ClusterState::new(n);
        let f = &f;

        // When metrics are on, each rank thread records into its own scoped
        // registry (so concurrent ranks never contend on one map) which is
        // drained into the launcher's registry after the join: counters add
        // and histograms merge across ranks, giving cluster-wide totals and
        // across-rank latency distributions.
        let rank_regs: Vec<std::sync::Arc<bat_obs::Registry>> = if bat_obs::enabled() {
            (0..n)
                .map(|_| std::sync::Arc::new(bat_obs::Registry::new()))
                .collect()
        } else {
            Vec::new()
        };

        let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
        let mut first_panic: Option<Box<dyn std::any::Any + Send>> = None;

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for rank in 0..n {
                let comm = Comm::new(state.clone(), rank);
                let state = state.clone();
                let rank_reg = rank_regs.get(rank).cloned();
                handles.push(scope.spawn(move || {
                    let _obs_scope = rank_reg.map(bat_obs::scope);
                    // Fault context: load `BAT_FAULTS` once per process and
                    // tag this thread with its rank so `@rank=R` triggers
                    // can target a single rank (no-ops without the
                    // `failpoints` feature).
                    bat_faults::init_from_env();
                    bat_faults::set_rank(Some(rank));
                    let out = std::panic::catch_unwind(AssertUnwindSafe(|| f(comm)));
                    if out.is_err() {
                        state.poison();
                    }
                    out
                }));
            }
            for (rank, h) in handles.into_iter().enumerate() {
                // Threads never leak panics past catch_unwind, so join() is
                // infallible here.
                match h.join().expect("rank thread join") {
                    Ok(v) => results[rank] = Some(v),
                    Err(p) => {
                        if first_panic.is_none() {
                            first_panic = Some(p);
                        }
                    }
                }
            }
        });

        for reg in &rank_regs {
            reg.drain_into_current();
        }

        if let Some(p) = first_panic {
            std::panic::resume_unwind(p);
        }
        results
            .into_iter()
            .map(|r| r.expect("all ranks returned"))
            .collect()
    }
}
