//! Liveness errors: the communicator's way of turning a dead or silent
//! peer into a clean `Err` instead of an eternal hang (DESIGN.md §11).

use std::fmt;
use std::io;

/// Why a bounded receive (or a deadline-aware collective built on one)
/// could not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// No matching message arrived within the deadline.
    Timeout {
        /// The waiting rank.
        rank: usize,
        /// The source it was waiting on (`None` = any source).
        src: Option<usize>,
        /// The tag it was waiting on.
        tag: u32,
        /// How long it waited, in milliseconds.
        waited_ms: u64,
    },
    /// The peer this rank was receiving from declared itself dead
    /// ([`crate::Comm::mark_dead`]) and no matching message remains queued.
    PeerDead {
        /// The waiting rank.
        rank: usize,
        /// The dead peer.
        peer: usize,
        /// The tag it was waiting on.
        tag: u32,
    },
    /// A [`crate::Comm::send_with_retry`] exhausted its attempts (or was
    /// killed mid-send). The sending rank has already marked itself dead.
    SendFailed {
        /// The sending rank.
        rank: usize,
        /// The destination it was sending to.
        dst: usize,
        /// The tag it was sending on.
        tag: u32,
        /// How many attempts were made.
        attempts: u32,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::Timeout {
                rank,
                src,
                tag,
                waited_ms,
            } => match src {
                Some(s) => write!(
                    f,
                    "rank {rank}: receive from rank {s} (tag {tag}) timed out after {waited_ms} ms"
                ),
                None => write!(
                    f,
                    "rank {rank}: receive from any source (tag {tag}) timed out after {waited_ms} ms"
                ),
            },
            CommError::PeerDead { rank, peer, tag } => write!(
                f,
                "rank {rank}: peer rank {peer} died before sending (tag {tag})"
            ),
            CommError::SendFailed {
                rank,
                dst,
                tag,
                attempts,
            } => write!(
                f,
                "rank {rank}: send to rank {dst} (tag {tag}) failed after {attempts} attempts"
            ),
        }
    }
}

impl std::error::Error for CommError {}

impl From<CommError> for io::Error {
    fn from(e: CommError) -> io::Error {
        let kind = match &e {
            CommError::Timeout { .. } => io::ErrorKind::TimedOut,
            CommError::PeerDead { .. } | CommError::SendFailed { .. } => io::ErrorKind::BrokenPipe,
        };
        io::Error::new(kind, e.to_string())
    }
}
