//! Blocking collectives built on the point-to-point layer.
//!
//! As in a real MPI implementation, collectives are ordinary messages on
//! reserved tags. Per-(source, tag) FIFO ordering makes back-to-back
//! collectives safe without sequence numbers: each operation sends and
//! receives a deterministic number of messages per peer pair.
//!
//! The aggregation pipeline is dominated by rank 0's serial tree build
//! (paper §III-A), so gather/scatter use simple linear algorithms at the
//! root; broadcast uses a binomial tree.
//!
//! Every collective comes in two flavors:
//!
//! - The classic infallible form (`gather`, `scatter`, …): blocks until
//!   every peer participates, the right semantics when all ranks are
//!   healthy by construction.
//! - A bounded `try_*` form returning `Result<_, CommError>`: each
//!   internal receive honors the handle's [`Comm::timeout`], so a dead or
//!   wedged peer surfaces as a clean error on every survivor within a
//!   bounded number of deadlines instead of hanging the cluster
//!   (DESIGN.md §11). With no timeout configured, `try_*` still fails
//!   fast when a specific peer is marked dead.
//!
//! The algorithms live here as free functions generic over `C: Comm +
//! ?Sized` (a default trait method cannot unsize `&Self` into `&dyn Comm`);
//! the [`Comm`] trait's provided methods delegate to them, so every
//! transport runs the exact same message schedules.

use crate::comm::Comm;
use crate::error::CommError;
use crate::MAX_USER_TAG;
use bytes::Bytes;

const TAG_GATHER: u32 = MAX_USER_TAG + 2;
const TAG_SCATTER: u32 = MAX_USER_TAG + 3;
const TAG_BCAST: u32 = MAX_USER_TAG + 4;
const TAG_REDUCE: u32 = MAX_USER_TAG + 5;
/// Barrier rounds occupy their own tag range (one tag per round).
const TAG_BARRIER: u32 = MAX_USER_TAG + 0x100;

/// Bounded dissemination barrier: errs if any round's partner message
/// does not arrive within the configured timeout.
pub(crate) fn try_barrier<C: Comm + ?Sized>(comm: &C) -> Result<(), CommError> {
    let n = comm.size();
    if n <= 1 {
        return Ok(());
    }
    let rounds = (n as u64).next_power_of_two().trailing_zeros();
    for k in 0..rounds {
        let dist = 1usize << k;
        let dst = (comm.rank() + dist) % n;
        let src = (comm.rank() + n - dist % n) % n;
        comm.isend_internal(dst, TAG_BARRIER + k, Bytes::new());
        let _ = comm.recv_bounded_internal(Some(src), TAG_BARRIER + k)?;
    }
    Ok(())
}

/// Bounded linear gather at `root` (rank order).
pub(crate) fn try_gather<C: Comm + ?Sized>(
    comm: &C,
    root: usize,
    data: Bytes,
) -> Result<Option<Vec<Bytes>>, CommError> {
    if comm.rank() == root {
        let mut out = Vec::with_capacity(comm.size());
        for src in 0..comm.size() {
            if src == root {
                out.push(data.clone());
            } else {
                out.push(comm.recv_bounded_internal(Some(src), TAG_GATHER)?.payload);
            }
        }
        Ok(Some(out))
    } else {
        comm.isend_internal(root, TAG_GATHER, data);
        Ok(None)
    }
}

/// Bounded linear scatter from `root`.
pub(crate) fn try_scatter<C: Comm + ?Sized>(
    comm: &C,
    root: usize,
    parts: Option<Vec<Bytes>>,
) -> Result<Bytes, CommError> {
    if comm.rank() == root {
        let parts = parts.expect("root must supply scatter parts");
        assert_eq!(parts.len(), comm.size(), "scatter needs one part per rank");
        let mut mine = Bytes::new();
        for (dst, part) in parts.into_iter().enumerate() {
            if dst == root {
                mine = part;
            } else {
                comm.isend_internal(dst, TAG_SCATTER, part);
            }
        }
        Ok(mine)
    } else {
        assert!(parts.is_none(), "non-root ranks must pass None to scatter");
        Ok(comm.recv_bounded_internal(Some(root), TAG_SCATTER)?.payload)
    }
}

/// Bounded binomial-tree broadcast from `root`.
pub(crate) fn try_bcast<C: Comm + ?Sized>(
    comm: &C,
    root: usize,
    data: Option<Bytes>,
) -> Result<Bytes, CommError> {
    let n = comm.size();
    // Rotate ranks so the root is virtual rank 0.
    let vrank = (comm.rank() + n - root) % n;
    let payload = if vrank == 0 {
        data.expect("root must supply bcast data")
    } else {
        // Receive from the parent: clear the lowest set bit of vrank.
        let parent_v = vrank & (vrank - 1);
        let parent = (parent_v + root) % n;
        comm.recv_bounded_internal(Some(parent), TAG_BCAST)?.payload
    };
    // Forward to children: set each bit above our lowest set bit.
    let lowest = if vrank == 0 {
        usize::BITS
    } else {
        vrank.trailing_zeros()
    };
    for b in 0..lowest.min(usize::BITS - 1) {
        let child_v = vrank | (1 << b);
        if child_v != vrank && child_v < n {
            let child = (child_v + root) % n;
            comm.isend_internal(child, TAG_BCAST, payload.clone());
        }
    }
    Ok(payload)
}

/// Bounded all-reduce: gather at 0, reduce, broadcast.
pub(crate) fn try_allreduce_u64<C: Comm + ?Sized>(
    comm: &C,
    value: u64,
    op: &dyn Fn(u64, u64) -> u64,
) -> Result<u64, CommError> {
    let gathered = try_gather_u64(comm, 0, value)?;
    let reduced = if comm.rank() == 0 {
        let vals = gathered.expect("root gathers");
        Some(Bytes::copy_from_slice(
            &vals.into_iter().reduce(op).expect("nonempty").to_le_bytes(),
        ))
    } else {
        None
    };
    let out = try_bcast(comm, 0, reduced)?;
    Ok(u64::from_le_bytes(
        out[..8].try_into().expect("u64 payload"),
    ))
}

/// Bounded linear `u64` gather at `root`.
pub(crate) fn try_gather_u64<C: Comm + ?Sized>(
    comm: &C,
    root: usize,
    value: u64,
) -> Result<Option<Vec<u64>>, CommError> {
    if comm.rank() == root {
        let mut out = Vec::with_capacity(comm.size());
        for src in 0..comm.size() {
            if src == root {
                out.push(value);
            } else {
                let m = comm.recv_bounded_internal(Some(src), TAG_REDUCE)?;
                out.push(u64::from_le_bytes(m.payload[..8].try_into().expect("u64")));
            }
        }
        Ok(Some(out))
    } else {
        comm.isend_internal(
            root,
            TAG_REDUCE,
            Bytes::copy_from_slice(&value.to_le_bytes()),
        );
        Ok(None)
    }
}

/// Infallible allgather: gather at 0, pack, broadcast, unpack.
pub(crate) fn allgather<C: Comm + ?Sized>(comm: &C, data: Bytes) -> Vec<Bytes> {
    let gathered = comm.gather(0, data);
    let packed = if comm.rank() == 0 {
        let parts = gathered.expect("root gathers");
        let mut enc = bat_wire::Encoder::new();
        enc.put_u64(parts.len() as u64);
        for p in &parts {
            enc.put_bytes(p);
        }
        Some(Bytes::from(enc.finish()))
    } else {
        None
    };
    let all = comm.bcast(0, packed);
    let mut dec = bat_wire::Decoder::new(&all);
    let count = dec.get_u64("allgather count").expect("valid packing") as usize;
    (0..count)
        .map(|_| Bytes::from(dec.get_bytes("allgather part").expect("valid packing")))
        .collect()
}
