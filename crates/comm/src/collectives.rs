//! Blocking collectives built on the point-to-point layer.
//!
//! As in a real MPI implementation, collectives are ordinary messages on
//! reserved tags. Per-(source, tag) FIFO ordering makes back-to-back
//! collectives safe without sequence numbers: each operation sends and
//! receives a deterministic number of messages per peer pair.
//!
//! The aggregation pipeline is dominated by rank 0's serial tree build
//! (paper §III-A), so gather/scatter use simple linear algorithms at the
//! root; broadcast uses a binomial tree.
//!
//! Every collective comes in two flavors:
//!
//! - The classic infallible form (`gather`, `scatter`, …): blocks until
//!   every peer participates, the right semantics when all ranks are
//!   healthy by construction.
//! - A bounded `try_*` form returning `Result<_, CommError>`: each
//!   internal receive honors the handle's [`Comm::timeout`], so a dead or
//!   wedged peer surfaces as a clean error on every survivor within a
//!   bounded number of deadlines instead of hanging the cluster
//!   (DESIGN.md §11). With no timeout configured, `try_*` still fails
//!   fast when a specific peer is marked dead.

use crate::comm::Comm;
use crate::error::CommError;
use crate::MAX_USER_TAG;
use bytes::Bytes;

const TAG_GATHER: u32 = MAX_USER_TAG + 2;
const TAG_SCATTER: u32 = MAX_USER_TAG + 3;
const TAG_BCAST: u32 = MAX_USER_TAG + 4;
const TAG_REDUCE: u32 = MAX_USER_TAG + 5;
/// Barrier rounds occupy their own tag range (one tag per round).
const TAG_BARRIER: u32 = MAX_USER_TAG + 0x100;

impl Comm {
    /// Blocking dissemination barrier.
    pub fn barrier(&self) {
        self.unbounded()
            .try_barrier()
            .unwrap_or_else(|e| panic!("unbounded barrier failed: {e}"));
    }

    /// Bounded dissemination barrier: errs if any round's partner message
    /// does not arrive within the configured timeout.
    pub fn try_barrier(&self) -> Result<(), CommError> {
        let n = self.size();
        if n <= 1 {
            return Ok(());
        }
        let rounds = (n as u64).next_power_of_two().trailing_zeros();
        for k in 0..rounds {
            let dist = 1usize << k;
            let dst = (self.rank() + dist) % n;
            let src = (self.rank() + n - dist % n) % n;
            self.isend_internal(dst, TAG_BARRIER + k, Bytes::new());
            let _ = self.recv_bounded_internal(Some(src), TAG_BARRIER + k)?;
        }
        Ok(())
    }

    /// Gather one byte payload from every rank at `root` (rank order).
    /// Returns `Some(all_payloads)` at the root, `None` elsewhere.
    pub fn gather(&self, root: usize, data: Bytes) -> Option<Vec<Bytes>> {
        self.unbounded()
            .try_gather(root, data)
            .unwrap_or_else(|e| panic!("unbounded gather failed: {e}"))
    }

    /// Bounded [`Comm::gather`].
    pub fn try_gather(&self, root: usize, data: Bytes) -> Result<Option<Vec<Bytes>>, CommError> {
        if self.rank() == root {
            let mut out = Vec::with_capacity(self.size());
            for src in 0..self.size() {
                if src == root {
                    out.push(data.clone());
                } else {
                    out.push(self.recv_bounded_internal(Some(src), TAG_GATHER)?.payload);
                }
            }
            Ok(Some(out))
        } else {
            self.isend_internal(root, TAG_GATHER, data);
            Ok(None)
        }
    }

    /// Scatter one byte payload to every rank from `root`. The root passes
    /// `Some(parts)` with exactly `size` entries; other ranks pass `None`.
    /// Every rank returns its own part.
    pub fn scatter(&self, root: usize, parts: Option<Vec<Bytes>>) -> Bytes {
        self.unbounded()
            .try_scatter(root, parts)
            .unwrap_or_else(|e| panic!("unbounded scatter failed: {e}"))
    }

    /// Bounded [`Comm::scatter`].
    pub fn try_scatter(&self, root: usize, parts: Option<Vec<Bytes>>) -> Result<Bytes, CommError> {
        if self.rank() == root {
            let parts = parts.expect("root must supply scatter parts");
            assert_eq!(parts.len(), self.size(), "scatter needs one part per rank");
            let mut mine = Bytes::new();
            for (dst, part) in parts.into_iter().enumerate() {
                if dst == root {
                    mine = part;
                } else {
                    self.isend_internal(dst, TAG_SCATTER, part);
                }
            }
            Ok(mine)
        } else {
            assert!(parts.is_none(), "non-root ranks must pass None to scatter");
            Ok(self.recv_bounded_internal(Some(root), TAG_SCATTER)?.payload)
        }
    }

    /// Broadcast from `root` via a binomial tree. The root passes
    /// `Some(data)`; every rank returns the payload.
    pub fn bcast(&self, root: usize, data: Option<Bytes>) -> Bytes {
        self.unbounded()
            .try_bcast(root, data)
            .unwrap_or_else(|e| panic!("unbounded bcast failed: {e}"))
    }

    /// Bounded [`Comm::bcast`].
    pub fn try_bcast(&self, root: usize, data: Option<Bytes>) -> Result<Bytes, CommError> {
        let n = self.size();
        // Rotate ranks so the root is virtual rank 0.
        let vrank = (self.rank() + n - root) % n;
        let payload = if vrank == 0 {
            data.expect("root must supply bcast data")
        } else {
            // Receive from the parent: clear the lowest set bit of vrank.
            let parent_v = vrank & (vrank - 1);
            let parent = (parent_v + root) % n;
            self.recv_bounded_internal(Some(parent), TAG_BCAST)?.payload
        };
        // Forward to children: set each bit above our lowest set bit.
        let lowest = if vrank == 0 {
            usize::BITS
        } else {
            vrank.trailing_zeros()
        };
        for b in 0..lowest.min(usize::BITS - 1) {
            let child_v = vrank | (1 << b);
            if child_v != vrank && child_v < n {
                let child = (child_v + root) % n;
                self.isend_internal(child, TAG_BCAST, payload.clone());
            }
        }
        Ok(payload)
    }

    /// All-reduce a `u64` with an associative, commutative operator.
    pub fn allreduce_u64(&self, value: u64, op: impl Fn(u64, u64) -> u64) -> u64 {
        self.unbounded()
            .try_allreduce_u64(value, op)
            .unwrap_or_else(|e| panic!("unbounded allreduce failed: {e}"))
    }

    /// Bounded [`Comm::allreduce_u64`].
    pub fn try_allreduce_u64(
        &self,
        value: u64,
        op: impl Fn(u64, u64) -> u64,
    ) -> Result<u64, CommError> {
        let gathered = self.try_gather_u64(0, value)?;
        let reduced = if self.rank() == 0 {
            let vals = gathered.expect("root gathers");
            Some(Bytes::copy_from_slice(
                &vals
                    .into_iter()
                    .reduce(&op)
                    .expect("nonempty")
                    .to_le_bytes(),
            ))
        } else {
            None
        };
        let out = self.try_bcast(0, reduced)?;
        Ok(u64::from_le_bytes(
            out[..8].try_into().expect("u64 payload"),
        ))
    }

    /// Gather a `u64` from every rank at `root`.
    pub fn gather_u64(&self, root: usize, value: u64) -> Option<Vec<u64>> {
        self.unbounded()
            .try_gather_u64(root, value)
            .unwrap_or_else(|e| panic!("unbounded gather failed: {e}"))
    }

    /// Bounded [`Comm::gather_u64`].
    pub fn try_gather_u64(&self, root: usize, value: u64) -> Result<Option<Vec<u64>>, CommError> {
        if self.rank() == root {
            let mut out = Vec::with_capacity(self.size());
            for src in 0..self.size() {
                if src == root {
                    out.push(value);
                } else {
                    let m = self.recv_bounded_internal(Some(src), TAG_REDUCE)?;
                    out.push(u64::from_le_bytes(m.payload[..8].try_into().expect("u64")));
                }
            }
            Ok(Some(out))
        } else {
            self.isend_internal(
                root,
                TAG_REDUCE,
                Bytes::copy_from_slice(&value.to_le_bytes()),
            );
            Ok(None)
        }
    }

    /// Gather everyone's payload on every rank (gather at 0 + broadcast).
    pub fn allgather(&self, data: Bytes) -> Vec<Bytes> {
        let gathered = self.gather(0, data);
        let packed = if self.rank() == 0 {
            let parts = gathered.expect("root gathers");
            let mut enc = bat_wire::Encoder::new();
            enc.put_u64(parts.len() as u64);
            for p in &parts {
                enc.put_bytes(p);
            }
            Some(Bytes::from(enc.finish()))
        } else {
            None
        };
        let all = self.bcast(0, packed);
        let mut dec = bat_wire::Decoder::new(&all);
        let count = dec.get_u64("allgather count").expect("valid packing") as usize;
        (0..count)
            .map(|_| Bytes::from(dec.get_bytes("allgather part").expect("valid packing")))
            .collect()
    }

    /// This handle with deadlines stripped: the infallible collectives
    /// must never time out, whatever the configured timeout is.
    fn unbounded(&self) -> Comm {
        self.with_timeout(None)
    }
}
