//! The simulated transport: in-process ranks whose messages travel over a
//! `bat-iosim` network model instead of arriving instantaneously.
//!
//! Each sender owns a virtual NIC: a message occupies the NIC for
//! `bytes / bandwidth` (back-to-back sends serialize, exactly like the
//! iosim write-phase model) and becomes *visible* to the receiver one
//! latency later. Receives, probes, and nonblocking tests only see
//! visible messages, so protocols that are timing-sensitive (ibarrier
//! polling loops, deadline-bounded receives, the read pipeline's
//! serve-while-waiting loop) run against realistic skew — deterministic
//! enough for offline testing, honest enough to surface ordering bugs the
//! zero-latency channel transport can never show.
//!
//! Liveness and poison semantics are identical to the channel transport;
//! the `comm.send` / `comm.recv` failpoints fire in the shared trait
//! wrappers, so fault grammars from the PR 4 matrix apply unchanged.

use crate::comm::{default_timeout, Comm, Message, ProbeInfo};
use crate::error::CommError;
use bytes::Bytes;
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Network parameters for the simulated transport.
#[derive(Debug, Clone, Copy)]
pub struct SimParams {
    /// One-way message latency.
    pub latency: Duration,
    /// NIC bandwidth in bytes per second (serializes a sender's messages).
    pub bytes_per_sec: f64,
}

impl SimParams {
    /// Parameters from a `bat-iosim` system profile's network section
    /// (bandwidth derated by the fabric oversubscription factor, like the
    /// iosim shuffle model).
    pub fn from_profile(profile: &bat_iosim::SystemProfile) -> SimParams {
        SimParams {
            latency: Duration::from_secs_f64(profile.network.latency),
            bytes_per_sec: profile.network.nic_bw / profile.network.oversubscription,
        }
    }

    /// Defaults (the iosim Stampede2 profile), overridable with
    /// `BAT_SIM_LATENCY_US` / `BAT_SIM_GBPS`.
    pub fn from_env() -> SimParams {
        let mut p = SimParams::from_profile(&bat_iosim::SystemProfile::stampede2());
        if let Some(us) = std::env::var("BAT_SIM_LATENCY_US")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
        {
            p.latency = Duration::from_micros(us);
        }
        if let Some(gbps) = std::env::var("BAT_SIM_GBPS")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .filter(|g| *g > 0.0)
        {
            p.bytes_per_sec = gbps * 1e9;
        }
        p
    }
}

impl Default for SimParams {
    fn default() -> SimParams {
        SimParams::from_profile(&bat_iosim::SystemProfile::stampede2())
    }
}

/// Aggregate traffic accounting for a simulated cluster.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimNetStats {
    /// Messages sent (including self-sends).
    pub messages: u64,
    /// Payload bytes sent.
    pub bytes: u64,
    /// Total virtual NIC busy time across ranks, in microseconds.
    pub nic_busy_us: u64,
}

/// A queued message and the instant it becomes visible to the receiver.
struct InFlight {
    visible_at: Instant,
    msg: Message,
}

#[derive(Default)]
struct SimMailbox {
    queue: Mutex<Vec<InFlight>>,
    cv: Condvar,
}

impl SimMailbox {
    /// Index of the first *visible* queued message matching `(src, tag)`.
    /// Per-sender NIC serialization makes same-source visibility monotonic
    /// in queue order, so taking the first visible match preserves the
    /// per-(source, tag) FIFO guarantee.
    fn find_visible(
        queue: &[InFlight],
        src: Option<usize>,
        tag: u32,
        now: Instant,
    ) -> Option<usize> {
        queue.iter().position(|f| {
            f.visible_at <= now && f.msg.tag == tag && src.is_none_or(|s| s == f.msg.src)
        })
    }

    /// Earliest future visibility among queued matches, if any.
    fn next_visible(
        queue: &[InFlight],
        src: Option<usize>,
        tag: u32,
        now: Instant,
    ) -> Option<Instant> {
        queue
            .iter()
            .filter(|f| {
                f.visible_at > now && f.msg.tag == tag && src.is_none_or(|s| s == f.msg.src)
            })
            .map(|f| f.visible_at)
            .min()
    }
}

struct SimState {
    size: usize,
    params: SimParams,
    mailboxes: Vec<SimMailbox>,
    poisoned: AtomicBool,
    dead: Vec<AtomicBool>,
    ibarrier_gen: Vec<AtomicU64>,
    /// Per-rank virtual NIC: the instant the NIC frees up.
    nic_free: Vec<Mutex<Instant>>,
    messages: AtomicU64,
    bytes: AtomicU64,
    nic_busy_us: AtomicU64,
}

impl SimState {
    fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
        for mb in &self.mailboxes {
            let _guard = mb.queue.lock();
            mb.cv.notify_all();
        }
    }

    fn mark_dead(&self, rank: usize) {
        self.dead[rank].store(true, Ordering::Release);
        for mb in &self.mailboxes {
            let _guard = mb.queue.lock();
            mb.cv.notify_all();
        }
    }
}

/// A rank handle on the simulated transport.
#[derive(Clone)]
pub struct SimComm {
    state: Arc<SimState>,
    rank: usize,
    timeout: Option<Duration>,
}

impl SimComm {
    /// Build an `n`-rank simulated cluster; returns one handle per rank.
    pub fn cluster(n: usize, params: SimParams) -> Vec<SimComm> {
        let now = Instant::now();
        let state = Arc::new(SimState {
            size: n,
            params,
            mailboxes: (0..n).map(|_| SimMailbox::default()).collect(),
            poisoned: AtomicBool::new(false),
            dead: (0..n).map(|_| AtomicBool::new(false)).collect(),
            ibarrier_gen: (0..n).map(|_| AtomicU64::new(0)).collect(),
            nic_free: (0..n).map(|_| Mutex::new(now)).collect(),
            messages: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            nic_busy_us: AtomicU64::new(0),
        });
        (0..n)
            .map(|rank| SimComm {
                state: state.clone(),
                rank,
                timeout: default_timeout(),
            })
            .collect()
    }

    /// Traffic accounting across the whole simulated cluster so far.
    pub fn net_stats(&self) -> SimNetStats {
        SimNetStats {
            messages: self.state.messages.load(Ordering::Relaxed),
            bytes: self.state.bytes.load(Ordering::Relaxed),
            nic_busy_us: self.state.nic_busy_us.load(Ordering::Relaxed),
        }
    }
}

impl Comm for SimComm {
    #[inline]
    fn rank(&self) -> usize {
        self.rank
    }

    #[inline]
    fn size(&self) -> usize {
        self.state.size
    }

    #[inline]
    fn timeout(&self) -> Option<Duration> {
        self.timeout
    }

    fn with_timeout(&self, timeout: Option<Duration>) -> Box<dyn Comm> {
        Box::new(SimComm {
            state: self.state.clone(),
            rank: self.rank,
            timeout,
        })
    }

    fn clone_comm(&self) -> Box<dyn Comm> {
        Box::new(self.clone())
    }

    fn transport(&self) -> &'static str {
        "sim"
    }

    fn mark_dead(&self) {
        self.state.mark_dead(self.rank);
    }

    fn is_dead(&self, rank: usize) -> bool {
        self.state.dead[rank].load(Ordering::Acquire)
    }

    fn poison(&self) {
        self.state.poison();
    }

    #[inline]
    fn check_alive(&self) {
        if self.state.poisoned.load(Ordering::Acquire) {
            panic!("cluster poisoned: another rank panicked");
        }
    }

    fn send_raw(&self, dst: usize, tag: u32, payload: Bytes) {
        let st = &self.state;
        let now = Instant::now();
        let len = payload.len();
        // Occupy this rank's virtual NIC for the transfer time, then add
        // the propagation latency. Serialization point per sender keeps
        // same-source visibility monotonic (FIFO preserved).
        let visible_at = {
            let mut free = st.nic_free[self.rank].lock();
            let start = if *free > now { *free } else { now };
            let xfer = Duration::from_secs_f64(len as f64 / st.params.bytes_per_sec);
            *free = start + xfer;
            st.nic_busy_us
                .fetch_add(xfer.as_micros() as u64, Ordering::Relaxed);
            *free + st.params.latency
        };
        st.messages.fetch_add(1, Ordering::Relaxed);
        st.bytes.fetch_add(len as u64, Ordering::Relaxed);
        if st.dead[dst].load(Ordering::Acquire) {
            return;
        }
        let mb = &st.mailboxes[dst];
        let mut q = mb.queue.lock();
        q.push(InFlight {
            visible_at,
            msg: Message {
                src: self.rank,
                tag,
                payload,
            },
        });
        mb.cv.notify_all();
    }

    fn recv_deadline_raw(
        &self,
        src: Option<usize>,
        tag: u32,
        deadline: Option<Instant>,
    ) -> Result<Message, CommError> {
        let st = &self.state;
        let started = Instant::now();
        let mb = &st.mailboxes[self.rank];
        let mut q = mb.queue.lock();
        loop {
            if st.poisoned.load(Ordering::Acquire) {
                panic!("cluster poisoned: another rank panicked");
            }
            let now = Instant::now();
            if let Some(i) = SimMailbox::find_visible(&q, src, tag, now) {
                return Ok(q.remove(i).msg);
            }
            let pending = SimMailbox::next_visible(&q, src, tag, now);
            // A matching in-flight message beats a dead source: it was
            // sent before the death and is still deliverable.
            if pending.is_none() {
                if let Some(s) = src {
                    if st.dead[s].load(Ordering::Acquire) {
                        return Err(CommError::PeerDead {
                            rank: self.rank,
                            peer: s,
                            tag,
                        });
                    }
                }
            }
            if let Some(d) = deadline {
                if now >= d {
                    return Err(CommError::Timeout {
                        rank: self.rank,
                        src,
                        tag,
                        waited_ms: started.elapsed().as_millis() as u64,
                    });
                }
            }
            // Wait until the earliest of: a pending match becoming
            // visible, the deadline, or a wakeup for new arrivals.
            let wake_at = match (pending, deadline) {
                (Some(p), Some(d)) => Some(p.min(d)),
                (Some(p), None) => Some(p),
                (None, d) => d,
            };
            match wake_at {
                None => mb.cv.wait(&mut q),
                Some(t) => {
                    let now = Instant::now();
                    if t > now {
                        let _ = mb.cv.wait_for(&mut q, t - now);
                    }
                    // t <= now: loop re-scans immediately (the pending
                    // message just became visible).
                }
            }
        }
    }

    fn try_recv_raw(&self, src: Option<usize>, tag: u32) -> Option<Message> {
        let mb = &self.state.mailboxes[self.rank];
        let mut q = mb.queue.lock();
        SimMailbox::find_visible(&q, src, tag, Instant::now()).map(|i| q.remove(i).msg)
    }

    fn iprobe_raw(&self, src: Option<usize>, tag: u32) -> Option<ProbeInfo> {
        let mb = &self.state.mailboxes[self.rank];
        let q = mb.queue.lock();
        SimMailbox::find_visible(&q, src, tag, Instant::now()).map(|i| ProbeInfo {
            src: q[i].msg.src,
            tag: q[i].msg.tag,
            len: q[i].msg.payload.len(),
        })
    }

    fn next_ibarrier_generation(&self) -> u64 {
        self.state.ibarrier_gen[self.rank].fetch_add(1, Ordering::Relaxed)
    }
}
