//! The in-process channel transport: ranks are OS threads sharing one
//! [`ClusterState`] of mailboxes. This is the original `bat-comm` fabric —
//! synchronous eager delivery, shared poison flag — and the byte-identity
//! reference the other transports are tested against.

use crate::comm::{default_timeout, Comm, Message, ProbeInfo};
use crate::error::CommError;
use crate::state::{ClusterState, Mailbox};
use bytes::Bytes;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A rank handle on the in-process channel transport.
#[derive(Clone)]
pub struct ChannelComm {
    pub(crate) state: Arc<ClusterState>,
    pub(crate) rank: usize,
    /// Deadline applied per bounded receive (`recv_bounded` and every
    /// `try_*` collective). `None` = wait forever.
    timeout: Option<Duration>,
}

impl ChannelComm {
    pub(crate) fn new(state: Arc<ClusterState>, rank: usize) -> ChannelComm {
        ChannelComm {
            state,
            rank,
            timeout: default_timeout(),
        }
    }
}

impl Comm for ChannelComm {
    #[inline]
    fn rank(&self) -> usize {
        self.rank
    }

    #[inline]
    fn size(&self) -> usize {
        self.state.size
    }

    #[inline]
    fn timeout(&self) -> Option<Duration> {
        self.timeout
    }

    fn with_timeout(&self, timeout: Option<Duration>) -> Box<dyn Comm> {
        Box::new(ChannelComm {
            state: self.state.clone(),
            rank: self.rank,
            timeout,
        })
    }

    fn clone_comm(&self) -> Box<dyn Comm> {
        Box::new(self.clone())
    }

    fn transport(&self) -> &'static str {
        "channel"
    }

    fn mark_dead(&self) {
        self.state.mark_dead(self.rank);
    }

    fn is_dead(&self, rank: usize) -> bool {
        self.state.is_dead(rank)
    }

    fn poison(&self) {
        self.state.poison();
    }

    #[inline]
    fn check_alive(&self) {
        if self.state.is_poisoned() {
            panic!("cluster poisoned: another rank panicked");
        }
    }

    fn send_raw(&self, dst: usize, tag: u32, payload: Bytes) {
        self.state.deliver(
            dst,
            Message {
                src: self.rank,
                tag,
                payload,
            },
        );
    }

    fn recv_deadline_raw(
        &self,
        src: Option<usize>,
        tag: u32,
        deadline: Option<Instant>,
    ) -> Result<Message, CommError> {
        let started = Instant::now();
        let mb = &self.state.mailboxes[self.rank];
        let mut q = mb.queue.lock();
        loop {
            if self.state.is_poisoned() {
                panic!("cluster poisoned: another rank panicked");
            }
            if let Some(i) = Mailbox::find(&q, src, tag) {
                return Ok(q.remove(i));
            }
            // Check for a dead source only after draining queued matches:
            // messages sent before death are still deliverable.
            if let Some(s) = src {
                if self.state.is_dead(s) {
                    return Err(CommError::PeerDead {
                        rank: self.rank,
                        peer: s,
                        tag,
                    });
                }
            }
            match deadline {
                None => mb.cv.wait(&mut q),
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return Err(CommError::Timeout {
                            rank: self.rank,
                            src,
                            tag,
                            waited_ms: started.elapsed().as_millis() as u64,
                        });
                    }
                    // Spurious wakeups and wakeups for non-matching
                    // messages loop back around; the deadline re-check
                    // above bounds the total wait.
                    let _ = mb.cv.wait_for(&mut q, d - now);
                }
            }
        }
    }

    fn try_recv_raw(&self, src: Option<usize>, tag: u32) -> Option<Message> {
        let mb = &self.state.mailboxes[self.rank];
        let mut q = mb.queue.lock();
        Mailbox::find(&q, src, tag).map(|i| q.remove(i))
    }

    fn iprobe_raw(&self, src: Option<usize>, tag: u32) -> Option<ProbeInfo> {
        let mb = &self.state.mailboxes[self.rank];
        let q = mb.queue.lock();
        Mailbox::find(&q, src, tag).map(|i| ProbeInfo {
            src: q[i].src,
            tag: q[i].tag,
            len: q[i].payload.len(),
        })
    }

    fn next_ibarrier_generation(&self) -> u64 {
        self.state.next_ibarrier_generation(self.rank)
    }
}
