//! The per-rank communicator handle: point-to-point operations.

use crate::request::RecvRequest;
use crate::state::{ClusterState, Mailbox};
use crate::{IBarrier, MAX_USER_TAG};
use bytes::Bytes;
use std::sync::Arc;

/// A message delivered to a rank.
#[derive(Debug, Clone)]
pub struct Message {
    /// Sending rank.
    pub src: usize,
    /// User tag.
    pub tag: u32,
    /// Payload bytes.
    pub payload: Bytes,
}

impl Message {
    /// The payload as a zero-copy [`bat_wire::Block`] view. Receivers that
    /// parse columnar frames slice their sections out of this block without
    /// copying the message body.
    pub fn block(&self) -> bat_wire::Block {
        bat_wire::Block::from(self.payload.clone())
    }
}

/// Metadata returned by [`Comm::iprobe`] without consuming the message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeInfo {
    /// Sending rank of the queued message.
    pub src: usize,
    /// Its tag.
    pub tag: u32,
    /// Payload length in bytes.
    pub len: usize,
}

/// A rank's handle to the cluster: knows its rank, the cluster size, and how
/// to exchange messages. Clone-able; clones refer to the same rank.
#[derive(Clone)]
pub struct Comm {
    pub(crate) state: Arc<ClusterState>,
    pub(crate) rank: usize,
}

impl Comm {
    pub(crate) fn new(state: Arc<ClusterState>, rank: usize) -> Comm {
        Comm { state, rank }
    }

    /// This rank's index in `0..size`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the cluster.
    #[inline]
    pub fn size(&self) -> usize {
        self.state.size
    }

    #[inline]
    fn check_alive(&self) {
        if self.state.is_poisoned() {
            panic!("cluster poisoned: another rank panicked");
        }
    }

    fn check_user_tag(tag: u32) {
        assert!(
            tag < MAX_USER_TAG,
            "tag {tag} is reserved for internal collectives (must be < {MAX_USER_TAG})"
        );
    }

    /// Nonblocking send with a user tag. Eager: the payload is enqueued at
    /// the destination before this returns, so there is no request to wait
    /// on (matching MPI's eager protocol for small/medium messages).
    pub fn isend(&self, dst: usize, tag: u32, payload: Bytes) {
        Self::check_user_tag(tag);
        self.isend_internal(dst, tag, payload);
    }

    /// Internal send that may use reserved tags (collectives).
    pub(crate) fn isend_internal(&self, dst: usize, tag: u32, payload: Bytes) {
        self.check_alive();
        assert!(dst < self.size(), "destination rank {dst} out of range");
        self.state.deliver(
            dst,
            Message {
                src: self.rank,
                tag,
                payload,
            },
        );
    }

    /// Post a nonblocking receive for `(src, tag)`; `src = None` matches any
    /// source. Complete it with [`RecvRequest::wait`] or poll with
    /// [`RecvRequest::test`].
    pub fn irecv(&self, src: Option<usize>, tag: u32) -> RecvRequest {
        Self::check_user_tag(tag);
        RecvRequest::new(self.clone(), src, tag)
    }

    /// Blocking receive: waits until a matching message arrives.
    pub fn recv(&self, src: Option<usize>, tag: u32) -> Message {
        Self::check_user_tag(tag);
        self.recv_internal(src, tag)
    }

    pub(crate) fn recv_internal(&self, src: Option<usize>, tag: u32) -> Message {
        let mb = &self.state.mailboxes[self.rank];
        let mut q = mb.queue.lock();
        loop {
            if self.state.is_poisoned() {
                panic!("cluster poisoned: another rank panicked");
            }
            if let Some(i) = Mailbox::find(&q, src, tag) {
                return q.remove(i);
            }
            mb.cv.wait(&mut q);
        }
    }

    /// Try to receive without blocking; returns `None` when no matching
    /// message is queued.
    pub(crate) fn try_recv_internal(&self, src: Option<usize>, tag: u32) -> Option<Message> {
        self.check_alive();
        let mb = &self.state.mailboxes[self.rank];
        let mut q = mb.queue.lock();
        Mailbox::find(&q, src, tag).map(|i| q.remove(i))
    }

    /// Nonblocking probe: report the first queued message matching
    /// `(src, tag)` without consuming it.
    pub fn iprobe(&self, src: Option<usize>, tag: u32) -> Option<ProbeInfo> {
        Self::check_user_tag(tag);
        self.check_alive();
        let mb = &self.state.mailboxes[self.rank];
        let q = mb.queue.lock();
        Mailbox::find(&q, src, tag).map(|i| ProbeInfo {
            src: q[i].src,
            tag: q[i].tag,
            len: q[i].payload.len(),
        })
    }

    /// Begin a nonblocking barrier (the `MPI_Ibarrier` of the read pipeline,
    /// paper §IV-B). Poll the returned handle with [`IBarrier::test`].
    pub fn ibarrier(&self) -> IBarrier {
        IBarrier::new(self.clone())
    }
}
