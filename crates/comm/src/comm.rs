//! The per-rank communicator handle: point-to-point operations.

use crate::error::CommError;
use crate::request::RecvRequest;
use crate::state::{ClusterState, Mailbox};
use crate::{IBarrier, MAX_USER_TAG};
use bytes::Bytes;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A message delivered to a rank.
#[derive(Debug, Clone)]
pub struct Message {
    /// Sending rank.
    pub src: usize,
    /// User tag.
    pub tag: u32,
    /// Payload bytes.
    pub payload: Bytes,
}

impl Message {
    /// The payload as a zero-copy [`bat_wire::Block`] view. Receivers that
    /// parse columnar frames slice their sections out of this block without
    /// copying the message body.
    pub fn block(&self) -> bat_wire::Block {
        bat_wire::Block::from(self.payload.clone())
    }
}

/// Metadata returned by [`Comm::iprobe`] without consuming the message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeInfo {
    /// Sending rank of the queued message.
    pub src: usize,
    /// Its tag.
    pub tag: u32,
    /// Payload length in bytes.
    pub len: usize,
}

/// The cluster-wide default receive deadline, read once from
/// `BAT_RECV_TIMEOUT_MS` (unset or unparsable = no deadline: the classic
/// block-forever MPI semantics).
fn default_timeout() -> Option<Duration> {
    static DEFAULT: std::sync::OnceLock<Option<Duration>> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("BAT_RECV_TIMEOUT_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .filter(|&ms| ms > 0)
            .map(Duration::from_millis)
    })
}

/// A rank's handle to the cluster: knows its rank, the cluster size, and how
/// to exchange messages. Clone-able; clones refer to the same rank.
#[derive(Clone)]
pub struct Comm {
    pub(crate) state: Arc<ClusterState>,
    pub(crate) rank: usize,
    /// Deadline applied per bounded receive (`recv_bounded` and every
    /// `try_*` collective). `None` = wait forever.
    timeout: Option<Duration>,
}

impl Comm {
    pub(crate) fn new(state: Arc<ClusterState>, rank: usize) -> Comm {
        Comm {
            state,
            rank,
            timeout: default_timeout(),
        }
    }

    /// This rank's index in `0..size`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the cluster.
    #[inline]
    pub fn size(&self) -> usize {
        self.state.size
    }

    /// The per-receive deadline bounded operations use (from
    /// `BAT_RECV_TIMEOUT_MS`, or [`Comm::with_timeout`]).
    #[inline]
    pub fn timeout(&self) -> Option<Duration> {
        self.timeout
    }

    /// A handle to the same rank with a different per-receive deadline
    /// (`None` disables deadlines).
    pub fn with_timeout(&self, timeout: Option<Duration>) -> Comm {
        Comm {
            state: self.state.clone(),
            rank: self.rank,
            timeout,
        }
    }

    /// Declare this rank dead: it is abandoning the protocol (crash
    /// simulation, unrecoverable local failure). Pending and future
    /// messages to it are dropped, and every peer blocked on a bounded
    /// receive from it wakes with [`CommError::PeerDead`].
    pub fn mark_dead(&self) {
        self.state.mark_dead(self.rank);
    }

    /// Whether `rank` has declared itself dead.
    pub fn is_dead(&self, rank: usize) -> bool {
        self.state.is_dead(rank)
    }

    #[inline]
    fn check_alive(&self) {
        if self.state.is_poisoned() {
            panic!("cluster poisoned: another rank panicked");
        }
    }

    fn check_user_tag(tag: u32) {
        assert!(
            tag < MAX_USER_TAG,
            "tag {tag} is reserved for internal collectives (must be < {MAX_USER_TAG})"
        );
    }

    /// Nonblocking send with a user tag. Eager: the payload is enqueued at
    /// the destination before this returns, so there is no request to wait
    /// on (matching MPI's eager protocol for small/medium messages).
    pub fn isend(&self, dst: usize, tag: u32, payload: Bytes) {
        Self::check_user_tag(tag);
        self.isend_internal(dst, tag, payload);
    }

    /// Internal send that may use reserved tags (collectives).
    pub(crate) fn isend_internal(&self, dst: usize, tag: u32, payload: Bytes) {
        self.check_alive();
        assert!(dst < self.size(), "destination rank {dst} out of range");
        // Failpoint: a lost message (any configured fault drops it). The
        // receiver's deadline is what turns the loss into an error.
        if bat_faults::fire("comm.send").is_some() {
            return;
        }
        self.state.deliver(
            dst,
            Message {
                src: self.rank,
                tag,
                payload,
            },
        );
    }

    /// Post a nonblocking receive for `(src, tag)`; `src = None` matches any
    /// source. Complete it with [`RecvRequest::wait`] or poll with
    /// [`RecvRequest::test`].
    pub fn irecv(&self, src: Option<usize>, tag: u32) -> RecvRequest {
        Self::check_user_tag(tag);
        RecvRequest::new(self.clone(), src, tag)
    }

    /// Blocking receive: waits until a matching message arrives.
    pub fn recv(&self, src: Option<usize>, tag: u32) -> Message {
        Self::check_user_tag(tag);
        self.recv_internal(src, tag)
    }

    /// Bounded receive with an explicit deadline: waits at most `timeout`
    /// for a matching message, and fails fast with
    /// [`CommError::PeerDead`] if `src` has died with nothing queued.
    pub fn recv_timeout(
        &self,
        src: Option<usize>,
        tag: u32,
        timeout: Duration,
    ) -> Result<Message, CommError> {
        Self::check_user_tag(tag);
        self.recv_deadline_internal(src, tag, Some(Instant::now() + timeout))
    }

    /// Bounded receive using this handle's configured [`Comm::timeout`]
    /// (blocks indefinitely when none is configured — but still fails fast
    /// on a dead peer).
    pub fn recv_bounded(&self, src: Option<usize>, tag: u32) -> Result<Message, CommError> {
        Self::check_user_tag(tag);
        self.recv_bounded_internal(src, tag)
    }

    pub(crate) fn recv_bounded_internal(
        &self,
        src: Option<usize>,
        tag: u32,
    ) -> Result<Message, CommError> {
        self.recv_deadline_internal(src, tag, self.timeout.map(|t| Instant::now() + t))
    }

    pub(crate) fn recv_internal(&self, src: Option<usize>, tag: u32) -> Message {
        match self.recv_deadline_internal(src, tag, None) {
            Ok(msg) => msg,
            // Unbounded receives keep the legacy all-ranks-healthy
            // contract; a dead peer here means the program logic already
            // abandoned the collective protocol.
            Err(e) => panic!("unbounded receive failed: {e}"),
        }
    }

    fn recv_deadline_internal(
        &self,
        src: Option<usize>,
        tag: u32,
        deadline: Option<Instant>,
    ) -> Result<Message, CommError> {
        // Failpoint: injected receive latency (`comm.recv=delay:MS`). Any
        // non-delay action configured here is ignored — losses are
        // injected on the send side.
        let _ = bat_faults::fire("comm.recv");
        let started = Instant::now();
        let mb = &self.state.mailboxes[self.rank];
        let mut q = mb.queue.lock();
        loop {
            if self.state.is_poisoned() {
                panic!("cluster poisoned: another rank panicked");
            }
            if let Some(i) = Mailbox::find(&q, src, tag) {
                return Ok(q.remove(i));
            }
            // Check for a dead source only after draining queued matches:
            // messages sent before death are still deliverable.
            if let Some(s) = src {
                if self.state.is_dead(s) {
                    return Err(CommError::PeerDead {
                        rank: self.rank,
                        peer: s,
                        tag,
                    });
                }
            }
            match deadline {
                None => mb.cv.wait(&mut q),
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return Err(CommError::Timeout {
                            rank: self.rank,
                            src,
                            tag,
                            waited_ms: started.elapsed().as_millis() as u64,
                        });
                    }
                    // Spurious wakeups and wakeups for non-matching
                    // messages loop back around; the deadline re-check
                    // above bounds the total wait.
                    let _ = mb.cv.wait_for(&mut q, d - now);
                }
            }
        }
    }

    /// Try to receive without blocking; returns `None` when no matching
    /// message is queued.
    pub(crate) fn try_recv_internal(&self, src: Option<usize>, tag: u32) -> Option<Message> {
        self.check_alive();
        let mb = &self.state.mailboxes[self.rank];
        let mut q = mb.queue.lock();
        Mailbox::find(&q, src, tag).map(|i| q.remove(i))
    }

    /// Nonblocking probe: report the first queued message matching
    /// `(src, tag)` without consuming it.
    pub fn iprobe(&self, src: Option<usize>, tag: u32) -> Option<ProbeInfo> {
        Self::check_user_tag(tag);
        self.check_alive();
        let mb = &self.state.mailboxes[self.rank];
        let q = mb.queue.lock();
        Mailbox::find(&q, src, tag).map(|i| ProbeInfo {
            src: q[i].src,
            tag: q[i].tag,
            len: q[i].payload.len(),
        })
    }

    /// Begin a nonblocking barrier (the `MPI_Ibarrier` of the read pipeline,
    /// paper §IV-B). Poll the returned handle with [`IBarrier::test`].
    pub fn ibarrier(&self) -> IBarrier {
        IBarrier::new(self.clone())
    }
}
