//! The transport-agnostic communicator contract.
//!
//! [`Comm`] is the one interface every pipeline in the workspace is written
//! against: MPI-style point-to-point operations with `(source, tag)`
//! matching, liveness (deadlines + per-rank death), and the collectives.
//! Transports implement the small set of *raw* primitives (`send_raw`,
//! `recv_deadline_raw`, probes, and handle plumbing); everything user-facing
//! — tag validation, fault injection, retries, the collective algorithms,
//! the nonblocking barrier — is provided by the trait itself, so all three
//! transports (in-process channels, sockets, the simulated network) share
//! identical semantics above the byte-moving layer (DESIGN.md §14).

use crate::error::CommError;
use crate::request::RecvRequest;
use crate::{collectives, IBarrier, MAX_USER_TAG};
use bytes::Bytes;
use std::time::{Duration, Instant};

/// A message delivered to a rank.
#[derive(Debug, Clone)]
pub struct Message {
    /// Sending rank.
    pub src: usize,
    /// User tag.
    pub tag: u32,
    /// Payload bytes.
    pub payload: Bytes,
}

impl Message {
    /// The payload as a zero-copy [`bat_wire::Block`] view. Receivers that
    /// parse columnar frames slice their sections out of this block without
    /// copying the message body.
    pub fn block(&self) -> bat_wire::Block {
        bat_wire::Block::from(self.payload.clone())
    }
}

/// Metadata returned by [`Comm::iprobe`] without consuming the message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeInfo {
    /// Sending rank of the queued message.
    pub src: usize,
    /// Its tag.
    pub tag: u32,
    /// Payload length in bytes.
    pub len: usize,
}

/// The cluster-wide default receive deadline, read once from
/// `BAT_RECV_TIMEOUT_MS` (unset or unparsable = no deadline: the classic
/// block-forever MPI semantics).
pub(crate) fn default_timeout() -> Option<Duration> {
    static DEFAULT: std::sync::OnceLock<Option<Duration>> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("BAT_RECV_TIMEOUT_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .filter(|&ms| ms > 0)
            .map(Duration::from_millis)
    })
}

pub(crate) fn check_user_tag(tag: u32) {
    assert!(
        tag < MAX_USER_TAG,
        "tag {tag} is reserved for internal collectives (must be < {MAX_USER_TAG})"
    );
}

/// A rank's handle to the cluster: knows its rank, the cluster size, and how
/// to exchange messages. Handles are cheap to clone via
/// [`Comm::clone_comm`]; clones refer to the same rank.
///
/// The trait is dyn-compatible: pipelines take `&dyn Comm` and work over
/// any transport ([`crate::ChannelComm`], [`crate::SocketComm`],
/// [`crate::SimComm`]).
pub trait Comm: Send + Sync {
    // ------------------------------------------------------------------
    // Identity and deadlines
    // ------------------------------------------------------------------

    /// This rank's index in `0..size`.
    fn rank(&self) -> usize;

    /// Number of ranks in the cluster.
    fn size(&self) -> usize;

    /// The per-receive deadline bounded operations use (from
    /// `BAT_RECV_TIMEOUT_MS`, or [`Comm::with_timeout`]).
    fn timeout(&self) -> Option<Duration>;

    /// A handle to the same rank with a different per-receive deadline
    /// (`None` disables deadlines).
    fn with_timeout(&self, timeout: Option<Duration>) -> Box<dyn Comm>;

    /// A new handle to the same rank (same transport, same deadline).
    fn clone_comm(&self) -> Box<dyn Comm>;

    /// The transport's name (`channel`, `socket`, `sim`) for diagnostics.
    fn transport(&self) -> &'static str;

    // ------------------------------------------------------------------
    // Liveness
    // ------------------------------------------------------------------

    /// Declare this rank dead: it is abandoning the protocol (crash
    /// simulation, unrecoverable local failure). Pending and future
    /// messages to it are dropped, and every peer blocked on a bounded
    /// receive from it wakes with [`CommError::PeerDead`].
    fn mark_dead(&self);

    /// Whether `rank` has declared itself dead (or, on the socket
    /// transport, its connection has failed).
    fn is_dead(&self, rank: usize) -> bool;

    /// Poison the whole cluster after a local panic (in-process transports
    /// wake every blocked rank; the socket transport falls back to
    /// [`Comm::mark_dead`] so remote peers fail fast instead).
    #[doc(hidden)]
    fn poison(&self) {
        self.mark_dead();
    }

    /// Panic if the cluster was poisoned by another rank's panic. A no-op
    /// on transports without shared poison state.
    #[doc(hidden)]
    fn check_alive(&self) {}

    /// Tear the transport down (close connections, stop reader threads).
    /// Peers observe the departure as this rank dying once they wait on
    /// it. A no-op on in-process transports.
    fn shutdown(&self) {}

    // ------------------------------------------------------------------
    // Raw transport primitives (reserved tags allowed)
    // ------------------------------------------------------------------

    /// Move bytes to `dst`'s mailbox. No tag validation, no fault
    /// injection — that happens in the provided wrappers.
    #[doc(hidden)]
    fn send_raw(&self, dst: usize, tag: u32, payload: Bytes);

    /// Blocking matched receive with an optional deadline.
    #[doc(hidden)]
    fn recv_deadline_raw(
        &self,
        src: Option<usize>,
        tag: u32,
        deadline: Option<Instant>,
    ) -> Result<Message, CommError>;

    /// Nonblocking matched receive.
    #[doc(hidden)]
    fn try_recv_raw(&self, src: Option<usize>, tag: u32) -> Option<Message>;

    /// Nonblocking probe.
    #[doc(hidden)]
    fn iprobe_raw(&self, src: Option<usize>, tag: u32) -> Option<ProbeInfo>;

    /// Allocate the next ibarrier generation number for this rank.
    /// Barriers are collective, so all ranks observe matching sequences.
    #[doc(hidden)]
    fn next_ibarrier_generation(&self) -> u64;

    // ------------------------------------------------------------------
    // Provided: point-to-point API
    // ------------------------------------------------------------------

    /// Nonblocking send with a user tag. Eager: the payload is enqueued at
    /// the destination before this returns, so there is no request to wait
    /// on (matching MPI's eager protocol for small/medium messages).
    fn isend(&self, dst: usize, tag: u32, payload: Bytes) {
        check_user_tag(tag);
        self.isend_internal(dst, tag, payload);
    }

    /// Internal send that may use reserved tags (collectives).
    #[doc(hidden)]
    fn isend_internal(&self, dst: usize, tag: u32, payload: Bytes) {
        self.check_alive();
        assert!(dst < self.size(), "destination rank {dst} out of range");
        // Failpoint: a lost message (any configured fault drops it). The
        // receiver's deadline is what turns the loss into an error.
        if bat_faults::fire("comm.send").is_some() {
            return;
        }
        self.send_raw(dst, tag, payload);
    }

    /// Send with bounded retry on transient transport failures.
    ///
    /// The `comm.send.retry` failpoint models a transient transport error:
    /// each triggered `error` burns one attempt (exponential backoff,
    /// counted in `comm.retries`); `kill` dies in place. Exhausting the
    /// attempts marks this rank dead — the failure cascades to peers like
    /// any other liveness fault — and returns [`CommError::SendFailed`].
    fn send_with_retry(&self, dst: usize, tag: u32, payload: Bytes) -> Result<(), CommError> {
        const ATTEMPTS: u32 = 4;
        check_user_tag(tag);
        let mut backoff = Duration::from_millis(1);
        for attempt in 0..ATTEMPTS {
            match bat_faults::fire("comm.send.retry") {
                None => {
                    self.isend_internal(dst, tag, payload);
                    return Ok(());
                }
                Some(bat_faults::Fault::Kill) => {
                    self.mark_dead();
                    return Err(CommError::SendFailed {
                        rank: self.rank(),
                        dst,
                        tag,
                        attempts: attempt + 1,
                    });
                }
                Some(_) if attempt + 1 < ATTEMPTS => {
                    bat_obs::counter_add("comm.retries", 1);
                    std::thread::sleep(backoff);
                    backoff *= 2;
                }
                Some(_) => break,
            }
        }
        self.mark_dead();
        Err(CommError::SendFailed {
            rank: self.rank(),
            dst,
            tag,
            attempts: ATTEMPTS,
        })
    }

    /// Post a nonblocking receive for `(src, tag)`; `src = None` matches any
    /// source. Complete it with [`RecvRequest::wait`] or poll with
    /// [`RecvRequest::test`].
    fn irecv(&self, src: Option<usize>, tag: u32) -> RecvRequest {
        check_user_tag(tag);
        RecvRequest::new(self.clone_comm(), src, tag)
    }

    /// Blocking receive: waits until a matching message arrives.
    fn recv(&self, src: Option<usize>, tag: u32) -> Message {
        check_user_tag(tag);
        self.recv_internal(src, tag)
    }

    /// Bounded receive with an explicit deadline: waits at most `timeout`
    /// for a matching message, and fails fast with
    /// [`CommError::PeerDead`] if `src` has died with nothing queued.
    fn recv_timeout(
        &self,
        src: Option<usize>,
        tag: u32,
        timeout: Duration,
    ) -> Result<Message, CommError> {
        check_user_tag(tag);
        self.recv_deadline_internal(src, tag, Some(Instant::now() + timeout))
    }

    /// Bounded receive using this handle's configured [`Comm::timeout`]
    /// (blocks indefinitely when none is configured — but still fails fast
    /// on a dead peer).
    fn recv_bounded(&self, src: Option<usize>, tag: u32) -> Result<Message, CommError> {
        check_user_tag(tag);
        self.recv_bounded_internal(src, tag)
    }

    #[doc(hidden)]
    fn recv_bounded_internal(&self, src: Option<usize>, tag: u32) -> Result<Message, CommError> {
        self.recv_deadline_internal(src, tag, self.timeout().map(|t| Instant::now() + t))
    }

    #[doc(hidden)]
    fn recv_internal(&self, src: Option<usize>, tag: u32) -> Message {
        match self.recv_deadline_internal(src, tag, None) {
            Ok(msg) => msg,
            // Unbounded receives keep the legacy all-ranks-healthy
            // contract; a dead peer here means the program logic already
            // abandoned the collective protocol.
            Err(e) => panic!("unbounded receive failed: {e}"),
        }
    }

    #[doc(hidden)]
    fn recv_deadline_internal(
        &self,
        src: Option<usize>,
        tag: u32,
        deadline: Option<Instant>,
    ) -> Result<Message, CommError> {
        // Failpoint: injected receive latency (`comm.recv=delay:MS`). Any
        // non-delay action configured here is ignored — losses are
        // injected on the send side.
        let _ = bat_faults::fire("comm.recv");
        self.recv_deadline_raw(src, tag, deadline)
    }

    /// Try to receive without blocking; returns `None` when no matching
    /// message is queued.
    #[doc(hidden)]
    fn try_recv_internal(&self, src: Option<usize>, tag: u32) -> Option<Message> {
        self.check_alive();
        self.try_recv_raw(src, tag)
    }

    /// Nonblocking probe: report the first queued message matching
    /// `(src, tag)` without consuming it.
    fn iprobe(&self, src: Option<usize>, tag: u32) -> Option<ProbeInfo> {
        check_user_tag(tag);
        self.check_alive();
        self.iprobe_raw(src, tag)
    }

    /// Begin a nonblocking barrier (the `MPI_Ibarrier` of the read pipeline,
    /// paper §IV-B). Poll the returned handle with [`IBarrier::test`].
    fn ibarrier(&self) -> IBarrier {
        IBarrier::begin(self.clone_comm())
    }

    // ------------------------------------------------------------------
    // Provided: collectives (algorithms in `collectives.rs`)
    // ------------------------------------------------------------------

    /// Blocking dissemination barrier.
    fn barrier(&self) {
        self.with_timeout(None)
            .try_barrier()
            .unwrap_or_else(|e| panic!("unbounded barrier failed: {e}"));
    }

    /// Bounded dissemination barrier: errs if any round's partner message
    /// does not arrive within the configured timeout.
    fn try_barrier(&self) -> Result<(), CommError> {
        collectives::try_barrier(self)
    }

    /// Gather one byte payload from every rank at `root` (rank order).
    /// Returns `Some(all_payloads)` at the root, `None` elsewhere.
    fn gather(&self, root: usize, data: Bytes) -> Option<Vec<Bytes>> {
        self.with_timeout(None)
            .try_gather(root, data)
            .unwrap_or_else(|e| panic!("unbounded gather failed: {e}"))
    }

    /// Bounded [`Comm::gather`].
    fn try_gather(&self, root: usize, data: Bytes) -> Result<Option<Vec<Bytes>>, CommError> {
        collectives::try_gather(self, root, data)
    }

    /// Scatter one byte payload to every rank from `root`. The root passes
    /// `Some(parts)` with exactly `size` entries; other ranks pass `None`.
    /// Every rank returns its own part.
    fn scatter(&self, root: usize, parts: Option<Vec<Bytes>>) -> Bytes {
        self.with_timeout(None)
            .try_scatter(root, parts)
            .unwrap_or_else(|e| panic!("unbounded scatter failed: {e}"))
    }

    /// Bounded [`Comm::scatter`].
    fn try_scatter(&self, root: usize, parts: Option<Vec<Bytes>>) -> Result<Bytes, CommError> {
        collectives::try_scatter(self, root, parts)
    }

    /// Broadcast from `root` via a binomial tree. The root passes
    /// `Some(data)`; every rank returns the payload.
    fn bcast(&self, root: usize, data: Option<Bytes>) -> Bytes {
        self.with_timeout(None)
            .try_bcast(root, data)
            .unwrap_or_else(|e| panic!("unbounded bcast failed: {e}"))
    }

    /// Bounded [`Comm::bcast`].
    fn try_bcast(&self, root: usize, data: Option<Bytes>) -> Result<Bytes, CommError> {
        collectives::try_bcast(self, root, data)
    }

    /// All-reduce a `u64` with an associative, commutative operator.
    fn allreduce_u64(&self, value: u64, op: &dyn Fn(u64, u64) -> u64) -> u64 {
        self.with_timeout(None)
            .try_allreduce_u64(value, op)
            .unwrap_or_else(|e| panic!("unbounded allreduce failed: {e}"))
    }

    /// Bounded [`Comm::allreduce_u64`].
    fn try_allreduce_u64(
        &self,
        value: u64,
        op: &dyn Fn(u64, u64) -> u64,
    ) -> Result<u64, CommError> {
        collectives::try_allreduce_u64(self, value, op)
    }

    /// Gather a `u64` from every rank at `root`.
    fn gather_u64(&self, root: usize, value: u64) -> Option<Vec<u64>> {
        self.with_timeout(None)
            .try_gather_u64(root, value)
            .unwrap_or_else(|e| panic!("unbounded gather failed: {e}"))
    }

    /// Bounded [`Comm::gather_u64`].
    fn try_gather_u64(&self, root: usize, value: u64) -> Result<Option<Vec<u64>>, CommError> {
        collectives::try_gather_u64(self, root, value)
    }

    /// Gather everyone's payload on every rank (gather at 0 + broadcast).
    fn allgather(&self, data: Bytes) -> Vec<Bytes> {
        collectives::allgather(self, data)
    }
}

/// Forwarding impl so a boxed communicator (what [`crate::Cluster::run`]
/// hands each rank closure) can be used anywhere a `&dyn Comm` is expected.
impl Comm for Box<dyn Comm> {
    fn rank(&self) -> usize {
        (**self).rank()
    }
    fn size(&self) -> usize {
        (**self).size()
    }
    fn timeout(&self) -> Option<Duration> {
        (**self).timeout()
    }
    fn with_timeout(&self, timeout: Option<Duration>) -> Box<dyn Comm> {
        (**self).with_timeout(timeout)
    }
    fn clone_comm(&self) -> Box<dyn Comm> {
        (**self).clone_comm()
    }
    fn transport(&self) -> &'static str {
        (**self).transport()
    }
    fn mark_dead(&self) {
        (**self).mark_dead()
    }
    fn is_dead(&self, rank: usize) -> bool {
        (**self).is_dead(rank)
    }
    fn poison(&self) {
        (**self).poison()
    }
    fn check_alive(&self) {
        (**self).check_alive()
    }
    fn shutdown(&self) {
        (**self).shutdown()
    }
    fn send_raw(&self, dst: usize, tag: u32, payload: Bytes) {
        (**self).send_raw(dst, tag, payload)
    }
    fn recv_deadline_raw(
        &self,
        src: Option<usize>,
        tag: u32,
        deadline: Option<Instant>,
    ) -> Result<Message, CommError> {
        (**self).recv_deadline_raw(src, tag, deadline)
    }
    fn try_recv_raw(&self, src: Option<usize>, tag: u32) -> Option<Message> {
        (**self).try_recv_raw(src, tag)
    }
    fn iprobe_raw(&self, src: Option<usize>, tag: u32) -> Option<ProbeInfo> {
        (**self).iprobe_raw(src, tag)
    }
    fn next_ibarrier_generation(&self) -> u64 {
        (**self).next_ibarrier_generation()
    }
}
