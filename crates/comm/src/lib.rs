//! A virtual-cluster message-passing runtime.
//!
//! The paper's I/O pipelines are expressed against MPI: nonblocking
//! point-to-point sends/receives with tag matching, gather/scatter
//! collectives rooted at rank 0, and — for the parallel read path — a
//! *nonblocking barrier* (`MPI_Ibarrier`) that lets read aggregators keep
//! serving queries until every rank has its data (paper §IV-B).
//!
//! Production MPI is not available in this environment (see DESIGN.md), so
//! this crate implements the same communication model in-process: every rank
//! is an OS thread, and messages move through per-rank mailboxes with
//! MPI-style `(source, tag)` matching and non-overtaking delivery order. The
//! pipelines in `libbat` are written purely against [`Comm`], so they would
//! port to a real MPI binding by re-implementing this one interface.
//!
//! # Model
//!
//! - [`Cluster::run`] spawns `n` rank threads and hands each a [`Comm`].
//! - [`Comm::isend`] is *eager*: the payload (a cheap-to-clone [`bytes::Bytes`])
//!   is enqueued at the destination immediately; the returned request is
//!   already complete. This matches MPI eager-protocol semantics for the
//!   message sizes the pipelines exchange and keeps the runtime deadlock-free
//!   for any send ordering.
//! - [`Comm::recv`] / [`Comm::irecv`] match by exact tag and optional source
//!   (`None` = `MPI_ANY_SOURCE`), preserving per-(source, tag) FIFO order.
//! - Collectives are built *on top of* the p2p layer using reserved internal
//!   tags, like a real MPI implementation, and never interfere with pending
//!   user-tag messages.
//! - If any rank panics, the cluster is poisoned: all blocked ranks wake and
//!   panic instead of deadlocking, and [`Cluster::run`] propagates the
//!   original panic.
//!
//! # Example
//!
//! ```
//! use bat_comm::Cluster;
//! use bytes::Bytes;
//!
//! let sums = Cluster::run(4, |comm| {
//!     // Everyone sends their rank to rank 0.
//!     if comm.rank() == 0 {
//!         let mut sum = 0u64;
//!         for _ in 1..comm.size() {
//!             let msg = comm.recv(None, 7);
//!             sum += u64::from_le_bytes(msg.payload[..8].try_into().unwrap());
//!         }
//!         sum
//!     } else {
//!         comm.isend(0, 7, Bytes::copy_from_slice(&(comm.rank() as u64).to_le_bytes()));
//!         0
//!     }
//! });
//! assert_eq!(sums[0], 1 + 2 + 3);
//! ```

mod channel;
mod cluster;
mod collectives;
mod comm;
mod error;
mod ibarrier;
mod request;
mod sim;
mod socket;
mod state;

pub use channel::ChannelComm;
pub use cluster::{Cluster, ClusterConfig, Topology, TransportKind};
pub use comm::{Comm, Message, ProbeInfo};
pub use error::CommError;
pub use ibarrier::IBarrier;
pub use request::{wait_all, RecvRequest};
pub use sim::{SimComm, SimNetStats, SimParams};
pub use socket::SocketComm;

/// Highest tag value available to users. Tags at or above this are reserved
/// for the collective implementations.
pub const MAX_USER_TAG: u32 = 1 << 30;

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn payload(v: u64) -> Bytes {
        Bytes::copy_from_slice(&v.to_le_bytes())
    }

    fn value(m: &Message) -> u64 {
        u64::from_le_bytes(m.payload[..8].try_into().unwrap())
    }

    #[test]
    fn single_rank_cluster() {
        let out = Cluster::run(1, |comm| {
            assert_eq!(comm.rank(), 0);
            assert_eq!(comm.size(), 1);
            comm.barrier();
            42
        });
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn ring_pass() {
        let n = 8;
        let out = Cluster::run(n, |comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.isend(next, 1, payload(comm.rank() as u64));
            let m = comm.recv(Some(prev), 1);
            value(&m)
        });
        for (r, v) in out.iter().enumerate() {
            assert_eq!(*v as usize, (r + n - 1) % n);
        }
    }

    #[test]
    fn tag_matching_is_exact() {
        let out = Cluster::run(2, |comm| {
            if comm.rank() == 0 {
                // Send tag 2 first, then tag 1; receiver asks for tag 1 first.
                comm.isend(1, 2, payload(200));
                comm.isend(1, 1, payload(100));
                0
            } else {
                let a = comm.recv(Some(0), 1);
                let b = comm.recv(Some(0), 2);
                assert_eq!(value(&a), 100);
                assert_eq!(value(&b), 200);
                1
            }
        });
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn per_source_fifo_order() {
        let out = Cluster::run(2, |comm| {
            if comm.rank() == 0 {
                for i in 0..100u64 {
                    comm.isend(1, 3, payload(i));
                }
                0
            } else {
                for i in 0..100u64 {
                    let m = comm.recv(Some(0), 3);
                    assert_eq!(value(&m), i, "messages must not overtake");
                }
                1
            }
        });
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn any_source_receives_from_all() {
        Cluster::run(5, |comm| {
            if comm.rank() == 0 {
                let mut seen = vec![false; comm.size()];
                for _ in 1..comm.size() {
                    let m = comm.recv(None, 9);
                    seen[m.src] = true;
                    assert_eq!(value(&m), m.src as u64);
                }
                assert!(seen[1..].iter().all(|&s| s));
            } else {
                comm.isend(0, 9, payload(comm.rank() as u64));
            }
        });
    }

    #[test]
    fn irecv_test_and_wait() {
        Cluster::run(2, |comm| {
            if comm.rank() == 0 {
                comm.barrier();
                comm.isend(1, 5, payload(77));
            } else {
                let mut req = comm.irecv(Some(0), 5);
                // Nothing sent yet: test must not block and must say not-ready.
                assert!(req.test().is_none());
                comm.barrier();
                let m = req.wait();
                assert_eq!(value(&m), 77);
            }
        });
    }

    #[test]
    fn iprobe_sees_pending_without_consuming() {
        Cluster::run(2, |comm| {
            if comm.rank() == 0 {
                comm.isend(1, 4, payload(9));
                comm.barrier();
            } else {
                comm.barrier();
                let info = comm.iprobe(None, 4).expect("message should be queued");
                assert_eq!(info.src, 0);
                assert_eq!(info.len, 8);
                // Probing does not consume.
                let m = comm.recv(Some(0), 4);
                assert_eq!(value(&m), 9);
                assert!(comm.iprobe(None, 4).is_none());
            }
        });
    }

    #[test]
    fn self_send() {
        Cluster::run(3, |comm| {
            comm.isend(comm.rank(), 6, payload(comm.rank() as u64));
            let m = comm.recv(Some(comm.rank()), 6);
            assert_eq!(value(&m), comm.rank() as u64);
        });
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let before = AtomicUsize::new(0);
        let n = 16;
        Cluster::run(n, |comm| {
            before.fetch_add(1, Ordering::SeqCst);
            comm.barrier();
            // After the barrier, every rank must have incremented.
            assert_eq!(before.load(Ordering::SeqCst), n);
        });
    }

    #[test]
    fn gather_at_root() {
        Cluster::run(6, |comm| {
            let data = payload(comm.rank() as u64 * 10);
            let gathered = comm.gather(0, data);
            if comm.rank() == 0 {
                let g = gathered.expect("root gets data");
                assert_eq!(g.len(), comm.size());
                for (r, b) in g.iter().enumerate() {
                    assert_eq!(
                        u64::from_le_bytes(b[..8].try_into().unwrap()),
                        r as u64 * 10
                    );
                }
            } else {
                assert!(gathered.is_none());
            }
        });
    }

    #[test]
    fn scatter_from_root() {
        Cluster::run(5, |comm| {
            let parts = if comm.rank() == 0 {
                Some((0..comm.size()).map(|r| payload(r as u64 + 1)).collect())
            } else {
                None
            };
            let mine = comm.scatter(0, parts);
            assert_eq!(
                u64::from_le_bytes(mine[..8].try_into().unwrap()),
                comm.rank() as u64 + 1
            );
        });
    }

    #[test]
    fn bcast_from_nonzero_root() {
        Cluster::run(7, |comm| {
            let data = if comm.rank() == 3 {
                Some(payload(555))
            } else {
                None
            };
            let got = comm.bcast(3, data);
            assert_eq!(u64::from_le_bytes(got[..8].try_into().unwrap()), 555);
        });
    }

    #[test]
    fn allreduce_sum_and_max() {
        Cluster::run(9, |comm| {
            let sum = comm.allreduce_u64(comm.rank() as u64, &|a, b| a + b);
            assert_eq!(sum, (0..9).sum::<u64>());
            let max = comm.allreduce_u64(comm.rank() as u64, &u64::max);
            assert_eq!(max, 8);
        });
    }

    #[test]
    fn allgather_bytes() {
        Cluster::run(4, |comm| {
            let all = comm.allgather(payload(comm.rank() as u64));
            assert_eq!(all.len(), 4);
            for (r, b) in all.iter().enumerate() {
                assert_eq!(u64::from_le_bytes(b[..8].try_into().unwrap()), r as u64);
            }
        });
    }

    #[test]
    fn ibarrier_completes_only_after_all_enter() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let entered = AtomicUsize::new(0);
        let n = 8;
        Cluster::run(n, |comm| {
            entered.fetch_add(1, Ordering::SeqCst);
            let mut ib = comm.ibarrier();
            let mut spins = 0u64;
            while !ib.test() {
                spins += 1;
                if spins > 50_000_000 {
                    panic!("ibarrier did not complete");
                }
                std::thread::yield_now();
            }
            assert_eq!(entered.load(Ordering::SeqCst), n);
        });
    }

    #[test]
    fn ibarrier_overlaps_with_p2p_traffic() {
        // The paper's read loop keeps serving queries while the ibarrier is
        // outstanding; p2p traffic with user tags must flow unimpeded.
        Cluster::run(4, |comm| {
            let mut ib = comm.ibarrier();
            // Everyone sends everyone a message *after* entering the barrier.
            for dst in 0..comm.size() {
                if dst != comm.rank() {
                    comm.isend(dst, 11, payload(comm.rank() as u64));
                }
            }
            let mut got = 0;
            let mut done = false;
            while !done || got < comm.size() - 1 {
                if !done {
                    done = ib.test();
                }
                if got < comm.size() - 1 && comm.iprobe(None, 11).is_some() {
                    let _ = comm.recv(None, 11);
                    got += 1;
                }
                std::thread::yield_now();
            }
        });
    }

    #[test]
    #[should_panic]
    fn user_tags_above_limit_rejected() {
        Cluster::run(2, |comm| {
            comm.isend((comm.rank() + 1) % 2, MAX_USER_TAG, Bytes::new());
        });
    }

    #[test]
    fn panicked_rank_poisons_cluster() {
        let result = std::panic::catch_unwind(|| {
            Cluster::run(3, |comm| {
                if comm.rank() == 1 {
                    panic!("rank 1 exploded");
                }
                // Other ranks block forever waiting for a message that will
                // never come; poisoning must wake them.
                let _ = comm.recv(Some(1), 99);
            });
        });
        assert!(result.is_err());
    }

    #[test]
    fn large_payload_transfer() {
        Cluster::run(2, |comm| {
            if comm.rank() == 0 {
                let big = vec![0xabu8; 4 << 20];
                comm.isend(1, 8, Bytes::from(big));
            } else {
                let m = comm.recv(Some(0), 8);
                assert_eq!(m.payload.len(), 4 << 20);
                assert!(m.payload.iter().all(|&b| b == 0xab));
            }
        });
    }

    #[test]
    fn many_ranks_stress() {
        // More ranks than cores: threads must park politely, not spin.
        let n = 64;
        let out = Cluster::run(n, |comm| {
            let sum = comm.allreduce_u64(1, &|a, b| a + b);
            comm.barrier();
            sum
        });
        assert!(out.iter().all(|&s| s == n as u64));
    }
}

#[cfg(test)]
mod randomized_tests {
    use super::*;
    use bytes::Bytes;

    /// Randomized traffic soak: every rank sends a random number of
    /// messages (random sizes) to random destinations, then all ranks
    /// exchange expected counts and drain their inboxes. Every payload
    /// must arrive intact, whatever the interleaving.
    #[test]
    fn random_traffic_all_delivered() {
        for seed in [1u64, 7, 42, 1234] {
            let n = 10;
            let results = Cluster::run(n, move |comm| {
                use bat_wire::{Decoder, Encoder};
                let rng = bat_geom_rng(seed + comm.rank() as u64);
                // Decide sends: up to 20 messages to random peers.
                let mut sent_to = vec![0u64; comm.size()];
                let n_msgs = (rng % 21) as usize;
                let mut rng_state = rng;
                for i in 0..n_msgs {
                    rng_state = next(rng_state);
                    let dst = (rng_state % comm.size() as u64) as usize;
                    rng_state = next(rng_state);
                    let len = (rng_state % 4096) as usize;
                    let mut payload = vec![0u8; len];
                    for (k, b) in payload.iter_mut().enumerate() {
                        *b = (comm.rank() + i + k) as u8;
                    }
                    let mut enc = Encoder::new();
                    enc.put_u64(comm.rank() as u64);
                    enc.put_u64(i as u64);
                    enc.put_bytes(&payload);
                    comm.isend(dst, 42, Bytes::from(enc.finish()));
                    sent_to[dst] += 1;
                }
                // Everyone learns how many messages to expect from whom.
                let mut enc = Encoder::new();
                enc.put_u64_slice(&sent_to);
                let all = comm.allgather(Bytes::from(enc.finish()));
                let mut expected = 0u64;
                for (src, b) in all.iter().enumerate() {
                    let mut dec = Decoder::new(b);
                    let v = dec.get_u64_vec("sent counts").expect("valid");
                    expected += v[comm.rank()];
                    let _ = src;
                }
                // Drain and validate.
                let mut got = 0u64;
                while got < expected {
                    let m = comm.recv(None, 42);
                    let mut dec = Decoder::new(&m.payload);
                    let src = dec.get_u64("src").expect("valid") as usize;
                    let i = dec.get_u64("i").expect("valid") as usize;
                    let payload = dec.get_bytes("payload").expect("valid");
                    assert_eq!(src, m.src);
                    for (k, &b) in payload.iter().enumerate() {
                        assert_eq!(b, (src + i + k) as u8, "payload corrupted");
                    }
                    got += 1;
                }
                got
            });
            assert_eq!(results.len(), n);
        }
    }

    /// A tiny inline splitmix step so this test has no dev-dependency on
    /// bat-geom (comm sits below it in the crate graph).
    fn next(state: u64) -> u64 {
        let mut z = state.wrapping_add(0x9e3779b97f4a7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn bat_geom_rng(seed: u64) -> u64 {
        next(seed)
    }

    /// Back-to-back collectives of different kinds must not cross-talk.
    #[test]
    fn interleaved_collectives_soak() {
        Cluster::run(9, |comm| {
            for round in 0..25u64 {
                let sum = comm.allreduce_u64(comm.rank() as u64 + round, &|a, b| a + b);
                let expect: u64 = (0..9).map(|r| r + round).sum();
                assert_eq!(sum, expect, "round {round}");
                let root = (round % 9) as usize;
                let data = if comm.rank() == root {
                    Some(Bytes::copy_from_slice(&round.to_le_bytes()))
                } else {
                    None
                };
                let out = comm.bcast(root, data);
                assert_eq!(u64::from_le_bytes(out[..8].try_into().unwrap()), round);
                comm.barrier();
            }
        });
    }
}

#[cfg(test)]
mod liveness_tests {
    use super::*;
    use bytes::Bytes;
    use std::time::{Duration, Instant};

    #[test]
    fn recv_timeout_expires_when_nothing_arrives() {
        Cluster::run(2, |comm| {
            if comm.rank() == 0 {
                let start = Instant::now();
                let err = comm
                    .recv_timeout(Some(1), 5, Duration::from_millis(30))
                    .expect_err("nothing was sent");
                assert!(matches!(err, CommError::Timeout { .. }), "got {err}");
                assert!(start.elapsed() >= Duration::from_millis(30));
            }
            // Rank 1 sends nothing; both ranks still finish (no barrier —
            // rank 0's wait is the only synchronization under test).
        });
    }

    #[test]
    fn recv_timeout_delivers_a_message_that_arrives_in_time() {
        let out = Cluster::run(2, |comm| {
            if comm.rank() == 0 {
                let msg = comm
                    .recv_timeout(Some(1), 5, Duration::from_secs(5))
                    .expect("message arrives well before the deadline");
                msg.payload[0]
            } else {
                comm.isend(0, 5, Bytes::from(vec![0xAB]));
                0
            }
        });
        assert_eq!(out[0], 0xAB);
    }

    #[test]
    fn dead_peer_fails_receivers_fast_but_queued_messages_still_drain() {
        Cluster::run(2, |comm| {
            if comm.rank() == 1 {
                // Send one message, then die.
                comm.isend(0, 7, Bytes::from(vec![1]));
                comm.mark_dead();
            } else {
                // The pre-death message is delivered...
                let msg = comm
                    .recv_timeout(Some(1), 7, Duration::from_secs(5))
                    .expect("pre-death message is still queued");
                assert_eq!(msg.payload[0], 1);
                // ...and the next receive fails fast with PeerDead, long
                // before the generous deadline.
                let start = Instant::now();
                let err = comm
                    .recv_timeout(Some(1), 7, Duration::from_secs(60))
                    .expect_err("peer is dead");
                assert!(
                    matches!(err, CommError::PeerDead { peer: 1, .. }),
                    "got {err}"
                );
                assert!(start.elapsed() < Duration::from_secs(10));
            }
        });
    }

    #[test]
    fn sends_to_a_dead_rank_are_dropped_not_queued() {
        Cluster::run(2, |comm| {
            if comm.rank() == 0 {
                comm.mark_dead();
                comm.isend(1, 3, Bytes::from(vec![9])); // tells rank 1 to proceed
            } else {
                let _ = comm.recv_timeout(Some(0), 3, Duration::from_secs(5));
                // Messages *to* rank 0 vanish; nothing to assert beyond
                // not panicking (delivery would push into a dead mailbox).
                comm.isend(0, 3, Bytes::from(vec![4]));
            }
        });
    }

    #[test]
    fn try_collectives_err_on_all_survivors_when_a_rank_dies() {
        let timeout = Duration::from_millis(100);
        let results = Cluster::run(4, move |comm| {
            let comm = comm.with_timeout(Some(timeout));
            if comm.rank() == 2 {
                comm.mark_dead();
                return Err(());
            }
            // Every survivor errs within a bounded number of deadlines —
            // no hang, no panic. Allreduce blocks every rank (gather at 0,
            // then broadcast), so no survivor can slip through.
            comm.try_allreduce_u64(1, &|a, b| a + b)
                .map(|_| ())
                .map_err(|_| ())
        });
        assert!(results[2].is_err());
        for r in [0, 1, 3] {
            assert!(results[r].is_err(), "rank {r} should report the dead peer");
        }
    }

    #[test]
    fn try_barrier_completes_when_everyone_is_healthy() {
        Cluster::run(5, |comm| {
            let comm = comm.with_timeout(Some(Duration::from_secs(5)));
            for _ in 0..10 {
                comm.try_barrier().expect("healthy barrier");
            }
        });
    }
}

#[cfg(test)]
mod waitall_tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn wait_all_returns_in_request_order() {
        Cluster::run(4, |comm| {
            if comm.rank() == 0 {
                // Post receives for ranks 1..4 on distinct tags, in order.
                let reqs: Vec<RecvRequest> = (1..4)
                    .map(|src| comm.irecv(Some(src), src as u32))
                    .collect();
                let msgs = wait_all(reqs);
                for (i, m) in msgs.iter().enumerate() {
                    assert_eq!(m.src, i + 1);
                    assert_eq!(m.payload[0] as usize, i + 1);
                }
            } else {
                comm.isend(0, comm.rank() as u32, Bytes::from(vec![comm.rank() as u8]));
            }
        });
    }
}
