//! The socket transport: ranks are processes (or threads) exchanging
//! length-prefixed frames over TCP or Unix-domain stream sockets.
//!
//! Topology is a full mesh by default, built deadlock-free by ordering:
//! rank `r` *connects* to every lower rank and *accepts* from every
//! higher rank (listen backlogs absorb arrival-order skew). Each
//! connection starts with a HELLO handshake exchanging a magic number,
//! protocol version, rank, and cluster size, so a misconfigured peer
//! fails fast instead of corrupting a mailbox. Connect *and* handshake
//! are retried with bounded backoff inside `BAT_CONNECT_TIMEOUT_MS`, so
//! a worker that dials before a peer is listening (or gets reset by a
//! restarting peer's backlog) heals instead of failing the mesh build.
//!
//! A `topo=star` cluster wires ranks `1..n` to rank 0 only. The hub
//! keeps its listener for the cluster's lifetime and *re-admits* a
//! restarted rank: a later HELLO from a known rank replaces its write
//! half, purges stale mailbox frames from the dead incarnation, spawns a
//! fresh reader (epoch-guarded so the old reader's EOF can't re-kill
//! it), and clears the dead flag. This is the membership layer under the
//! shard supervisor's crash→respawn→rejoin cycle.
//!
//! Wire format (all integers little-endian, matching `bat_wire`):
//!
//! ```text
//! frame   := len:u32 body
//! body    := MSG   (kind=1) src:u32 tag:u32 payload…
//!          | HELLO (kind=2) rank:u32 size:u32 magic:u32 version:u16
//!          | DEAD  (kind=3) rank:u32
//! ```
//!
//! A MSG payload is the same byte blob the channel transport delivers —
//! receivers view it as a zero-copy [`bat_wire::Block`] via
//! [`Message::block`]. One reader thread per peer drains its connection
//! into the rank's single inbox mailbox, preserving the per-(source, tag)
//! FIFO guarantee (TCP is in-order per connection).
//!
//! Failure semantics mirror the channel transport: `mark_dead` broadcasts
//! a best-effort DEAD frame (the rank can keep *sending* afterwards — a
//! dying rank may still flush); an EOF, connection reset, or write error
//! on a peer's connection marks that peer dead locally, waking any
//! blocked receive into [`CommError::PeerDead`]. Sends to a dead or
//! disconnected peer are silently dropped, exactly like channel delivery
//! to a dead mailbox — the receiver's deadline converts loss into error.

use crate::cluster::ClusterConfig;
use crate::comm::{default_timeout, Comm, Message, ProbeInfo};
use crate::error::CommError;
use crate::state::{Mailbox, PoisonCell};
use bytes::Bytes;
use parking_lot::Mutex;
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const FRAME_MSG: u8 = 1;
const FRAME_HELLO: u8 = 2;
const FRAME_DEAD: u8 = 3;
/// Clean departure: the peer finished its protocol and closed the
/// connection. Distinguishes orderly exit (peer goes silent, receivers
/// run out their deadlines — channel semantics for a returned rank) from
/// a crash (EOF with no BYE → peer marked dead, receivers fail fast).
const FRAME_BYE: u8 = 4;
/// "BAT!" — rejects accidental connections from anything else.
const HELLO_MAGIC: u32 = 0x4241_5421;
const WIRE_VERSION: u16 = 1;
/// Frames above this are a protocol violation (mirrors `bat_stream`'s
/// MAX_FRAME guard; shuffle payloads are far smaller).
const MAX_FRAME: u32 = 1 << 30;

/// How long connection establishment (bind retry + handshake) may take,
/// from `BAT_CONNECT_TIMEOUT_MS` (default 10 s).
pub(crate) fn connect_timeout() -> Duration {
    std::env::var("BAT_CONNECT_TIMEOUT_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis)
        .unwrap_or(Duration::from_secs(10))
}

/// A parsed peer endpoint: `host:port` for TCP, an absolute path or
/// `unix:<path>` for Unix-domain sockets.
#[derive(Debug, Clone)]
pub(crate) enum Endpoint {
    Tcp(String),
    Unix(PathBuf),
}

impl Endpoint {
    pub(crate) fn parse(s: &str) -> io::Result<Endpoint> {
        if let Some(path) = s.strip_prefix("unix:") {
            Ok(Endpoint::Unix(PathBuf::from(path)))
        } else if s.starts_with('/') {
            Ok(Endpoint::Unix(PathBuf::from(s)))
        } else if s.contains(':') {
            Ok(Endpoint::Tcp(s.to_string()))
        } else {
            Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("endpoint `{s}` is neither host:port nor a unix path"),
            ))
        }
    }
}

/// One established stream connection, TCP or Unix.
pub(crate) enum Conn {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Conn {
    fn connect(ep: &Endpoint) -> io::Result<Conn> {
        match ep {
            Endpoint::Tcp(addr) => {
                let s = TcpStream::connect(addr)?;
                s.set_nodelay(true).ok();
                Ok(Conn::Tcp(s))
            }
            Endpoint::Unix(path) => Ok(Conn::Unix(UnixStream::connect(path)?)),
        }
    }

    /// Connect *and handshake* with retry until `deadline`. Process
    /// startup is unordered: the peer's listener may not be bound yet
    /// (connection refused), or may be bound but not yet accepting — a
    /// backlogged connection can be reset or EOF'd mid-handshake when the
    /// peer restarts. All of those are startup races, so any I/O-level
    /// failure before the handshake completes retries with exponential
    /// backoff; only a *semantic* rejection (wrong magic, version, rank,
    /// or size — `InvalidData`) is fatal, because retrying a
    /// misconfigured peer would just spin out the deadline.
    fn connect_handshake(
        ep: &Endpoint,
        deadline: Instant,
        rank: u32,
        size: u32,
        expect_peer: u32,
    ) -> io::Result<Conn> {
        let mut backoff = Duration::from_millis(5);
        loop {
            let attempt = (|| -> io::Result<Conn> {
                let mut c = Conn::connect(ep)?;
                // set_read_timeout rejects a zero Duration; clamp up.
                let remaining = deadline
                    .saturating_duration_since(Instant::now())
                    .max(Duration::from_millis(1));
                c.set_read_timeout(Some(remaining))?;
                write_hello(&mut c, rank, size)?;
                let (r, s) = read_hello(&mut c)?;
                if r != expect_peer || s != size {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "endpoint {expect_peer} answered as rank {r} of {s} \
                             (expected {expect_peer} of {size})"
                        ),
                    ));
                }
                c.set_read_timeout(None)?;
                Ok(c)
            })();
            match attempt {
                Ok(c) => return Ok(c),
                Err(e) if e.kind() == io::ErrorKind::InvalidData => return Err(e),
                Err(e) => {
                    if Instant::now() >= deadline {
                        return Err(io::Error::new(
                            e.kind(),
                            format!("connecting to {ep:?} timed out: {e}"),
                        ));
                    }
                    std::thread::sleep(
                        backoff.min(deadline.saturating_duration_since(Instant::now())),
                    );
                    backoff = (backoff * 2).min(Duration::from_millis(100));
                }
            }
        }
    }

    fn try_clone(&self) -> io::Result<Conn> {
        match self {
            Conn::Tcp(s) => Ok(Conn::Tcp(s.try_clone()?)),
            Conn::Unix(s) => Ok(Conn::Unix(s.try_clone()?)),
        }
    }

    fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(t),
            Conn::Unix(s) => s.set_read_timeout(t),
        }
    }

    fn shutdown(&self) {
        match self {
            Conn::Tcp(s) => {
                s.shutdown(Shutdown::Both).ok();
            }
            Conn::Unix(s) => {
                s.shutdown(Shutdown::Both).ok();
            }
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// A bound listener for this rank's endpoint. Unix listeners own their
/// socket path and remove it on drop.
pub(crate) enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener, PathBuf),
}

impl Listener {
    pub(crate) fn bind(ep: &Endpoint) -> io::Result<Listener> {
        match ep {
            Endpoint::Tcp(addr) => Ok(Listener::Tcp(TcpListener::bind(addr)?)),
            Endpoint::Unix(path) => {
                // A stale path from a crashed predecessor would fail the
                // bind; remove it first (fresh dirs are the common case).
                std::fs::remove_file(path).ok();
                Ok(Listener::Unix(UnixListener::bind(path)?, path.clone()))
            }
        }
    }

    /// The actual bound endpoint (resolves `:0` ephemeral TCP ports).
    pub(crate) fn local_endpoint(&self) -> io::Result<String> {
        match self {
            Listener::Tcp(l) => Ok(l.local_addr()?.to_string()),
            Listener::Unix(_, path) => Ok(path.display().to_string()),
        }
    }

    /// Accept one connection, polling until `deadline`.
    fn accept_deadline(&self, deadline: Instant) -> io::Result<Conn> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(true)?,
            Listener::Unix(l, _) => l.set_nonblocking(true)?,
        }
        loop {
            let got = match self {
                Listener::Tcp(l) => l.accept().map(|(s, _)| {
                    s.set_nodelay(true).ok();
                    Conn::Tcp(s)
                }),
                Listener::Unix(l, _) => l.accept().map(|(s, _)| Conn::Unix(s)),
            };
            match got {
                Ok(c) => {
                    match self {
                        Listener::Tcp(l) => l.set_nonblocking(false)?,
                        Listener::Unix(l, _) => l.set_nonblocking(false)?,
                    }
                    // The accepted stream inherits nonblocking on some
                    // platforms; force blocking mode.
                    match &c {
                        Conn::Tcp(s) => s.set_nonblocking(false)?,
                        Conn::Unix(s) => s.set_nonblocking(false)?,
                    }
                    return Ok(c);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "timed out waiting for peer connections",
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        if let Listener::Unix(_, path) = self {
            std::fs::remove_file(path).ok();
        }
    }
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

fn write_frame(w: &mut Conn, body: &[&[u8]]) -> io::Result<()> {
    let len: usize = body.iter().map(|b| b.len()).sum();
    assert!(len <= MAX_FRAME as usize, "frame exceeds MAX_FRAME");
    w.write_all(&(len as u32).to_le_bytes())?;
    for part in body {
        w.write_all(part)?;
    }
    w.flush()
}

fn write_msg(w: &mut Conn, src: u32, tag: u32, payload: &[u8]) -> io::Result<()> {
    let mut head = [0u8; 9];
    head[0] = FRAME_MSG;
    head[1..5].copy_from_slice(&src.to_le_bytes());
    head[5..9].copy_from_slice(&tag.to_le_bytes());
    write_frame(w, &[&head, payload])
}

fn write_hello(w: &mut Conn, rank: u32, size: u32) -> io::Result<()> {
    let mut body = [0u8; 15];
    body[0] = FRAME_HELLO;
    body[1..5].copy_from_slice(&rank.to_le_bytes());
    body[5..9].copy_from_slice(&size.to_le_bytes());
    body[9..13].copy_from_slice(&HELLO_MAGIC.to_le_bytes());
    body[13..15].copy_from_slice(&WIRE_VERSION.to_le_bytes());
    write_frame(w, &[&body])
}

fn write_dead(w: &mut Conn, rank: u32) -> io::Result<()> {
    let mut body = [0u8; 5];
    body[0] = FRAME_DEAD;
    body[1..5].copy_from_slice(&rank.to_le_bytes());
    write_frame(w, &[&body])
}

fn write_bye(w: &mut Conn, rank: u32) -> io::Result<()> {
    let mut body = [0u8; 5];
    body[0] = FRAME_BYE;
    body[1..5].copy_from_slice(&rank.to_le_bytes());
    write_frame(w, &[&body])
}

/// Read one frame. `Ok(None)` = clean EOF at a frame boundary.
fn read_frame(r: &mut Conn) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut len_buf[got..]) {
            Ok(0) => {
                if got == 0 {
                    return Ok(None);
                }
                return Err(io::ErrorKind::UnexpectedEof.into());
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len_buf);
    if len == 0 || len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad frame length {len}"),
        ));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    Ok(Some(body))
}

fn read_hello(r: &mut Conn) -> io::Result<(u32, u32)> {
    let body = read_frame(r)?.ok_or(io::ErrorKind::UnexpectedEof)?;
    if body.len() != 15 || body[0] != FRAME_HELLO {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "expected HELLO frame",
        ));
    }
    let rank = u32::from_le_bytes(body[1..5].try_into().unwrap());
    let size = u32::from_le_bytes(body[5..9].try_into().unwrap());
    let magic = u32::from_le_bytes(body[9..13].try_into().unwrap());
    let version = u16::from_le_bytes(body[13..15].try_into().unwrap());
    if magic != HELLO_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "handshake magic mismatch (not a bat-comm peer)",
        ));
    }
    if version != WIRE_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("wire version mismatch: peer {version}, ours {WIRE_VERSION}"),
        ));
    }
    Ok((rank, size))
}

// ---------------------------------------------------------------------
// The transport
// ---------------------------------------------------------------------

struct SocketState {
    rank: usize,
    size: usize,
    /// All incoming messages from every peer, matched like a channel
    /// mailbox.
    inbox: Arc<Mailbox>,
    /// Write halves, indexed by peer rank (`None` at our own index or
    /// after a connection failed).
    writers: Vec<Mutex<Option<Conn>>>,
    dead: Vec<AtomicBool>,
    /// Per-peer connection incarnation. A reader thread only marks its
    /// peer dead if its epoch is still current, so a stale reader from a
    /// replaced connection can't kill a re-admitted peer.
    epochs: Vec<AtomicU64>,
    ibarrier_gen: AtomicU64,
    poison: Arc<PoisonCell>,
    /// Set by `shutdown` so reader threads exit silently instead of
    /// marking peers dead when we close our own sockets.
    closed: AtomicBool,
    readers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl SocketState {
    fn deliver_local(&self, msg: Message) {
        // Mirror channel semantics: messages to a dead rank are dropped.
        if self.dead[self.rank].load(Ordering::Acquire) {
            return;
        }
        let mut q = self.inbox.queue.lock();
        q.push(msg);
        self.inbox.cv.notify_all();
    }

    /// Record a peer's death (observed or announced) and wake receivers.
    fn mark_dead_local(&self, rank: usize) {
        self.dead[rank].store(true, Ordering::Release);
        let _guard = self.inbox.queue.lock();
        self.inbox.cv.notify_all();
    }

    fn shutdown(&self) {
        if self.closed.swap(true, Ordering::AcqRel) {
            return;
        }
        for w in &self.writers {
            if let Some(conn) = w.lock().take() {
                let mut conn = conn;
                let _ = write_bye(&mut conn, self.rank as u32);
                conn.shutdown();
            }
        }
        let handles: Vec<_> = self.readers.lock().drain(..).collect();
        for h in handles {
            h.join().ok();
        }
    }
}

fn reader_loop(mut conn: Conn, peer: usize, epoch: u64, state: Arc<SocketState>) {
    // Set once the peer announces a clean departure; the EOF that follows
    // is then an orderly exit, not a death.
    let mut peer_left = false;
    loop {
        match read_frame(&mut conn) {
            Ok(Some(body)) => match body[0] {
                FRAME_MSG if body.len() >= 9 => {
                    let src = u32::from_le_bytes(body[1..5].try_into().unwrap()) as usize;
                    let tag = u32::from_le_bytes(body[5..9].try_into().unwrap());
                    if src < state.size {
                        let payload = Bytes::copy_from_slice(&body[9..]);
                        state.deliver_local(Message { src, tag, payload });
                    }
                }
                FRAME_DEAD if body.len() >= 5 => {
                    let r = u32::from_le_bytes(body[1..5].try_into().unwrap()) as usize;
                    if r < state.size {
                        state.mark_dead_local(r);
                    }
                }
                FRAME_BYE => peer_left = true,
                // Unknown/short frames are dropped (forward compatibility).
                _ => {}
            },
            Ok(None) | Err(_) => {
                let current = state.epochs[peer].load(Ordering::Acquire) == epoch;
                if !peer_left && current && !state.closed.load(Ordering::Acquire) {
                    state.mark_dead_local(peer);
                }
                return;
            }
        }
    }
}

/// Wire a (re)connected peer into the fabric: purge any queued frames
/// from its previous incarnation, install the write half, spawn a fresh
/// reader, and finally clear the dead flag so sends resume. Called by the
/// hub's rejoin loop when a supervised worker restarts and dials back in.
fn readmit(state: &Arc<SocketState>, peer: usize, conn: Conn) -> io::Result<()> {
    let reader_half = conn.try_clone()?;
    // Bump the epoch first: a reader still draining the replaced
    // connection must not mark the new incarnation dead on its EOF.
    let epoch = state.epochs[peer].fetch_add(1, Ordering::AcqRel) + 1;
    {
        // Frames from the dead incarnation would otherwise sit in the
        // mailbox forever (their req tags are retired).
        let mut q = state.inbox.queue.lock();
        q.retain(|m| m.src != peer);
    }
    *state.writers[peer].lock() = Some(conn);
    let st = state.clone();
    let handle = std::thread::Builder::new()
        .name(format!("bat-sock-r{}p{}e{}", state.rank, peer, epoch))
        .spawn(move || reader_loop(reader_half, peer, epoch, st))?;
    state.readers.lock().push(handle);
    state.dead[peer].store(false, Ordering::Release);
    let _guard = state.inbox.queue.lock();
    state.inbox.cv.notify_all();
    Ok(())
}

/// Hub-only accept loop (star topology): the listener stays bound for the
/// cluster's lifetime, and any later HELLO from a known rank re-admits
/// that peer — the membership half of supervised respawn.
fn rejoin_loop(listener: Listener, state: Arc<SocketState>) {
    let poll = Duration::from_millis(100);
    while !state.closed.load(Ordering::Acquire) {
        let mut c = match listener.accept_deadline(Instant::now() + poll) {
            Ok(c) => c,
            Err(e) if e.kind() == io::ErrorKind::TimedOut => continue,
            Err(_) => continue,
        };
        let hello = (|| -> io::Result<u32> {
            c.set_read_timeout(Some(connect_timeout()))?;
            let (r, s) = read_hello(&mut c)?;
            if r as usize == 0 || r as usize >= state.size || s as usize != state.size {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("rejoin HELLO from rank {r} of {s} rejected"),
                ));
            }
            write_hello(&mut c, state.rank as u32, state.size as u32)?;
            c.set_read_timeout(None)?;
            Ok(r)
        })();
        if let Ok(r) = hello {
            readmit(&state, r as usize, c).ok();
        }
    }
}

/// A rank handle on the socket transport.
#[derive(Clone)]
pub struct SocketComm {
    state: Arc<SocketState>,
    timeout: Option<Duration>,
}

impl SocketComm {
    /// Join a multi-process cluster described by `cfg` (typically parsed
    /// from `BAT_CLUSTER`): bind our endpoint, mesh up with every peer,
    /// and return once all handshakes complete.
    pub fn connect(cfg: &ClusterConfig) -> io::Result<SocketComm> {
        let eps = cfg.parsed_endpoints()?;
        let listener = Listener::bind(&eps[cfg.rank])?;
        SocketComm::establish(listener, cfg, Arc::new(PoisonCell::default()))
    }

    /// Build the mesh from an already-bound listener. Thread-hosted
    /// clusters pre-bind all listeners (no ephemeral-port race) and share
    /// one `PoisonCell` so a rank panic still wakes its siblings.
    pub(crate) fn establish(
        listener: Listener,
        cfg: &ClusterConfig,
        poison: Arc<PoisonCell>,
    ) -> io::Result<SocketComm> {
        let n = cfg.size;
        let rank = cfg.rank;
        assert!(rank < n, "rank {rank} out of range for size {n}");
        let eps = cfg.parsed_endpoints()?;
        if eps.len() != n {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("cluster size {n} but {} endpoints", eps.len()),
            ));
        }
        let star = cfg.topology == crate::cluster::Topology::Star;
        let deadline = Instant::now() + connect_timeout();
        let handshake_timeout = Some(connect_timeout());
        let mut conns: Vec<Option<Conn>> = (0..n).map(|_| None).collect();

        // Connect to every lower rank (star spokes dial only the hub)…
        let dial_to = if star && rank > 0 { 1 } else { rank };
        for (j, ep) in eps.iter().enumerate().take(dial_to) {
            conns[j] = Some(Conn::connect_handshake(
                ep,
                deadline,
                rank as u32,
                n as u32,
                j as u32,
            )?);
        }
        // …and accept from every higher rank (none for star spokes; the
        // hub, rank 0, accepts everyone — same as its mesh role).
        let accepts = if star && rank > 0 { 0 } else { n - rank - 1 };
        for _ in 0..accepts {
            let mut c = listener.accept_deadline(deadline)?;
            c.set_read_timeout(handshake_timeout)?;
            let (r, s) = read_hello(&mut c)?;
            let r = r as usize;
            if r <= rank || r >= n || s as usize != n || conns[r].is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unexpected HELLO from rank {r} of {s}"),
                ));
            }
            write_hello(&mut c, rank as u32, n as u32)?;
            c.set_read_timeout(None)?;
            conns[r] = Some(c);
        }

        // Split each connection into a reader clone and the write half.
        let mut reader_halves = Vec::with_capacity(n);
        for (j, c) in conns.iter().enumerate() {
            reader_halves.push(match c {
                Some(conn) if j != rank => Some(conn.try_clone()?),
                _ => None,
            });
        }
        let inbox = Arc::new(Mailbox::default());
        poison.register(inbox.clone());
        let state = Arc::new(SocketState {
            rank,
            size: n,
            inbox,
            writers: conns.into_iter().map(Mutex::new).collect(),
            dead: (0..n).map(|_| AtomicBool::new(false)).collect(),
            epochs: (0..n).map(|_| AtomicU64::new(0)).collect(),
            ibarrier_gen: AtomicU64::new(0),
            poison,
            closed: AtomicBool::new(false),
            readers: Mutex::new(Vec::new()),
        });
        let mut handles = Vec::with_capacity(n.saturating_sub(1));
        for (j, half) in reader_halves.into_iter().enumerate() {
            if let Some(conn) = half {
                let st = state.clone();
                handles.push(
                    std::thread::Builder::new()
                        .name(format!("bat-sock-r{rank}p{j}"))
                        .spawn(move || reader_loop(conn, j, 0, st))
                        .expect("spawn reader thread"),
                );
            }
        }
        *state.readers.lock() = handles;
        if star && rank == 0 {
            // The hub keeps listening for the cluster's lifetime so a
            // supervised worker that crashed and respawned can dial back
            // in; `rejoin_loop` re-admits it and clears its dead flag.
            let st = state.clone();
            let h = std::thread::Builder::new()
                .name(format!("bat-sock-hub{rank}"))
                .spawn(move || rejoin_loop(listener, st))
                .expect("spawn hub accept thread");
            state.readers.lock().push(h);
        } else {
            // Mesh (and star spokes): drop the listener now — Unix paths
            // are unlinked; reconnects are not part of the mesh protocol.
            drop(listener);
        }
        Ok(SocketComm {
            state,
            timeout: default_timeout(),
        })
    }
}

impl Comm for SocketComm {
    #[inline]
    fn rank(&self) -> usize {
        self.state.rank
    }

    #[inline]
    fn size(&self) -> usize {
        self.state.size
    }

    #[inline]
    fn timeout(&self) -> Option<Duration> {
        self.timeout
    }

    fn with_timeout(&self, timeout: Option<Duration>) -> Box<dyn Comm> {
        Box::new(SocketComm {
            state: self.state.clone(),
            timeout,
        })
    }

    fn clone_comm(&self) -> Box<dyn Comm> {
        Box::new(self.clone())
    }

    fn transport(&self) -> &'static str {
        "socket"
    }

    fn mark_dead(&self) {
        let st = &self.state;
        if st.dead[st.rank].swap(true, Ordering::AcqRel) {
            return;
        }
        // Best-effort death notice so peers fail fast instead of waiting
        // out their deadlines. The write halves stay open: a dead rank may
        // still send (crash simulation wants the flush-then-die shape).
        for (j, w) in st.writers.iter().enumerate() {
            if j == st.rank {
                continue;
            }
            if let Some(conn) = w.lock().as_mut() {
                let _ = write_dead(conn, st.rank as u32);
            }
        }
        let _guard = st.inbox.queue.lock();
        st.inbox.cv.notify_all();
    }

    fn is_dead(&self, rank: usize) -> bool {
        self.state.dead[rank].load(Ordering::Acquire)
    }

    fn poison(&self) {
        // Thread-hosted: trip the shared cell so sibling ranks panic out
        // of their receives. Multi-process: the cell is private, so this
        // degrades to mark_dead + connection teardown at process exit.
        self.state.poison.poison();
        self.mark_dead();
    }

    #[inline]
    fn check_alive(&self) {
        if self.state.poison.is_poisoned() {
            panic!("cluster poisoned: another rank panicked");
        }
    }

    fn shutdown(&self) {
        self.state.shutdown();
    }

    fn send_raw(&self, dst: usize, tag: u32, payload: Bytes) {
        let st = &self.state;
        if st.dead[dst].load(Ordering::Acquire) {
            return;
        }
        if dst == st.rank {
            st.deliver_local(Message {
                src: st.rank,
                tag,
                payload,
            });
            return;
        }
        let mut guard = st.writers[dst].lock();
        let failed = match guard.as_mut() {
            Some(conn) => write_msg(conn, st.rank as u32, tag, &payload).is_err(),
            None => false, // already torn down; drop like a dead mailbox
        };
        if failed {
            *guard = None;
            drop(guard);
            st.mark_dead_local(dst);
        }
    }

    fn recv_deadline_raw(
        &self,
        src: Option<usize>,
        tag: u32,
        deadline: Option<Instant>,
    ) -> Result<Message, CommError> {
        let st = &self.state;
        let started = Instant::now();
        let mut q = st.inbox.queue.lock();
        loop {
            if st.poison.is_poisoned() {
                panic!("cluster poisoned: another rank panicked");
            }
            if let Some(i) = Mailbox::find(&q, src, tag) {
                return Ok(q.remove(i));
            }
            // Dead-source check only after draining queued matches:
            // frames received before the death are still deliverable.
            if let Some(s) = src {
                if st.dead[s].load(Ordering::Acquire) {
                    return Err(CommError::PeerDead {
                        rank: st.rank,
                        peer: s,
                        tag,
                    });
                }
            }
            match deadline {
                None => st.inbox.cv.wait(&mut q),
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return Err(CommError::Timeout {
                            rank: st.rank,
                            src,
                            tag,
                            waited_ms: started.elapsed().as_millis() as u64,
                        });
                    }
                    let _ = st.inbox.cv.wait_for(&mut q, d - now);
                }
            }
        }
    }

    fn try_recv_raw(&self, src: Option<usize>, tag: u32) -> Option<Message> {
        let mut q = self.state.inbox.queue.lock();
        Mailbox::find(&q, src, tag).map(|i| q.remove(i))
    }

    fn iprobe_raw(&self, src: Option<usize>, tag: u32) -> Option<ProbeInfo> {
        let q = self.state.inbox.queue.lock();
        Mailbox::find(&q, src, tag).map(|i| ProbeInfo {
            src: q[i].src,
            tag: q[i].tag,
            len: q[i].payload.len(),
        })
    }

    fn next_ibarrier_generation(&self) -> u64 {
        self.state.ibarrier_gen.fetch_add(1, Ordering::Relaxed)
    }
}
