//! Nonblocking dissemination barrier (`MPI_Ibarrier` analogue).
//!
//! The paper's parallel read pipeline (§IV-B) has each rank enter a
//! nonblocking barrier once it has received its own particles, then keep
//! polling for and serving incoming data queries until the barrier reports
//! completion — at which point every rank has its data and the servers can
//! stop. That protocol requires a barrier that makes progress only when
//! polled, which this type provides.

use crate::comm::Comm;
use bytes::Bytes;

/// Tag base for ibarrier round messages, above all user tags.
const IBARRIER_TAG_BASE: u32 = crate::MAX_USER_TAG + 0x1000;
/// Round tags cycle over this many generations to stay bounded.
const GENERATIONS: u32 = 1024;
/// Maximum dissemination rounds (supports up to 2^32 ranks).
const MAX_ROUNDS: u32 = 32;

/// In-flight nonblocking barrier. Create with [`Comm::ibarrier`]; poll with
/// [`IBarrier::test`] until it returns `true`. Works over any transport.
pub struct IBarrier {
    comm: Box<dyn Comm>,
    generation: u32,
    round: u32,
    rounds_total: u32,
    done: bool,
}

impl IBarrier {
    pub(crate) fn begin(comm: Box<dyn Comm>) -> IBarrier {
        let n = comm.size();
        let rounds_total = if n <= 1 {
            0
        } else {
            (n as u64).next_power_of_two().trailing_zeros()
        };
        debug_assert!(rounds_total <= MAX_ROUNDS);
        let generation = comm.next_ibarrier_generation() % GENERATIONS as u64;
        let ib = IBarrier {
            comm,
            generation: generation as u32,
            round: 0,
            rounds_total,
            done: rounds_total == 0,
        };
        if !ib.done {
            ib.send_round(0);
        }
        ib
    }

    fn tag_for(&self, round: u32) -> u32 {
        IBARRIER_TAG_BASE + self.generation * MAX_ROUNDS + round
    }

    fn send_round(&self, round: u32) {
        let n = self.comm.size();
        let dst = (self.comm.rank() + (1 << round)) % n;
        self.comm
            .isend_internal(dst, self.tag_for(round), Bytes::new());
    }

    /// Make progress and report completion. Nonblocking: consumes any round
    /// tokens that have arrived, advances through dissemination rounds, and
    /// returns `true` once every rank is known to have entered the barrier.
    ///
    /// Returns `true` on every call after completion.
    pub fn test(&mut self) -> bool {
        while !self.done {
            let n = self.comm.size();
            let src = (self.comm.rank() + n - ((1usize << self.round) % n) % n) % n;
            let tag = self.tag_for(self.round);
            match self.comm.try_recv_internal(Some(src), tag) {
                Some(_) => {
                    self.round += 1;
                    if self.round == self.rounds_total {
                        self.done = true;
                    } else {
                        self.send_round(self.round);
                    }
                }
                None => break,
            }
        }
        self.done
    }

    /// Block until the barrier completes (degenerates to a plain barrier).
    pub fn wait(&mut self) {
        while !self.done {
            let n = self.comm.size();
            let src = (self.comm.rank() + n - ((1usize << self.round) % n) % n) % n;
            let tag = self.tag_for(self.round);
            let _ = self.comm.recv_internal(Some(src), tag);
            self.round += 1;
            if self.round == self.rounds_total {
                self.done = true;
            } else {
                self.send_round(self.round);
            }
        }
    }

    /// True once the barrier has completed.
    pub fn is_complete(&self) -> bool {
        self.done
    }
}
