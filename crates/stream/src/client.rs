//! The streaming client: a viewer-side session.

use crate::protocol::{read_frame, write_frame, Chunk, Request, Schema, ServerMsg};
use bat_layout::Query;
use std::io::BufWriter;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Why a request produced no result.
#[derive(Debug)]
pub enum RequestError {
    /// Transport failure; the session is no longer usable.
    Io(std::io::Error),
    /// The server's bounded queue refused the request; retry after the
    /// hint. The session stays usable and no partial data was sent.
    Busy {
        /// Server-suggested backoff.
        retry_after: Duration,
    },
    /// The server reported a typed failure (deadline expiry, bad query…).
    /// Chunks delivered before the error were discarded. The session
    /// stays usable.
    Server {
        /// One of the protocol `ERR_*` codes.
        code: u32,
        /// Human-readable detail from the server.
        message: String,
    },
    /// The request completed *degraded*: the query opted in with
    /// `Query::allow_partial` and part of the fabric was unreachable, so
    /// the chunks streamed to `on_chunk` cover only `served_leaves` of
    /// `total_leaves` planned leaves. A distinct outcome (never folded
    /// into a successful return) so partial data can't silently pass as
    /// complete. The session stays usable.
    Partial {
        /// Points streamed to `on_chunk` before the PARTIAL frame.
        points: u64,
        /// Planned leaves actually served.
        served_leaves: u64,
        /// Leaves the plan wanted in total.
        total_leaves: u64,
    },
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::Io(e) => write!(f, "stream I/O: {e}"),
            RequestError::Busy { retry_after } => {
                write!(f, "server busy, retry after {retry_after:?}")
            }
            RequestError::Server { code, message } => {
                write!(f, "server error {code}: {message}")
            }
            RequestError::Partial {
                points,
                served_leaves,
                total_leaves,
            } => {
                write!(
                    f,
                    "partial result: {points} points from {served_leaves}/{total_leaves} leaves"
                )
            }
        }
    }
}

impl std::error::Error for RequestError {}

impl From<std::io::Error> for RequestError {
    fn from(e: std::io::Error) -> RequestError {
        RequestError::Io(e)
    }
}

/// A connected viewer session.
pub struct StreamClient {
    reader: TcpStream,
    writer: BufWriter<TcpStream>,
    schema: Schema,
}

impl StreamClient {
    /// Connect and receive the dataset schema.
    pub fn connect(addr: SocketAddr) -> std::io::Result<StreamClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let mut reader = stream.try_clone()?;
        let writer = BufWriter::new(stream);
        let payload = read_frame(&mut reader)?.ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed during hello",
            )
        })?;
        let schema = match ServerMsg::decode(&payload)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?
        {
            ServerMsg::Schema(s) => s,
            other => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("expected schema, got {other:?}"),
                ))
            }
        };
        Ok(StreamClient {
            reader,
            writer,
            schema,
        })
    }

    /// The dataset schema received at connect time.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Run one query, invoking `on_chunk` as batches arrive. Returns the
    /// total number of points streamed; typed failures
    /// ([`RequestError::Busy`], [`RequestError::Server`]) leave the
    /// session usable for further requests.
    pub fn request(
        &mut self,
        query: &Query,
        mut on_chunk: impl FnMut(&Chunk),
    ) -> Result<u64, RequestError> {
        let req = Request {
            query: query.clone(),
        };
        write_frame(&mut self.writer, &req.encode())?;
        use std::io::Write;
        self.writer.flush()?;

        let mut received = 0u64;
        loop {
            let payload = read_frame(&mut self.reader)?.ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed mid-stream",
                )
            })?;
            match ServerMsg::decode(&payload)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?
            {
                ServerMsg::Chunk(c) => {
                    received += c.len() as u64;
                    on_chunk(&c);
                }
                ServerMsg::Done { points } => {
                    if points != received {
                        return Err(RequestError::Io(std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            format!("server reported {points} points, received {received}"),
                        )));
                    }
                    return Ok(received);
                }
                ServerMsg::Busy { retry_after_ms } => {
                    return Err(RequestError::Busy {
                        retry_after: Duration::from_millis(retry_after_ms),
                    })
                }
                ServerMsg::Error { code, message } => {
                    return Err(RequestError::Server { code, message })
                }
                ServerMsg::Partial {
                    points,
                    served_leaves,
                    total_leaves,
                } => {
                    if points != received {
                        return Err(RequestError::Io(std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            format!("server reported {points} partial points, received {received}"),
                        )));
                    }
                    return Err(RequestError::Partial {
                        points,
                        served_leaves,
                        total_leaves,
                    });
                }
                ServerMsg::Schema(_) => {
                    return Err(RequestError::Io(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        "unexpected schema mid-session",
                    )))
                }
            }
        }
    }

    /// As [`StreamClient::request`], but honoring the backpressure
    /// contract: on [`RequestError::Busy`] the client sleeps the hinted
    /// delay and resubmits, up to `max_retries` times.
    pub fn request_with_retry(
        &mut self,
        query: &Query,
        max_retries: usize,
        mut on_chunk: impl FnMut(&Chunk),
    ) -> Result<u64, RequestError> {
        let mut attempts = 0;
        loop {
            match self.request(query, &mut on_chunk) {
                Err(RequestError::Busy { retry_after }) if attempts < max_retries => {
                    attempts += 1;
                    std::thread::sleep(retry_after);
                }
                other => return other,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StreamServer;
    use bat_comm::Cluster;
    use bat_geom::{Aabb, Vec3};
    use bat_workloads::{uniform, RankGrid};
    use libbat::write::{write_particles, WriteConfig};
    use libbat::Dataset;

    fn make_dataset(tag: &str, per_rank: u64) -> (std::path::PathBuf, u64) {
        let dir = std::env::temp_dir().join(format!("bat-stream-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let n = 4;
        let grid = RankGrid::new_3d(n, Aabb::unit());
        let d = dir.clone();
        Cluster::run(n, move |comm| {
            let set = uniform::generate_rank(&grid, comm.rank(), per_rank, 5);
            let cfg = WriteConfig::with_target_size(100_000, set.bytes_per_particle() as u64);
            write_particles(&comm, set, grid.bounds_of(comm.rank()), &cfg, &d, "s").unwrap();
        });
        (dir, per_rank * n as u64)
    }

    fn start(dir: &std::path::Path) -> crate::ServerHandle {
        let ds = Dataset::open(dir, "s").unwrap();
        StreamServer::bind("127.0.0.1:0", ds)
            .unwrap()
            .spawn()
            .unwrap()
    }

    #[test]
    fn full_stream_matches_dataset() {
        let (dir, total) = make_dataset("full", 3000);
        let handle = start(&dir);
        let mut client = StreamClient::connect(handle.addr()).unwrap();
        assert_eq!(client.schema().total_particles, total);
        assert_eq!(client.schema().descs.len(), 14);
        let mut points = 0u64;
        let mut chunks = 0;
        let n = client
            .request(&Query::new(), |c| {
                points += c.len() as u64;
                chunks += 1;
                assert!(c.len() <= crate::CHUNK_POINTS);
                assert_eq!(c.num_attrs, 14);
            })
            .unwrap();
        assert_eq!(n, total);
        assert_eq!(points, total);
        assert!(chunks >= 2, "expected multiple chunks, got {chunks}");
        drop(client);
        handle.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn progressive_session_partitions_data() {
        let (dir, total) = make_dataset("prog", 2500);
        let handle = start(&dir);
        let mut client = StreamClient::connect(handle.addr()).unwrap();
        // The Fig. 4 viewer loop: quality sweep with progressive baselines.
        let mut received = 0u64;
        let mut prev = 0.0;
        for i in 1..=5 {
            let q = i as f64 / 5.0;
            received += client
                .request(
                    &Query::new().with_prev_quality(prev).with_quality(q),
                    |_| {},
                )
                .unwrap();
            prev = q;
        }
        assert_eq!(received, total);
        drop(client);
        handle.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn spatial_and_attribute_filtering_served() {
        let (dir, _) = make_dataset("filter", 2000);
        let ds = Dataset::open(&dir, "s").unwrap();
        let qb = Aabb::new(Vec3::ZERO, Vec3::splat(0.5));
        let q = Query::new().with_bounds(qb).with_filter(0, -0.5, 0.5);
        let expect = ds.count(&q).unwrap();

        let handle = start(&dir);
        let mut client = StreamClient::connect(handle.addr()).unwrap();
        let mut ok = true;
        let got = client
            .request(&q, |c| {
                for (i, p) in c.positions.iter().enumerate() {
                    ok &= qb.contains_point(*p);
                    let v = c.attr(i, 0);
                    ok &= (-0.5..=0.5).contains(&v);
                }
            })
            .unwrap();
        assert!(ok, "streamed points must satisfy the filters");
        assert_eq!(got, expect);
        drop(client);
        handle.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_clients() {
        let (dir, total) = make_dataset("multi", 1500);
        let handle = start(&dir);
        let addr = handle.addr();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut client = StreamClient::connect(addr).unwrap();
                    client.request(&Query::new(), |_| {}).unwrap()
                })
            })
            .collect();
        for t in threads {
            assert_eq!(t.join().unwrap(), total);
        }
        handle.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sequential_requests_reuse_connection() {
        let (dir, total) = make_dataset("seq", 1000);
        let handle = start(&dir);
        let mut client = StreamClient::connect(handle.addr()).unwrap();
        for _ in 0..3 {
            assert_eq!(client.request(&Query::new(), |_| {}).unwrap(), total);
        }
        drop(client);
        handle.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }
}
