//! Shard supervision: heartbeats, death detection, and respawn
//! (DESIGN.md §16).
//!
//! The supervisor runs next to the router on rank 0 and pings every
//! shard rank each `BAT_SHARD_HEARTBEAT_MS`. A shard counts as lost when
//! it misses `BAT_SHARD_MISSED_BEATS` consecutive pongs or its rank is
//! already marked dead (`PeerDead` propagated by the transport). Lost
//! shards are handed to a caller-supplied respawn callback — typically
//! "SIGKILL the stale process if any, spawn a fresh `batcli shard-worker`
//! with the same star-topology spec" — and the fresh incarnation rejoins
//! through the hub's retained listener, which clears the dead flag and
//! re-admits it to the mesh.
//!
//! Supervision is deliberately decoupled from query routing: a respawn
//! triggered by a slow-but-alive worker (a false positive) is safe,
//! because the router's replica failover independently covers any query
//! the restart interrupts.

use crate::shard::{decode_heartbeat, encode_heartbeat, HB_PING, HB_PONG, TAG_HEARTBEAT};
use bat_comm::Comm;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Heartbeat cadence and tolerance.
#[derive(Debug, Clone, Copy)]
pub struct SupervisorConfig {
    /// Ping interval (`BAT_SHARD_HEARTBEAT_MS`, default 500 ms).
    pub interval: Duration,
    /// Consecutive missed pongs before a live-but-silent shard is
    /// declared lost (`BAT_SHARD_MISSED_BEATS`, default 4).
    pub missed_beats: u32,
}

impl SupervisorConfig {
    pub fn from_env() -> SupervisorConfig {
        let ms = std::env::var("BAT_SHARD_HEARTBEAT_MS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .filter(|&ms| ms > 0)
            .unwrap_or(500);
        let beats = std::env::var("BAT_SHARD_MISSED_BEATS")
            .ok()
            .and_then(|v| v.trim().parse::<u32>().ok())
            .filter(|&b| b > 0)
            .unwrap_or(4);
        SupervisorConfig {
            interval: Duration::from_millis(ms),
            missed_beats: beats,
        }
    }
}

impl Default for SupervisorConfig {
    fn default() -> SupervisorConfig {
        SupervisorConfig::from_env()
    }
}

/// Handle to a running supervision thread; stops (and joins) on
/// [`Supervisor::stop`] or drop.
pub struct Supervisor {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Supervisor {
    /// Signal the heartbeat loop to exit and wait for it.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            t.join().ok();
        }
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        self.halt();
    }
}

/// Start supervising the shard ranks behind `comm` (a clone of the
/// router rank's communicator). `respawn(shard)` is invoked — off the
/// router's query path, on the supervision thread — whenever shard
/// `shard` (0-based) is lost; it should replace the process and return
/// once the replacement has been launched (the rejoin itself is
/// asynchronous). After a respawn the shard gets a full tolerance window
/// to come back before being declared lost again.
///
/// Emits `shard.heartbeat.missed` per silent round and `shard.respawn`
/// per replacement. The `shard.respawn` failpoint can suppress a
/// replacement cycle (`error`) to exercise supervisor retry.
pub fn supervise(
    comm: Box<dyn Comm>,
    cfg: SupervisorConfig,
    mut respawn: impl FnMut(usize) -> std::io::Result<()> + Send + 'static,
) -> Supervisor {
    assert_eq!(
        comm.rank(),
        crate::shard::ROUTER_RANK,
        "the supervisor runs on the router rank"
    );
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = stop.clone();
    let shards = comm.size() - 1;
    let thread = std::thread::Builder::new()
        .name("bat-shard-sup".into())
        .spawn(move || {
            let mut missed = vec![0u32; shards];
            // Rounds to hold off after a respawn, giving the fresh
            // incarnation time to dial back in before re-counting.
            let mut grace = vec![0u32; shards];
            let mut seq = 0u64;
            while !stop2.load(Ordering::Acquire) {
                seq += 1;
                for s in 0..shards {
                    if !comm.is_dead(1 + s) {
                        comm.isend(1 + s, TAG_HEARTBEAT, encode_heartbeat(HB_PING, seq));
                    }
                }
                // Collect pongs for one interval.
                let round_end = Instant::now() + cfg.interval;
                let mut ponged = vec![false; shards];
                loop {
                    let left = round_end.saturating_duration_since(Instant::now());
                    if left.is_zero() || stop2.load(Ordering::Acquire) {
                        break;
                    }
                    match comm.recv_timeout(None, TAG_HEARTBEAT, left) {
                        Ok(m) => {
                            if let Some((HB_PONG, _)) = decode_heartbeat(&m.payload) {
                                if (1..=shards).contains(&m.src) {
                                    ponged[m.src - 1] = true;
                                }
                            }
                        }
                        Err(_) => break,
                    }
                }
                if stop2.load(Ordering::Acquire) {
                    break;
                }
                for s in 0..shards {
                    let dead = comm.is_dead(1 + s);
                    if !dead && ponged[s] {
                        missed[s] = 0;
                        grace[s] = 0;
                        continue;
                    }
                    if grace[s] > 0 {
                        grace[s] -= 1;
                        continue;
                    }
                    if !dead {
                        missed[s] += 1;
                        bat_obs::counter_add("shard.heartbeat.missed", 1);
                    }
                    if dead || missed[s] >= cfg.missed_beats {
                        // Failpoint: a respawn that fails to launch; the
                        // supervisor retries next round.
                        if bat_faults::fire("shard.respawn").is_some() {
                            continue;
                        }
                        bat_obs::counter_add("shard.respawn", 1);
                        if respawn(s).is_ok() {
                            missed[s] = 0;
                            grace[s] = cfg.missed_beats.max(2);
                        }
                    }
                }
            }
        })
        .expect("spawn supervisor thread");
    Supervisor {
        stop,
        thread: Some(thread),
    }
}
