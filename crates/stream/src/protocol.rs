//! The streaming wire protocol: length-framed messages over a byte stream.
//!
//! Every message is a `u32` little-endian length followed by that many
//! payload bytes (encoded with `bat-wire`). The session flow:
//!
//! ```text
//! client → server   Request  { query }
//! server → client   Schema   { attribute names/types, domain, total }   (first request only)
//! server → client   Chunk    { ≤ CHUNK_POINTS points }                  (repeated)
//! server → client   Done     { points_sent }
//! ```
//!
//! Two alternative replies end a request without `Done`: `Busy`
//! (`retry_after_ms`) when the server's bounded queue refused the request,
//! and `Error` (`code`, `message`) when execution failed with a typed,
//! recoverable error (deadline expiry, invalid query). Both leave the
//! session open for further requests.
//!
//! Chunks are bounded so a viewer can render while the stream continues —
//! the paper's progressive loading behavior (Fig. 4, §V-B).

use bat_geom::Vec3;
use bat_layout::{AttributeDesc, Query};
use bat_wire::{Decoder, Encoder, WireError, WireResult};
use std::io::{Read, Write};

/// Maximum points per chunk.
pub const CHUNK_POINTS: usize = 4096;

/// Message type tags.
const MSG_REQUEST: u8 = 1;
const MSG_SCHEMA: u8 = 2;
const MSG_CHUNK: u8 = 3;
const MSG_DONE: u8 = 4;
const MSG_BUSY: u8 = 5;
const MSG_ERROR: u8 = 6;
const MSG_PARTIAL: u8 = 7;

/// [`ServerMsg::Error`] code: the per-query deadline expired.
pub const ERR_DEADLINE: u32 = 1;
/// [`ServerMsg::Error`] code: the query is invalid for the dataset schema.
pub const ERR_BAD_QUERY: u32 = 2;
/// [`ServerMsg::Error`] code: the server failed internally (I/O, corrupt
/// file); the session stays usable.
pub const ERR_INTERNAL: u32 = 3;
/// [`ServerMsg::Error`] code: a shard process behind the router died or
/// went silent mid-query; any streamed chunks are partial. The session
/// stays usable (later requests may hit the surviving shards).
pub const ERR_SHARD: u32 = 4;
/// Hard cap on any framed message (a sanity bound against corrupt frames).
const MAX_FRAME: u32 = 64 << 20;

/// A client request: run this query and stream the results.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// The query to evaluate (quality, progressive baseline, bounds,
    /// attribute filters).
    pub query: Query,
}

/// Dataset schema sent on a session's first response.
#[derive(Debug, Clone, PartialEq)]
pub struct Schema {
    /// Attribute descriptors.
    pub descs: Vec<AttributeDesc>,
    /// Total particles in the dataset.
    pub total_particles: u64,
}

/// A batch of streamed points.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Chunk {
    /// Positions, one per point.
    pub positions: Vec<Vec3>,
    /// Attribute values, `num_attrs` per point, point-major.
    pub attrs: Vec<f64>,
    /// Attributes per point.
    pub num_attrs: usize,
}

impl Chunk {
    /// Number of points in the chunk.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True when the chunk holds no points.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Attribute `a` of point `i`.
    pub fn attr(&self, i: usize, a: usize) -> f64 {
        self.attrs[i * self.num_attrs + a]
    }
}

/// Messages a server sends.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerMsg {
    /// Session schema (first reply of a connection).
    Schema(Schema),
    /// A batch of points.
    Chunk(Chunk),
    /// End of the current request; `points` were sent in total.
    Done {
        /// Total points streamed for the request.
        points: u64,
    },
    /// The server's bounded queue is full: the request was *not* executed;
    /// retry after the hinted delay. The session stays open.
    Busy {
        /// Suggested client backoff in milliseconds.
        retry_after_ms: u64,
    },
    /// The request failed with a typed, recoverable error (`ERR_*` codes).
    /// Any chunks already streamed for the request are partial and should
    /// be discarded; the session stays open.
    Error {
        /// One of the `ERR_*` codes.
        code: u32,
        /// Human-readable detail.
        message: String,
    },
    /// End of a *degraded* request: the client opted in with
    /// `Query::allow_partial` and part of the fabric was unreachable, so
    /// the streamed chunks cover only `served_leaves` of `total_leaves`
    /// planned leaves. Never sent unless the client opted in — partial
    /// data is never passed off as a `Done`.
    Partial {
        /// Points actually streamed.
        points: u64,
        /// Planned leaves whose points were served.
        served_leaves: u64,
        /// Leaves the plan wanted in total.
        total_leaves: u64,
    },
}

/// Encode a [`Chunk`]'s body (shared between the client protocol and the
/// shard fabric's inter-process frames, so a router can relay shard
/// chunks without re-encoding points).
pub fn encode_chunk(enc: &mut Encoder, c: &Chunk) {
    enc.put_u64(c.num_attrs as u64);
    enc.put_u64(c.positions.len() as u64);
    for p in &c.positions {
        enc.put_f32(p.x);
        enc.put_f32(p.y);
        enc.put_f32(p.z);
    }
    enc.put_f64_slice(&c.attrs);
}

/// Decode a [`Chunk`]'s body (inverse of [`encode_chunk`]).
pub fn decode_chunk(dec: &mut Decoder) -> WireResult<Chunk> {
    let num_attrs = dec.get_usize("chunk attrs")?;
    let n = dec.get_usize("chunk points")?;
    if n > CHUNK_POINTS || num_attrs > 4096 {
        return Err(WireError::BadLength {
            what: "chunk size",
            len: n as u64,
            remaining: dec.remaining(),
        });
    }
    // Positions are a bare column; decode them in one bulk pass.
    let raw = dec.get_raw(n * 12, "chunk positions")?;
    let positions: Vec<Vec3> = raw
        .chunks_exact(12)
        .map(|c| {
            Vec3::new(
                f32::from_le_bytes([c[0], c[1], c[2], c[3]]),
                f32::from_le_bytes([c[4], c[5], c[6], c[7]]),
                f32::from_le_bytes([c[8], c[9], c[10], c[11]]),
            )
        })
        .collect();
    let attrs = dec.get_f64_vec("chunk attrs data")?;
    if attrs.len() != n * num_attrs {
        return Err(WireError::BadLength {
            what: "chunk attr payload",
            len: attrs.len() as u64,
            remaining: dec.remaining(),
        });
    }
    Ok(Chunk {
        positions,
        attrs,
        num_attrs,
    })
}

/// Write one length-framed message.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    Ok(())
}

/// Read one length-framed message; `Ok(None)` on clean EOF at a frame
/// boundary (the peer closed the session).
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME} limit"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

impl Request {
    /// Encode to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_u8(MSG_REQUEST);
        self.query.encode(&mut enc);
        enc.finish()
    }

    /// Decode from a frame payload.
    pub fn decode(payload: &[u8]) -> WireResult<Request> {
        let mut dec = Decoder::new(payload);
        let tag = dec.get_u8("message tag")?;
        if tag != MSG_REQUEST {
            return Err(WireError::BadTag {
                what: "request tag",
                tag: tag as u64,
            });
        }
        Ok(Request {
            query: Query::decode(&mut dec)?,
        })
    }
}

impl ServerMsg {
    /// Encode to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        match self {
            ServerMsg::Schema(s) => {
                enc.put_u8(MSG_SCHEMA);
                enc.put_u64(s.descs.len() as u64);
                for d in &s.descs {
                    d.encode(&mut enc);
                }
                enc.put_u64(s.total_particles);
            }
            ServerMsg::Chunk(c) => {
                enc.put_u8(MSG_CHUNK);
                encode_chunk(&mut enc, c);
            }
            ServerMsg::Done { points } => {
                enc.put_u8(MSG_DONE);
                enc.put_u64(*points);
            }
            ServerMsg::Busy { retry_after_ms } => {
                enc.put_u8(MSG_BUSY);
                enc.put_u64(*retry_after_ms);
            }
            ServerMsg::Error { code, message } => {
                enc.put_u8(MSG_ERROR);
                enc.put_u32(*code);
                enc.put_str(message);
            }
            ServerMsg::Partial {
                points,
                served_leaves,
                total_leaves,
            } => {
                enc.put_u8(MSG_PARTIAL);
                enc.put_u64(*points);
                enc.put_u64(*served_leaves);
                enc.put_u64(*total_leaves);
            }
        }
        enc.finish()
    }

    /// Decode from a frame payload.
    pub fn decode(payload: &[u8]) -> WireResult<ServerMsg> {
        let mut dec = Decoder::new(payload);
        match dec.get_u8("message tag")? {
            MSG_SCHEMA => {
                let na = dec.get_usize("schema attr count")?;
                if na > 4096 {
                    return Err(WireError::BadLength {
                        what: "schema attr count",
                        len: na as u64,
                        remaining: dec.remaining(),
                    });
                }
                let mut descs = Vec::with_capacity(na);
                for _ in 0..na {
                    descs.push(AttributeDesc::decode(&mut dec)?);
                }
                let total_particles = dec.get_u64("schema total")?;
                Ok(ServerMsg::Schema(Schema {
                    descs,
                    total_particles,
                }))
            }
            MSG_CHUNK => Ok(ServerMsg::Chunk(decode_chunk(&mut dec)?)),
            MSG_DONE => Ok(ServerMsg::Done {
                points: dec.get_u64("done points")?,
            }),
            MSG_BUSY => Ok(ServerMsg::Busy {
                retry_after_ms: dec.get_u64("busy retry-after")?,
            }),
            MSG_ERROR => Ok(ServerMsg::Error {
                code: dec.get_u32("error code")?,
                message: dec.get_str("error message")?,
            }),
            MSG_PARTIAL => Ok(ServerMsg::Partial {
                points: dec.get_u64("partial points")?,
                served_leaves: dec.get_u64("partial served leaves")?,
                total_leaves: dec.get_u64("partial total leaves")?,
            }),
            tag => Err(WireError::BadTag {
                what: "server message tag",
                tag: tag as u64,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bat_geom::Aabb;

    #[test]
    fn request_roundtrip() {
        let r = Request {
            query: Query::new()
                .with_quality(0.4)
                .with_prev_quality(0.2)
                .with_bounds(Aabb::unit())
                .with_filter(1, -2.0, 5.0)
                .with_allow_partial(true),
        };
        assert_eq!(Request::decode(&r.encode()).unwrap(), r);
    }

    #[test]
    fn server_msgs_roundtrip() {
        let msgs = [
            ServerMsg::Schema(Schema {
                descs: vec![AttributeDesc::f64("m"), AttributeDesc::f32("t")],
                total_particles: 99,
            }),
            ServerMsg::Chunk(Chunk {
                positions: vec![Vec3::new(1.0, 2.0, 3.0), Vec3::ZERO],
                attrs: vec![4.0, 5.0, 6.0, 7.0],
                num_attrs: 2,
            }),
            ServerMsg::Done { points: 123 },
            ServerMsg::Busy { retry_after_ms: 25 },
            ServerMsg::Error {
                code: ERR_DEADLINE,
                message: "query deadline expired after 3/9 treelets".into(),
            },
            ServerMsg::Partial {
                points: 70,
                served_leaves: 7,
                total_leaves: 9,
            },
        ];
        for m in msgs {
            assert_eq!(ServerMsg::decode(&m.encode()).unwrap(), m);
        }
    }

    #[test]
    fn framing_roundtrip_and_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        let mut r = std::io::Cursor::new(buf);
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn truncated_frame_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(buf.len() - 2);
        let mut r = std::io::Cursor::new(buf);
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn wrong_tags_rejected() {
        let done = ServerMsg::Done { points: 1 }.encode();
        assert!(Request::decode(&done).is_err());
        let req = Request {
            query: Query::new(),
        }
        .encode();
        assert!(ServerMsg::decode(&req).is_err());
    }

    #[test]
    fn chunk_accessors() {
        let c = Chunk {
            positions: vec![Vec3::ZERO, Vec3::ONE],
            attrs: vec![1.0, 2.0, 3.0, 4.0],
            num_attrs: 2,
        };
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
        assert_eq!(c.attr(0, 1), 2.0);
        assert_eq!(c.attr(1, 0), 3.0);
    }
}
