//! The streaming server: serves a dataset to concurrent viewer clients
//! through the bounded bat-serve front-end (DESIGN.md §12).
//!
//! Sessions no longer *execute* queries — they submit them to a shared
//! [`ServePool`] and relay the resulting chunks, so total query
//! concurrency is the pool's worker count no matter how many clients
//! connect. A full queue surfaces to the client as `Busy { retry_after }`,
//! a deadline or execution failure as a typed `Error`; both leave the
//! session open.

use crate::protocol::{
    read_frame, write_frame, Chunk, Request, Schema, ServerMsg, CHUNK_POINTS, ERR_BAD_QUERY,
    ERR_DEADLINE, ERR_INTERNAL,
};
use bat_serve::{cache, query_priority, QueryPlan, ServeError, ServeOptions, ServePool};
use libbat::Dataset;
use std::io::BufWriter;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A bound but not yet running server.
pub struct StreamServer {
    listener: TcpListener,
    dataset: Arc<Dataset>,
    options: ServeOptions,
}

/// Control handle for a running server.
pub struct ServerHandle {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
    thread: Option<std::thread::JoinHandle<()>>,
}

/// Shared serving context: the dataset, the worker pool, and the deadline
/// policy every session applies.
struct ServeCtx {
    dataset: Arc<Dataset>,
    pool: ServePool,
    deadline: Option<Duration>,
}

impl StreamServer {
    /// Bind to `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) serving
    /// `dataset` with environment-resolved serving options.
    pub fn bind(addr: &str, dataset: Dataset) -> std::io::Result<StreamServer> {
        StreamServer::bind_with(addr, dataset, ServeOptions::from_env())
    }

    /// Bind with explicit serving options (worker count, queue depth,
    /// per-query deadline, dataset-private cache).
    pub fn bind_with(
        addr: &str,
        dataset: Dataset,
        options: ServeOptions,
    ) -> std::io::Result<StreamServer> {
        let listener = TcpListener::bind(addr)?;
        if let Some(c) = &options.cache {
            dataset.set_cache(Some(c.clone()));
        }
        Ok(StreamServer {
            listener,
            dataset: Arc::new(dataset),
            options,
        })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Start accepting connections on a background thread. Each connection
    /// gets a session thread that reads requests and relays replies;
    /// query execution happens on the shared bounded pool. Session
    /// threads are tracked and joined on shutdown.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let stop = Arc::new(AtomicBool::new(false));
        let addr = self.local_addr()?;
        let stop2 = stop.clone();
        let ctx = Arc::new(ServeCtx {
            dataset: self.dataset,
            pool: ServePool::new(self.options.pool_config()),
            deadline: self.options.deadline,
        });
        let listener = self.listener;
        let thread = std::thread::spawn(move || {
            let mut sessions: Vec<std::thread::JoinHandle<()>> = Vec::new();
            // Blocking accept: the loop sleeps in the kernel until a
            // connection arrives. Shutdown wakes it with a self-connect
            // (see ServerHandle::stop_and_join), observed via the stop
            // flag before the connection is served.
            while let Ok((stream, _)) = listener.accept() {
                if stop2.load(Ordering::Acquire) {
                    break;
                }
                let ctx = ctx.clone();
                sessions.push(std::thread::spawn(move || {
                    // A failed session only affects that client.
                    let _ = serve_connection(stream, &ctx);
                }));
                // Opportunistically reap finished sessions so a
                // long-lived server doesn't accumulate handles.
                sessions.retain(|s| !s.is_finished());
            }
            // Join every live session: their in-flight pool jobs finish
            // because the pool drains only after this (ctx drop).
            for s in sessions {
                s.join().ok();
            }
        });
        Ok(ServerHandle {
            stop,
            addr,
            thread: Some(thread),
        })
    }
}

impl ServerHandle {
    /// Wrap an accept-loop thread (shared with the shard front, which
    /// reuses the self-connect shutdown wakeup).
    pub(crate) fn new(
        stop: Arc<AtomicBool>,
        addr: SocketAddr,
        thread: std::thread::JoinHandle<()>,
    ) -> ServerHandle {
        ServerHandle {
            stop,
            addr,
            thread: Some(thread),
        }
    }

    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting connections, join every session thread, and drain
    /// the worker pool. In-flight requests finish.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Wake the blocking accept; the accept loop re-checks the stop
        // flag before serving the connection. If the connect fails the
        // listener is already gone and the loop has exited.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            t.join().ok();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// What a worker sends back to the session thread for one request.
enum Reply {
    Chunk(Chunk),
    Done { points: u64 },
    Failed(ServeError),
}

/// Serve one client session: schema first, then request/stream cycles until
/// the client disconnects.
fn serve_connection(stream: TcpStream, ctx: &ServeCtx) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    let mut reader = stream.try_clone()?;
    let mut writer = BufWriter::new(stream);

    // Session preamble: the schema.
    let ds = &ctx.dataset;
    let schema = ServerMsg::Schema(Schema {
        descs: ds.descs().to_vec(),
        total_particles: ds.num_particles(),
    });
    write_frame(&mut writer, &schema.encode())?;
    use std::io::Write;
    writer.flush()?;

    while let Some(payload) = read_frame(&mut reader)? {
        // The `stream.serve` failpoint: `delay:MS` injects per-request
        // latency (the sleep happens inside `fire`), any other action
        // fails the session — the client observes a clean disconnect
        // mid-request, never a torn frame parsed as data.
        bat_faults::fire_io("stream.serve")?;
        let req_span = bat_obs::span("stream.request_ns");
        let mut bytes_out = 0u64;
        let request = Request::decode(&payload)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;

        // The deadline covers queue wait + execution: it starts when the
        // request is submitted, not when a worker picks it up.
        let deadline = ctx.deadline.map(|d| Instant::now() + d);
        let (tx, rx) = mpsc::sync_channel::<Reply>(4);
        let job_ds = ctx.dataset.clone();
        let query = request.query.clone();
        let submitted = ctx.pool.submit(move || {
            run_query(&job_ds, &query, deadline, &tx);
        });
        if let Err(rejected) = submitted {
            let retry_after_ms = rejected.retry_after.as_millis() as u64;
            let busy = ServerMsg::Busy { retry_after_ms }.encode();
            write_frame(&mut writer, &busy)?;
            writer.flush()?;
            bat_obs::counter_add("stream.bytes_sent", busy.len() as u64);
            req_span.end();
            continue;
        }

        // Relay worker replies to the socket. The channel closes when the
        // worker is done with the request, whatever the outcome.
        let mut sent = 0u64;
        for reply in rx {
            let encoded = match reply {
                Reply::Chunk(c) => {
                    sent += c.len() as u64;
                    ServerMsg::Chunk(c).encode()
                }
                Reply::Done { points } => ServerMsg::Done { points }.encode(),
                Reply::Failed(e) => {
                    let code = match &e {
                        ServeError::DeadlineExpired { .. } => ERR_DEADLINE,
                        ServeError::Query(_) => ERR_BAD_QUERY,
                        _ => ERR_INTERNAL,
                    };
                    ServerMsg::Error {
                        code,
                        message: e.to_string(),
                    }
                    .encode()
                }
            };
            bytes_out += encoded.len() as u64;
            write_frame(&mut writer, &encoded)?;
        }
        writer.flush()?;
        bat_obs::counter_add("stream.requests", 1);
        bat_obs::counter_add("stream.bytes_sent", bytes_out);
        bat_obs::counter_add("stream.points_sent", sent);
        req_span.end();
    }
    Ok(())
}

/// Execute one request on a pool worker: plan, run with the deadline, and
/// stream bounded chunks back through `tx`. Channel sends fail only when
/// the session died; execution then stops silently — there is nobody left
/// to tell.
fn run_query(
    ds: &Dataset,
    query: &bat_layout::Query,
    deadline: Option<Instant>,
    tx: &mpsc::SyncSender<Reply>,
) {
    // Cache admission follows the query class: interactive reads may
    // evict bulk pages, never the other way around.
    let _prio = cache::set_thread_priority(query_priority(query));
    // The `serve.exec` failpoint: `delay:MS` stalls execution on the
    // worker — after the deadline clock started — which is how the fault
    // suite proves deadlines fire.
    if let Err(e) = bat_faults::fire_io("serve.exec") {
        let _ = tx.send(Reply::Failed(ServeError::Io(e)));
        return;
    }
    let plan = match QueryPlan::new(ds, query) {
        Ok(p) => p,
        Err(e) => {
            let _ = tx.send(Reply::Failed(e));
            return;
        }
    };
    let num_attrs = ds.descs().len();
    let mut chunk = Chunk {
        positions: Vec::with_capacity(CHUNK_POINTS),
        attrs: Vec::with_capacity(CHUNK_POINTS * num_attrs),
        num_attrs,
    };
    let mut receiver_gone = false;
    let result = plan.execute(deadline, |p| {
        if receiver_gone {
            return;
        }
        chunk.positions.push(p.position);
        chunk.attrs.extend_from_slice(p.attrs);
        if chunk.len() == CHUNK_POINTS {
            let full = std::mem::take(&mut chunk);
            chunk.num_attrs = num_attrs;
            chunk.positions.reserve(CHUNK_POINTS);
            if tx.send(Reply::Chunk(full)).is_err() {
                receiver_gone = true;
            }
        }
    });
    if receiver_gone {
        return;
    }
    match result {
        Ok(stats) => {
            if !chunk.is_empty() {
                let last = std::mem::take(&mut chunk);
                if tx.send(Reply::Chunk(last)).is_err() {
                    return;
                }
            }
            let _ = tx.send(Reply::Done {
                points: stats.points_returned,
            });
        }
        Err(e) => {
            let _ = tx.send(Reply::Failed(e));
        }
    }
}
