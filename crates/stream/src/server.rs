//! The streaming server: serves a dataset to concurrent viewer clients.

use crate::protocol::{read_frame, write_frame, Chunk, Request, Schema, ServerMsg, CHUNK_POINTS};
use libbat::Dataset;
use std::io::BufWriter;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A bound but not yet running server.
pub struct StreamServer {
    listener: TcpListener,
    dataset: Arc<Dataset>,
}

/// Control handle for a running server.
pub struct ServerHandle {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl StreamServer {
    /// Bind to `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) serving
    /// `dataset`.
    pub fn bind(addr: &str, dataset: Dataset) -> std::io::Result<StreamServer> {
        let listener = TcpListener::bind(addr)?;
        Ok(StreamServer {
            listener,
            dataset: Arc::new(dataset),
        })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener")
    }

    /// Start accepting connections on a background thread. Each connection
    /// gets its own session thread; queries within a session run
    /// sequentially (the viewer protocol is request/response).
    pub fn spawn(self) -> ServerHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let addr = self.local_addr();
        let stop2 = stop.clone();
        let thread = std::thread::spawn(move || {
            self.listener
                .set_nonblocking(true)
                .expect("nonblocking listener");
            loop {
                if stop2.load(Ordering::Acquire) {
                    break;
                }
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        let ds = self.dataset.clone();
                        std::thread::spawn(move || {
                            // A failed session only affects that client.
                            let _ = serve_connection(stream, &ds);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(std::time::Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
        });
        ServerHandle {
            stop,
            addr,
            thread: Some(thread),
        }
    }
}

impl ServerHandle {
    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting connections and join the accept loop. In-flight
    /// sessions finish their current request.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            t.join().ok();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            t.join().ok();
        }
    }
}

/// Serve one client session: schema first, then request/stream cycles until
/// the client disconnects.
fn serve_connection(stream: TcpStream, ds: &Dataset) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    let mut reader = stream.try_clone()?;
    let mut writer = BufWriter::new(stream);

    // Session preamble: the schema.
    let schema = ServerMsg::Schema(Schema {
        descs: ds.descs().to_vec(),
        total_particles: ds.num_particles(),
    });
    write_frame(&mut writer, &schema.encode())?;
    use std::io::Write;
    writer.flush()?;

    while let Some(payload) = read_frame(&mut reader)? {
        // The `stream.serve` failpoint: `delay:MS` injects per-request
        // latency (the sleep happens inside `fire`), any other action
        // fails the session — the client observes a clean disconnect
        // mid-request, never a torn frame parsed as data.
        bat_faults::fire_io("stream.serve")?;
        let req_span = bat_obs::span("stream.request_ns");
        let mut bytes_out = 0u64;
        let request = Request::decode(&payload)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;

        // Stream the query's results in bounded chunks.
        let num_attrs = ds.descs().len();
        let mut chunk = Chunk {
            positions: Vec::with_capacity(CHUNK_POINTS),
            attrs: Vec::with_capacity(CHUNK_POINTS * num_attrs),
            num_attrs,
        };
        let mut sent = 0u64;
        let mut io_err: Option<std::io::Error> = None;
        let result = ds.query(&request.query, |p| {
            if io_err.is_some() {
                return;
            }
            chunk.positions.push(p.position);
            chunk.attrs.extend_from_slice(p.attrs);
            if chunk.len() == CHUNK_POINTS {
                sent += chunk.len() as u64;
                let msg = ServerMsg::Chunk(std::mem::take(&mut chunk));
                chunk.num_attrs = num_attrs;
                chunk.positions.reserve(CHUNK_POINTS);
                let encoded = msg.encode();
                bytes_out += encoded.len() as u64;
                if let Err(e) = write_frame(&mut writer, &encoded) {
                    io_err = Some(e);
                }
            }
        });
        if let Some(e) = io_err {
            return Err(e);
        }
        result.map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        if !chunk.is_empty() {
            sent += chunk.len() as u64;
            let msg = ServerMsg::Chunk(std::mem::take(&mut chunk));
            let encoded = msg.encode();
            bytes_out += encoded.len() as u64;
            write_frame(&mut writer, &encoded)?;
        }
        let done = ServerMsg::Done { points: sent }.encode();
        bytes_out += done.len() as u64;
        write_frame(&mut writer, &done)?;
        writer.flush()?;
        bat_obs::counter_add("stream.requests", 1);
        bat_obs::counter_add("stream.bytes_sent", bytes_out);
        bat_obs::counter_add("stream.points_sent", sent);
        req_span.end();
    }
    Ok(())
}
