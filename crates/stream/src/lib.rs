//! Progressive particle streaming: the paper's prototype viewer backend
//! (Fig. 4).
//!
//! The paper demonstrates "a prototype web viewer client that progressively
//! streams data from a server. The server uses our BAT layout to
//! progressively load and send data back to clients and apply spatial- and
//! attribute-based filtering." This crate reproduces that server/client
//! pair over plain TCP with the workspace's own wire codec (no HTTP stack
//! needed for the reproduction; the protocol is trivially carried over a
//! WebSocket in a production deployment):
//!
//! - [`StreamServer`] owns an opened [`libbat::Dataset`] and serves any
//!   number of concurrent clients; sessions relay work to a bounded
//!   bat-serve worker pool, so query concurrency (and queueing) is
//!   bounded no matter how many clients connect. A client sends
//!   [`Request`]s — a [`bat_layout::Query`] with quality, progressive
//!   baseline, bounds, and attribute filters — and receives the matching
//!   points in bounded [`Chunk`]s, so a viewer can draw while data is still
//!   arriving.
//! - [`StreamClient`] drives a session: typically a progressive sweep
//!   (`quality 0.1, 0.2, ...` with `prev_quality` set to the last request)
//!   while the user pans/zooms (new bounds) or brushes attribute ranges
//!   (new filters).
//!
//! ```
//! # use bat_geom::{Aabb, Vec3};
//! # use bat_layout::{AttributeDesc, ParticleSet, Query};
//! # use bat_comm::Cluster;
//! # use libbat::write::{write_particles, WriteConfig};
//! # let dir = std::env::temp_dir().join(format!("bat-stream-doc-{}", std::process::id()));
//! # std::fs::create_dir_all(&dir).unwrap();
//! # let d2 = dir.clone();
//! # Cluster::run(2, move |comm| {
//! #     let mut set = ParticleSet::new(vec![AttributeDesc::f64("m")]);
//! #     let lo = comm.rank() as f32 * 0.5;
//! #     for i in 0..500 {
//! #         set.push(Vec3::new(lo + (i as f32 + 0.5) / 1000.0, 0.5, 0.5), &[i as f64]);
//! #     }
//! #     let b = Aabb::new(Vec3::new(lo, 0.0, 0.0), Vec3::new(lo + 0.5, 1.0, 1.0));
//! #     let cfg = WriteConfig::with_target_size(16 << 10, set.bytes_per_particle() as u64);
//! #     write_particles(&comm, set, b, &cfg, &d2, "ds").unwrap();
//! # });
//! use bat_stream::{StreamClient, StreamServer};
//!
//! let server = StreamServer::bind("127.0.0.1:0", libbat::Dataset::open(&dir, "ds").unwrap()).unwrap();
//! let addr = server.local_addr().unwrap();
//! let handle = server.spawn().unwrap();
//!
//! let mut client = StreamClient::connect(addr).unwrap();
//! let mut points = 0;
//! client.request(&Query::new().with_quality(0.5), |chunk| {
//!     points += chunk.len();
//! }).unwrap();
//! assert!(points > 0);
//! drop(client);
//! handle.shutdown();
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

pub mod client;
pub mod protocol;
pub mod server;
pub mod shard;
pub mod supervise;

pub use client::{RequestError, StreamClient};
pub use protocol::{
    Chunk, Request, ServerMsg, CHUNK_POINTS, ERR_BAD_QUERY, ERR_DEADLINE, ERR_INTERNAL, ERR_SHARD,
};
pub use server::{ServerHandle, StreamServer};
pub use shard::{
    owned_leaves, replica_owners, run_shard, shard_of, QueryOutcome, ShardFront, ShardQueryError,
    ShardRouter, ROUTER_RANK,
};
pub use supervise::{supervise, Supervisor, SupervisorConfig};
