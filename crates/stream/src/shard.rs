//! The shard fabric: one thin router process fanning queries out to N
//! shard processes over a `bat-comm` cluster (DESIGN.md §14, §16).
//!
//! Each shard owns a contiguous slice of the aggregation tree's leaf
//! files ([`owned_leaves`]) and plans/executes queries against only its
//! slice ([`bat_serve::QueryPlan::for_leaves`]). The router computes the
//! *global* plan order (metadata only — no treelet pages), tells each
//! owning shard which of its leaves to run and in what order, then merges
//! the per-leaf result streams back into exactly the single-process
//! answer:
//!
//! ```text
//! router → shard   Ctrl::Query { req_tag, budget, query, leaves }   (tag TAG_CTRL)
//! shard  → router  Chunk { ≤ CHUNK_POINTS points }                  (tag req_tag, repeated)
//! shard  → router  LeafDone { leaf }                                (after each leaf)
//! shard  → router  Done { points } | Failed { code, message }       (end of request)
//! ```
//!
//! Correctness of the merge rests on two invariants: per-file planning is
//! independent of which other files exist (so a shard's restricted plan
//! equals the global plan's slice), and `bat-comm` guarantees per-(source,
//! tag) FIFO delivery (so one shard's frames arrive in emission order).
//! The router consumes frames leaf-by-leaf in global plan order; frames
//! from not-yet-merged shards simply wait in the mailbox.
//!
//! # Self-healing (DESIGN.md §16)
//!
//! With `BAT_SHARD_REPLICAS ≥ 2` every leaf slice has a replica chain
//! ([`replica_owners`]) and the router becomes a routing *policy* layer on
//! top of the same wire protocol:
//!
//! * **Failover** — a failed or silent sub-query is re-dispatched from the
//!   current merge position to the next untried replica, with bounded
//!   backoff (`BAT_SHARD_RETRY_MS`), instead of surfacing `ERR_SHARD`.
//! * **Hedged reads** — when the current leaf has been pending longer than
//!   a latency budget (fixed `BAT_SHARD_HEDGE_MS`, or 3× the streaming
//!   per-leaf p99 once warmed), the remaining slice is speculatively
//!   issued to a replica and the merge takes whichever stream completes
//!   each leaf first. Chunk boundaries are deterministic per leaf, so the
//!   winning stream is byte-identical either way.
//! * **Circuit breaker** — per-shard closed/open/half-open state
//!   (`BAT_SHARD_BREAKER_*`) steers initial placement and hedges away
//!   from recently failing shards; a half-open shard admits one probe.
//! * **Degraded mode** — when a slice's chain is exhausted and the query
//!   opted in (`Query::allow_partial`), its remaining leaves are skipped
//!   and the outcome reports `served_leaves < total_leaves`; partial data
//!   is never folded into a complete result.
//!
//! Because replica routing is purely router-side (workers always open the
//! full dataset and plan whatever slice they are handed), `replicas = 1`
//! reduces exactly to the original fabric: one stream per slice, strict
//! per-shard `Done` accounting, and typed errors on any failure.
//!
//! Failure semantics: every router receive is deadline-bounded, so a shard
//! killed mid-query surfaces as a typed [`ShardQueryError`] within the
//! wait budget — never a hang, and never partial bytes presented as a
//! complete result (the client sees `Error` or `Partial`, not `Done`).

use crate::protocol::{
    decode_chunk, encode_chunk, Chunk, CHUNK_POINTS, ERR_BAD_QUERY, ERR_DEADLINE, ERR_INTERNAL,
};
use bat_comm::{Comm, CommError, MAX_USER_TAG};
use bat_layout::Query;
pub use bat_serve::{owned_leaves, replica_owners, shard_of};
use bat_serve::{QueryPlan, ServeError};
use bat_wire::{Decoder, Encoder, WireError, WireResult};
use bytes::Bytes;
use libbat::Dataset;
use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The router's rank in the shard cluster; shards are ranks `1..=N`.
pub const ROUTER_RANK: usize = 0;

/// Control tag (router → shard).
const TAG_CTRL: u32 = 1;
/// Heartbeat tag (supervisor ping ↔ worker pong); separate from control
/// so liveness probes never queue behind fanned-out queries.
pub(crate) const TAG_HEARTBEAT: u32 = 2;
/// Cancellation tag (router → shard): a retired request tag whose frames
/// the worker should stop producing.
const TAG_CANCEL: u32 = 3;
/// First per-query streaming tag; each dispatched stream allocates a tag
/// round-robin above this so concurrent fan-outs (and a slice's replica
/// streams) never share a (source, tag) stream.
const FIRST_REQ_TAG: u32 = 64;

/// Grace on top of the query's own deadline, so a shard's typed
/// `DeadlineExpired` beats the router's transport timeout.
const DEADLINE_GRACE: Duration = Duration::from_secs(2);

/// How long the router waits on a silent shard when the query has no
/// deadline of its own (`BAT_SHARD_WAIT_MS`, default 30 s).
fn shard_wait() -> Duration {
    std::env::var("BAT_SHARD_WAIT_MS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .map(Duration::from_millis)
        .unwrap_or(Duration::from_secs(30))
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(default)
}

// ---------------------------------------------------------------------------
// Routing policy (read once per router, so tests can scope env changes)
// ---------------------------------------------------------------------------

/// When the router issues a speculative replica stream for a slow leaf.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Hedge {
    /// Never hedge.
    Off,
    /// Budget = 3× the streaming per-leaf p99, clamped to
    /// `[25 ms, BAT_SHARD_WAIT_MS]`, once ≥ 16 leaves have been observed.
    Auto,
    /// Fixed budget.
    Fixed(Duration),
}

impl Hedge {
    /// `BAT_SHARD_HEDGE_MS`: unset or `auto` → [`Hedge::Auto`]; `0` or
    /// `off` → [`Hedge::Off`]; a number → fixed budget in ms.
    fn parse(v: Option<&str>) -> Hedge {
        match v.map(str::trim) {
            None | Some("") | Some("auto") => Hedge::Auto,
            Some("0") | Some("off") => Hedge::Off,
            Some(s) => s
                .parse::<u64>()
                .map(|ms| Hedge::Fixed(Duration::from_millis(ms)))
                .unwrap_or(Hedge::Auto),
        }
    }
}

/// The self-healing knobs, snapshotted at [`ShardRouter::new`].
#[derive(Debug, Clone, Copy)]
struct RouterPolicy {
    /// Owners per leaf slice (`BAT_SHARD_REPLICAS`, default 1 = the
    /// original primary-only fabric).
    replicas: usize,
    hedge: Hedge,
    /// Base failover backoff (`BAT_SHARD_RETRY_MS`), doubled per retry.
    retry_backoff: Duration,
    /// Consecutive failures that open a shard's breaker
    /// (`BAT_SHARD_BREAKER_FAILS`).
    breaker_fails: u32,
    /// How long an open breaker rejects before half-opening
    /// (`BAT_SHARD_BREAKER_COOLDOWN_MS`).
    breaker_cooldown: Duration,
}

impl RouterPolicy {
    fn from_env() -> RouterPolicy {
        RouterPolicy {
            replicas: env_u64("BAT_SHARD_REPLICAS", 1).max(1) as usize,
            hedge: Hedge::parse(std::env::var("BAT_SHARD_HEDGE_MS").ok().as_deref()),
            retry_backoff: Duration::from_millis(env_u64("BAT_SHARD_RETRY_MS", 10).max(1)),
            breaker_fails: env_u64("BAT_SHARD_BREAKER_FAILS", 3).max(1) as u32,
            breaker_cooldown: Duration::from_millis(env_u64("BAT_SHARD_BREAKER_COOLDOWN_MS", 1000)),
        }
    }
}

// ---------------------------------------------------------------------------
// Per-shard circuit breaker
// ---------------------------------------------------------------------------

#[derive(Default)]
struct BreakerInner {
    consecutive: u32,
    opened_at: Option<Instant>,
    /// A half-open probe is in flight; further admits are rejected until
    /// it reports.
    probing: bool,
}

/// Closed / open / half-open breaker over one shard's recent failures.
#[derive(Default)]
struct Breaker {
    inner: Mutex<BreakerInner>,
}

impl Breaker {
    /// May a new sub-query be routed to this shard? An open breaker past
    /// its cooldown admits exactly one half-open probe.
    fn admit(&self, cooldown: Duration) -> bool {
        let mut g = self.inner.lock().unwrap();
        match g.opened_at {
            None => true,
            Some(t) if t.elapsed() >= cooldown => {
                if g.probing {
                    false
                } else {
                    g.probing = true;
                    true
                }
            }
            Some(_) => false,
        }
    }

    fn success(&self) {
        let mut g = self.inner.lock().unwrap();
        *g = BreakerInner::default();
    }

    /// Record a failure; returns true when this failure newly opened the
    /// breaker.
    fn failure(&self, threshold: u32) -> bool {
        let mut g = self.inner.lock().unwrap();
        g.consecutive += 1;
        g.probing = false;
        let newly = g.opened_at.is_none() && g.consecutive >= threshold;
        if g.consecutive >= threshold {
            // Re-arm the cooldown on every failure at/over the threshold.
            g.opened_at = Some(Instant::now());
        }
        newly
    }

    /// 0 = closed, 1 = open, 2 = half-open (probe in flight).
    fn gauge(&self) -> f64 {
        let g = self.inner.lock().unwrap();
        match (g.opened_at, g.probing) {
            (None, _) => 0.0,
            (Some(_), true) => 2.0,
            (Some(_), false) => 1.0,
        }
    }
}

// ---------------------------------------------------------------------------
// Wire messages (bat-wire encoded payloads inside bat-comm messages)
// ---------------------------------------------------------------------------

const CTRL_QUERY: u8 = 1;
const CTRL_SHUTDOWN: u8 = 2;

/// Router → shard control message.
enum Ctrl {
    Query {
        /// Tag the shard streams this request's frames on.
        req_tag: u32,
        /// Remaining deadline budget in ms (0 = unbounded).
        budget_ms: u64,
        query: Query,
        /// The shard's leaves to execute, in global plan order.
        leaves: Vec<u32>,
    },
    Shutdown,
}

impl Ctrl {
    fn encode(&self) -> Bytes {
        let mut enc = Encoder::new();
        match self {
            Ctrl::Query {
                req_tag,
                budget_ms,
                query,
                leaves,
            } => {
                enc.put_u8(CTRL_QUERY);
                enc.put_u32(*req_tag);
                enc.put_u64(*budget_ms);
                query.encode(&mut enc);
                enc.put_u64(leaves.len() as u64);
                for &l in leaves {
                    enc.put_u32(l);
                }
            }
            Ctrl::Shutdown => enc.put_u8(CTRL_SHUTDOWN),
        }
        Bytes::from(enc.finish())
    }

    fn decode(payload: &[u8]) -> WireResult<Ctrl> {
        let mut dec = Decoder::new(payload);
        match dec.get_u8("ctrl tag")? {
            CTRL_QUERY => {
                let req_tag = dec.get_u32("ctrl req tag")?;
                let budget_ms = dec.get_u64("ctrl budget")?;
                let query = Query::decode(&mut dec)?;
                let n = dec.get_usize("ctrl leaf count")?;
                if n > (1 << 24) {
                    return Err(WireError::BadLength {
                        what: "ctrl leaf count",
                        len: n as u64,
                        remaining: dec.remaining(),
                    });
                }
                let mut leaves = Vec::with_capacity(n);
                for _ in 0..n {
                    leaves.push(dec.get_u32("ctrl leaf")?);
                }
                Ok(Ctrl::Query {
                    req_tag,
                    budget_ms,
                    query,
                    leaves,
                })
            }
            CTRL_SHUTDOWN => Ok(Ctrl::Shutdown),
            tag => Err(WireError::BadTag {
                what: "ctrl tag",
                tag: tag as u64,
            }),
        }
    }
}

/// Heartbeat kinds on [`TAG_HEARTBEAT`].
pub(crate) const HB_PING: u8 = 1;
pub(crate) const HB_PONG: u8 = 2;

pub(crate) fn encode_heartbeat(kind: u8, seq: u64) -> Bytes {
    let mut enc = Encoder::new();
    enc.put_u8(kind);
    enc.put_u64(seq);
    Bytes::from(enc.finish())
}

pub(crate) fn decode_heartbeat(payload: &[u8]) -> Option<(u8, u64)> {
    let mut dec = Decoder::new(payload);
    let kind = dec.get_u8("heartbeat kind").ok()?;
    let seq = dec.get_u64("heartbeat seq").ok()?;
    Some((kind, seq))
}

fn encode_cancel(req_tag: u32) -> Bytes {
    let mut enc = Encoder::new();
    enc.put_u32(req_tag);
    Bytes::from(enc.finish())
}

fn decode_cancel(payload: &[u8]) -> Option<u32> {
    Decoder::new(payload).get_u32("cancel req tag").ok()
}

const SHARD_CHUNK: u8 = 1;
const SHARD_LEAF_DONE: u8 = 2;
const SHARD_DONE: u8 = 3;
const SHARD_FAILED: u8 = 4;

/// Shard → router frame on a request's streaming tag.
enum ShardMsg {
    Chunk(Chunk),
    LeafDone { leaf: u32 },
    Done { points: u64 },
    Failed { code: u32, message: String },
}

impl ShardMsg {
    fn encode(&self) -> Bytes {
        let mut enc = Encoder::new();
        match self {
            ShardMsg::Chunk(c) => {
                enc.put_u8(SHARD_CHUNK);
                encode_chunk(&mut enc, c);
            }
            ShardMsg::LeafDone { leaf } => {
                enc.put_u8(SHARD_LEAF_DONE);
                enc.put_u32(*leaf);
            }
            ShardMsg::Done { points } => {
                enc.put_u8(SHARD_DONE);
                enc.put_u64(*points);
            }
            ShardMsg::Failed { code, message } => {
                enc.put_u8(SHARD_FAILED);
                enc.put_u32(*code);
                enc.put_str(message);
            }
        }
        Bytes::from(enc.finish())
    }

    fn decode(payload: &[u8]) -> WireResult<ShardMsg> {
        let mut dec = Decoder::new(payload);
        match dec.get_u8("shard msg tag")? {
            SHARD_CHUNK => Ok(ShardMsg::Chunk(decode_chunk(&mut dec)?)),
            SHARD_LEAF_DONE => Ok(ShardMsg::LeafDone {
                leaf: dec.get_u32("shard leaf")?,
            }),
            SHARD_DONE => Ok(ShardMsg::Done {
                points: dec.get_u64("shard points")?,
            }),
            SHARD_FAILED => Ok(ShardMsg::Failed {
                code: dec.get_u32("shard err code")?,
                message: dec.get_str("shard err message")?,
            }),
            tag => Err(WireError::BadTag {
                what: "shard msg tag",
                tag: tag as u64,
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// Shard worker
// ---------------------------------------------------------------------------

/// Request tags the router has retired; the worker stops producing for
/// them at leaf boundaries. Bounded so a long-lived worker can't grow it
/// without limit.
struct CancelSet {
    tags: VecDeque<u32>,
}

impl CancelSet {
    fn new() -> CancelSet {
        CancelSet {
            tags: VecDeque::new(),
        }
    }

    fn insert(&mut self, tag: u32) {
        if !self.tags.contains(&tag) {
            self.tags.push_back(tag);
            if self.tags.len() > 256 {
                self.tags.pop_front();
            }
        }
    }

    fn contains(&self, tag: u32) -> bool {
        self.tags.contains(&tag)
    }

    fn remove(&mut self, tag: u32) -> bool {
        if let Some(i) = self.tags.iter().position(|&t| t == tag) {
            self.tags.remove(i);
            true
        } else {
            false
        }
    }
}

/// Drain liveness pings (answering each with a pong) and cancellation
/// notices. Called from the worker's idle loop and at leaf boundaries, so
/// a worker busy streaming a long request still heartbeats.
///
/// The `shard.heartbeat` failpoint fires per ping: `delay:MS` makes the
/// pong late (a laggy-but-live worker), `error` drops it (a worker that
/// will be declared missing), `kill` marks the rank dead.
fn drain_control(comm: &dyn Comm, cancelled: &mut CancelSet) {
    while let Some(m) = comm.try_recv_raw(Some(ROUTER_RANK), TAG_HEARTBEAT) {
        if let Some((HB_PING, seq)) = decode_heartbeat(&m.payload) {
            match bat_faults::fire("shard.heartbeat") {
                Some(bat_faults::Fault::Kill) => comm.mark_dead(),
                Some(_) => {} // drop the pong: a silent worker
                None => comm.isend(ROUTER_RANK, TAG_HEARTBEAT, encode_heartbeat(HB_PONG, seq)),
            }
        }
    }
    while let Some(m) = comm.try_recv_raw(Some(ROUTER_RANK), TAG_CANCEL) {
        if let Some(tag) = decode_cancel(&m.payload) {
            cancelled.insert(tag);
        }
    }
}

/// Run a shard worker until the router shuts the cluster down (or dies).
/// `comm.rank()` must be in `1..=num_shards`; the worker serves queries
/// over whichever slice of `ds`'s leaves each request assigns, streaming
/// results back to [`ROUTER_RANK`], answering heartbeats, and honoring
/// cancellations at leaf boundaries.
pub fn run_shard(comm: &dyn Comm, ds: &Dataset) -> std::io::Result<()> {
    assert!(comm.rank() != ROUTER_RANK, "the router is not a shard");
    let mut cancelled = CancelSet::new();
    loop {
        // A rank that abandoned the protocol (fault kill) can no longer
        // be sent a shutdown: stop serving on its behalf.
        if comm.is_dead(comm.rank()) {
            return Ok(());
        }
        drain_control(comm, &mut cancelled);
        // Poll with a bounded receive so a dead router ends the worker
        // instead of parking it forever; short enough that heartbeats get
        // answered well inside a supervision interval.
        let msg = match comm.recv_timeout(Some(ROUTER_RANK), TAG_CTRL, Duration::from_millis(250)) {
            Ok(m) => m,
            Err(CommError::Timeout { .. }) => continue,
            Err(CommError::PeerDead { .. }) => return Ok(()),
            Err(e) => return Err(e.into()),
        };
        match Ctrl::decode(&msg.payload)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?
        {
            Ctrl::Shutdown => return Ok(()),
            Ctrl::Query {
                req_tag,
                budget_ms,
                query,
                leaves,
            } => {
                // A cancel can outrun its query when the router retires a
                // hedge it never needed; skip without producing frames.
                if cancelled.remove(req_tag) {
                    continue;
                }
                serve_one(
                    comm,
                    ds,
                    req_tag,
                    budget_ms,
                    &query,
                    &leaves,
                    &mut cancelled,
                );
                bat_obs::counter_add("shard.requests", 1);
            }
        }
    }
}

/// Execute one fanned-out request on a shard: plan the assigned slice, run
/// each leaf in the router's order, stream bounded chunks.
#[allow(clippy::too_many_arguments)]
fn serve_one(
    comm: &dyn Comm,
    ds: &Dataset,
    req_tag: u32,
    budget_ms: u64,
    query: &Query,
    leaves: &[u32],
    cancelled: &mut CancelSet,
) {
    let deadline = (budget_ms > 0).then(|| Instant::now() + Duration::from_millis(budget_ms));
    let fail = |e: &ServeError| {
        let code = match e {
            ServeError::DeadlineExpired { .. } => ERR_DEADLINE,
            ServeError::Query(_) => ERR_BAD_QUERY,
            _ => ERR_INTERNAL,
        };
        comm.isend(
            ROUTER_RANK,
            req_tag,
            ShardMsg::Failed {
                code,
                message: e.to_string(),
            }
            .encode(),
        );
    };
    let mut sorted = leaves.to_vec();
    sorted.sort_unstable();
    let plan = match QueryPlan::for_leaves(ds, query, &sorted) {
        Ok(p) => p,
        Err(e) => return fail(&e),
    };
    let num_attrs = ds.descs().len();
    let mut points = 0u64;
    let mut chunk = Chunk {
        positions: Vec::with_capacity(CHUNK_POINTS),
        attrs: Vec::with_capacity(CHUNK_POINTS * num_attrs),
        num_attrs,
    };
    for &leaf in leaves {
        // Leaf boundaries are the cancellation / liveness granularity: a
        // worker whose stream the router retired stops producing here
        // (silently — the router is already draining the tag), and a
        // worker mid-request still answers pings.
        drain_control(comm, cancelled);
        if cancelled.contains(req_tag) {
            return;
        }
        // The `shard.exec` failpoint: `delay:MS` makes this a slow shard
        // (the fault matrix's slow-peer case); `kill` abandons the
        // request mid-stream like a crash, with the rank marked dead so
        // the router fails fast instead of waiting out its deadline.
        if let Some(bat_faults::Fault::Kill) = bat_faults::fire("shard.exec") {
            comm.mark_dead();
            return;
        }
        let res = plan.execute_leaf(leaf, deadline, |p| {
            chunk.positions.push(p.position);
            chunk.attrs.extend_from_slice(p.attrs);
            if chunk.len() == CHUNK_POINTS {
                let full = std::mem::take(&mut chunk);
                chunk.num_attrs = num_attrs;
                points += full.len() as u64;
                comm.isend(ROUTER_RANK, req_tag, ShardMsg::Chunk(full).encode());
            }
        });
        if let Err(e) = res {
            return fail(&e);
        }
        // Flush the partial chunk at the leaf boundary: the router needs
        // every point of a leaf before the LeafDone marker so the merged
        // stream is leaf-contiguous in global plan order.
        if !chunk.is_empty() {
            let last = std::mem::take(&mut chunk);
            chunk.num_attrs = num_attrs;
            points += last.len() as u64;
            comm.isend(ROUTER_RANK, req_tag, ShardMsg::Chunk(last).encode());
        }
        comm.isend(ROUTER_RANK, req_tag, ShardMsg::LeafDone { leaf }.encode());
    }
    comm.isend(ROUTER_RANK, req_tag, ShardMsg::Done { points }.encode());
    bat_obs::counter_add("shard.points_sent", points);
}

// ---------------------------------------------------------------------------
// Router
// ---------------------------------------------------------------------------

/// Why a fanned-out query failed.
#[derive(Debug)]
pub enum ShardQueryError {
    /// Planning the global order failed locally (bad query, I/O).
    Plan(ServeError),
    /// A shard reported a typed execution failure (`ERR_*` codes).
    Shard {
        /// The failing shard (0-based).
        shard: usize,
        /// The `ERR_*` code it reported.
        code: u32,
        /// Its message.
        message: String,
    },
    /// A shard went silent or died mid-query; the wait was bounded. With
    /// replicas this is only surfaced once the whole replica chain is
    /// exhausted (and the query did not opt into partial results).
    Comm {
        /// The shard the router was waiting on (0-based).
        shard: usize,
        /// The transport-level error.
        error: CommError,
    },
}

impl std::fmt::Display for ShardQueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardQueryError::Plan(e) => write!(f, "shard fan-out planning: {e}"),
            ShardQueryError::Shard {
                shard,
                code,
                message,
            } => {
                write!(f, "shard {shard} failed (code {code}): {message}")
            }
            ShardQueryError::Comm { shard, error } => {
                write!(f, "shard {shard} unreachable: {error}")
            }
        }
    }
}

impl std::error::Error for ShardQueryError {}

impl From<ServeError> for ShardQueryError {
    fn from(e: ServeError) -> ShardQueryError {
        ShardQueryError::Plan(e)
    }
}

/// What a successful fan-out produced. `served_leaves < total_leaves`
/// only happens when the query opted in via [`Query::allow_partial`]; a
/// partial outcome is always announced, never folded into a complete one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryOutcome {
    /// Points handed to the sink.
    pub points: u64,
    /// Planned leaves actually merged.
    pub served_leaves: u64,
    /// Leaves the global plan wanted.
    pub total_leaves: u64,
}

impl QueryOutcome {
    /// True when degraded serving skipped part of the plan.
    pub fn is_partial(&self) -> bool {
        self.served_leaves < self.total_leaves
    }
}

/// A tag the router abandoned (hedge loser, failed-over stream): its
/// late frames are drained on subsequent queries until it expires.
struct Retired {
    shard: usize,
    tag: u32,
    expires: Instant,
}

/// One contiguous leaf slice's fan-out state: its replica chain, merge
/// position, and the stream(s) currently racing to serve it.
struct SubQuery {
    /// Primary owner (for error attribution).
    primary: usize,
    /// Replica chain, primary first.
    chain: Vec<usize>,
    /// This slice's leaves in global plan order.
    leaves: Vec<u32>,
    /// Next index into `leaves` to merge.
    next: usize,
    /// Active streams (one normally; two while a hedge races).
    streams: Vec<StreamCur>,
    /// Shards already dispatched to (never re-tried).
    dispatched: Vec<usize>,
    /// Failover re-dispatches so far (drives backoff).
    attempts: u32,
    /// Anything non-clean happened (failover, hedge, skip): per-shard
    /// `Done` accounting is no longer meaningful for this slice.
    dirty: bool,
    /// Degraded: merge position where the chain was exhausted and the
    /// remaining leaves abandoned (requires `Query::allow_partial`).
    skipped_at: Option<usize>,
    /// Most recent stream failure, surfaced if the chain is exhausted.
    last_err: Option<ShardQueryError>,
}

/// One dispatched stream: frames are parsed into completed per-leaf chunk
/// groups so the merge can take whole leaves from whichever replica
/// finishes first (chunk boundaries are deterministic per leaf, so the
/// merged bytes don't depend on the winner).
struct StreamCur {
    shard: usize,
    tag: u32,
    /// This is the later, speculative dispatch of a hedge pair.
    hedge: bool,
    /// Leaf index (into the slice) of the front of `groups`.
    base: usize,
    /// Completed leaves awaiting merge, in order from `base`.
    groups: VecDeque<Vec<Chunk>>,
    /// Chunks of the leaf currently being received.
    cur: Vec<Chunk>,
    /// Terminal `Done { points }` received.
    done: bool,
    done_points: u64,
    failed: Option<ShardQueryError>,
}

impl StreamCur {
    /// Leaf index the next incoming frame belongs to.
    fn recv_pos(&self) -> usize {
        self.base + self.groups.len()
    }

    /// Still expecting frames from the wire.
    fn receivable(&self) -> bool {
        !self.done && self.failed.is_none()
    }
}

/// The router: plans globally, fans out to owning shards (and their
/// replicas), merges streams. Shareable across session threads (receives
/// use per-stream tags, so concurrent fan-outs never steal each other's
/// frames).
pub struct ShardRouter {
    comm: Box<dyn Comm>,
    ds: Arc<Dataset>,
    next_tag: AtomicU32,
    policy: RouterPolicy,
    breakers: Vec<Breaker>,
    /// Streaming per-leaf merge latency (µs) — the hedge trigger's p99
    /// source. Router-owned (not the obs registry) so hedging works with
    /// observability disabled.
    leaf_latency: bat_obs::AtomicHistogram,
    retired: Mutex<Vec<Retired>>,
}

impl ShardRouter {
    /// Wrap the router rank's communicator (`comm.rank()` must be
    /// [`ROUTER_RANK`]; shards are the other `comm.size() - 1` ranks).
    /// Routing knobs (`BAT_SHARD_REPLICAS`, `BAT_SHARD_HEDGE_MS`,
    /// `BAT_SHARD_RETRY_MS`, `BAT_SHARD_BREAKER_*`) are snapshotted here.
    pub fn new(comm: Box<dyn Comm>, ds: Arc<Dataset>) -> ShardRouter {
        assert_eq!(comm.rank(), ROUTER_RANK, "the router must be rank 0");
        assert!(comm.size() >= 2, "a shard cluster needs at least one shard");
        let shards = comm.size() - 1;
        ShardRouter {
            comm,
            ds,
            next_tag: AtomicU32::new(0),
            policy: RouterPolicy::from_env(),
            breakers: (0..shards).map(|_| Breaker::default()).collect(),
            leaf_latency: bat_obs::AtomicHistogram::default(),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// Number of shard processes behind this router.
    pub fn num_shards(&self) -> usize {
        self.comm.size() - 1
    }

    /// Whether shard `shard` (0-based) is currently reachable — false
    /// after the transport observed its death, true again once a
    /// supervised respawn rejoins the mesh.
    pub fn shard_alive(&self, shard: usize) -> bool {
        !self.comm.is_dead(1 + shard)
    }

    /// The dataset served (for session schema preambles).
    pub fn dataset(&self) -> &Arc<Dataset> {
        &self.ds
    }

    /// Tell every shard to exit its serve loop, then tear down the
    /// router's own transport (idempotent; frames already written are
    /// flushed before connections close).
    pub fn shutdown(&self) {
        for shard in 0..self.num_shards() {
            self.comm
                .isend(1 + shard, TAG_CTRL, Ctrl::Shutdown.encode());
        }
        self.comm.shutdown();
    }

    fn fresh_tag(&self) -> u32 {
        let seq = self.next_tag.fetch_add(1, Ordering::Relaxed);
        FIRST_REQ_TAG + seq % (MAX_USER_TAG - FIRST_REQ_TAG)
    }

    fn admit(&self, shard: usize) -> bool {
        let ok = self.breakers[shard].admit(self.policy.breaker_cooldown);
        bat_obs::gauge_set(
            &format!("shard.breaker.state.{shard}"),
            self.breakers[shard].gauge(),
        );
        ok
    }

    fn breaker_failure(&self, shard: usize) {
        if self.breakers[shard].failure(self.policy.breaker_fails) {
            bat_obs::counter_add("shard.breaker.opened", 1);
        }
        bat_obs::gauge_set(
            &format!("shard.breaker.state.{shard}"),
            self.breakers[shard].gauge(),
        );
    }

    fn breaker_success(&self, shard: usize) {
        self.breakers[shard].success();
        bat_obs::gauge_set(&format!("shard.breaker.state.{shard}"), 0.0);
    }

    /// Tell `shard` to stop producing `tag` and remember to drain its
    /// late frames.
    fn cancel_and_retire(&self, shard: usize, tag: u32) {
        self.comm.isend(1 + shard, TAG_CANCEL, encode_cancel(tag));
        self.retired.lock().unwrap().push(Retired {
            shard,
            tag,
            expires: Instant::now() + Duration::from_secs(60),
        });
    }

    /// Drop queued frames of retired tags (mailbox hygiene between
    /// queries); entries whose terminal frame arrived — or that expired —
    /// are forgotten.
    fn scrub_retired(&self) {
        let mut retired = self.retired.lock().unwrap();
        retired.retain_mut(|r| {
            let mut terminal = false;
            while let Some(m) = self.comm.try_recv_raw(Some(1 + r.shard), r.tag) {
                if let Ok(ShardMsg::Done { .. } | ShardMsg::Failed { .. }) =
                    ShardMsg::decode(&m.payload)
                {
                    terminal = true;
                }
            }
            !terminal && r.expires > Instant::now()
        });
    }

    /// Fan `q` out to the owning shards (and, on failure or latency,
    /// their replicas) and merge the result streams in global plan order,
    /// handing each merged chunk to `sink`. Every receive is bounded by
    /// the remaining `deadline` (plus a relay grace period) or
    /// `BAT_SHARD_WAIT_MS`, so a killed or wedged fabric yields a typed
    /// error — never a hang — and chunks already sunk are explicitly
    /// partial (`Err`, or an `Ok` outcome that says so).
    pub fn query(
        &self,
        q: &Query,
        deadline: Option<Duration>,
        mut sink: impl FnMut(Chunk),
    ) -> Result<QueryOutcome, ShardQueryError> {
        self.scrub_retired();
        let num_leaves = self.ds.meta().leaves.len();
        let num_shards = self.num_shards();
        let expires = deadline.map(|d| Instant::now() + d);

        // Global plan: metadata + file heads only; execution happens on
        // the shards. Its file order is the merge order.
        let plan = QueryPlan::new(&self.ds, q)?;
        let order: Vec<u32> = plan.file_order().collect();
        let mut assigned: Vec<Vec<u32>> = vec![Vec::new(); num_shards];
        for &leaf in &order {
            assigned[shard_of(leaf, num_leaves, num_shards)].push(leaf);
        }

        let run = RouterRun {
            router: self,
            q,
            expires,
            last_progress: Cell::new(Instant::now()),
        };

        // One sub-query per participating primary; `sub_of[s]` maps a
        // primary shard back to its slot.
        let mut subs: Vec<SubQuery> = Vec::new();
        let mut sub_of: Vec<Option<usize>> = vec![None; num_shards];
        for (s, leaves) in assigned.iter_mut().enumerate() {
            if leaves.is_empty() {
                continue;
            }
            let mut sub = SubQuery {
                primary: s,
                chain: replica_owners(s, num_shards, self.policy.replicas),
                leaves: std::mem::take(leaves),
                next: 0,
                streams: Vec::new(),
                dispatched: Vec::new(),
                attempts: 0,
                dirty: false,
                skipped_at: None,
                last_err: None,
            };
            let owner = run.initial_owner(&sub);
            let stream = run.dispatch(&mut sub, owner, false);
            sub.streams.push(stream);
            sub_of[s] = Some(subs.len());
            subs.push(sub);
        }

        // Merge leaf-by-leaf in global order. Per-(source, tag) FIFO means
        // each stream's frames arrive in emission order; frames from
        // slices later in the merge wait in the mailbox (or in their
        // stream's completed-leaf groups).
        let mut points = 0u64;
        let mut served = 0u64;
        for &leaf in &order {
            let si = sub_of[shard_of(leaf, num_leaves, num_shards)].expect("assigned leaf");
            if let Some(chunks) = run.merge_leaf(&mut subs[si])? {
                for c in chunks {
                    points += c.len() as u64;
                    sink(c);
                }
                served += 1;
            }
        }

        run.finalize(&mut subs, points)?;

        let skipped = order.len() as u64 - served;
        if skipped > 0 {
            bat_obs::counter_add("shard.partial.queries", 1);
            bat_obs::counter_add("shard.partial.leaves_skipped", skipped);
        }
        bat_obs::counter_add("router.requests", 1);
        bat_obs::counter_add("router.points_merged", points);
        self.scrub_retired();
        Ok(QueryOutcome {
            points,
            served_leaves: served,
            total_leaves: order.len() as u64,
        })
    }
}

/// One query's routing pass: the merge engine with failover, hedging, and
/// breaker bookkeeping. Stack-local to [`ShardRouter::query`].
struct RouterRun<'a> {
    router: &'a ShardRouter,
    q: &'a Query,
    expires: Option<Instant>,
    /// Last time any frame arrived; the silence bound for unbounded
    /// queries is measured from here.
    last_progress: Cell<Instant>,
}

impl RouterRun<'_> {
    /// How much longer the router may wait without any frame arriving
    /// before declaring the active streams silent.
    fn remaining_silence(&self) -> Duration {
        match self.expires {
            // Grace on top of the shard's own budget, so the shard's
            // typed DeadlineExpired beats the router's Timeout.
            Some(e) => (e + DEADLINE_GRACE).saturating_duration_since(Instant::now()),
            None => shard_wait().saturating_sub(self.last_progress.get().elapsed()),
        }
    }

    /// First choice of owner for a slice: the first live, admitted shard
    /// in the chain; failing that any live one; failing that the primary
    /// (whose fast PeerDead keeps the error typed and bounded). A
    /// single-owner chain always dispatches to its primary — exactly the
    /// `replicas = 1` fabric.
    fn initial_owner(&self, sub: &SubQuery) -> usize {
        if sub.chain.len() == 1 {
            return sub.chain[0];
        }
        let alive: Vec<usize> = sub
            .chain
            .iter()
            .copied()
            .filter(|&s| !self.router.comm.is_dead(1 + s))
            .collect();
        alive
            .iter()
            .copied()
            .find(|&s| self.router.admit(s))
            .or_else(|| alive.first().copied())
            .unwrap_or(sub.chain[0])
    }

    /// Send the slice's remaining leaves to `shard` on a fresh tag.
    fn dispatch(&self, sub: &mut SubQuery, shard: usize, hedge: bool) -> StreamCur {
        let tag = self.router.fresh_tag();
        let budget_ms = self.expires.map_or(0, |e| {
            (e.saturating_duration_since(Instant::now()).as_millis() as u64).max(1)
        });
        self.router.comm.isend(
            1 + shard,
            TAG_CTRL,
            Ctrl::Query {
                req_tag: tag,
                budget_ms,
                query: self.q.clone(),
                leaves: sub.leaves[sub.next..].to_vec(),
            }
            .encode(),
        );
        sub.dispatched.push(shard);
        StreamCur {
            shard,
            tag,
            hedge,
            base: sub.next,
            groups: VecDeque::new(),
            cur: Vec::new(),
            done: false,
            done_points: 0,
            failed: None,
        }
    }

    /// Parse one frame into stream `i`'s state. Protocol violations are
    /// recorded as that stream's failure (so replicas can still save the
    /// slice), not returned.
    fn apply(&self, sub: &mut SubQuery, i: usize, payload: &[u8]) {
        self.last_progress.set(Instant::now());
        let total = sub.leaves.len();
        let s = &mut sub.streams[i];
        let shard = s.shard;
        let msg = match ShardMsg::decode(payload) {
            Ok(m) => m,
            Err(e) => {
                s.failed = Some(ShardQueryError::Shard {
                    shard,
                    code: ERR_INTERNAL,
                    message: format!("undecodable shard frame: {e}"),
                });
                return;
            }
        };
        let unexpected = |s: &mut StreamCur| {
            s.failed = Some(ShardQueryError::Shard {
                shard,
                code: ERR_INTERNAL,
                message: "unexpected frame after the last leaf".into(),
            });
        };
        match msg {
            ShardMsg::Chunk(c) => {
                if s.recv_pos() < total {
                    s.cur.push(c);
                } else {
                    unexpected(s);
                }
            }
            ShardMsg::LeafDone { leaf } => {
                if s.recv_pos() >= total {
                    unexpected(s);
                } else if leaf != sub.leaves[s.recv_pos()] {
                    let expected = sub.leaves[s.recv_pos()];
                    s.failed = Some(ShardQueryError::Shard {
                        shard,
                        code: ERR_INTERNAL,
                        message: format!("shard finished leaf {leaf}, router expected {expected}"),
                    });
                } else {
                    let group = std::mem::take(&mut s.cur);
                    s.groups.push_back(group);
                }
            }
            ShardMsg::Done { points } => {
                if s.recv_pos() < total {
                    s.failed = Some(ShardQueryError::Shard {
                        shard,
                        code: ERR_INTERNAL,
                        message: format!(
                            "shard done before finishing leaf {}",
                            sub.leaves[s.recv_pos()]
                        ),
                    });
                } else {
                    s.done = true;
                    s.done_points = points;
                }
            }
            ShardMsg::Failed { code, message } => {
                s.failed = Some(ShardQueryError::Shard {
                    shard,
                    code,
                    message,
                });
            }
        }
    }

    /// Discard completed leaves a stream delivered behind the merge
    /// position (the hedge race's duplicates).
    fn advance_lagging(&self, sub: &mut SubQuery) {
        let next = sub.next;
        for s in &mut sub.streams {
            while s.base < next && !s.groups.is_empty() {
                s.groups.pop_front();
                s.base += 1;
                bat_obs::counter_add("shard.hedge.wasted", 1);
            }
        }
    }

    /// Remove failed streams, recording breaker state and keeping the
    /// most recent error for exhaustion reporting.
    fn reap_failed(&self, sub: &mut SubQuery) {
        let mut i = 0;
        while i < sub.streams.len() {
            if let Some(err) = sub.streams[i].failed.take() {
                let s = sub.streams.remove(i);
                self.router.breaker_failure(s.shard);
                self.router.cancel_and_retire(s.shard, s.tag);
                sub.dirty = true;
                sub.last_err = Some(err);
            } else {
                i += 1;
            }
        }
    }

    /// The hedge latency budget, if hedging is currently armed.
    fn hedge_budget(&self) -> Option<Duration> {
        if self.router.policy.replicas < 2 {
            return None;
        }
        match self.router.policy.hedge {
            Hedge::Off => None,
            Hedge::Fixed(d) => Some(d),
            Hedge::Auto => {
                // Not enough signal to estimate a tail yet: don't hedge.
                if self.router.leaf_latency.count() < 16 {
                    return None;
                }
                let p99 = Duration::from_micros(self.router.leaf_latency.quantile(0.99));
                Some((p99 * 3).clamp(Duration::from_millis(25), shard_wait()))
            }
        }
    }

    /// An untried, live, breaker-admitted shard to hedge onto.
    fn hedge_candidate(&self, sub: &SubQuery) -> Option<usize> {
        sub.chain
            .iter()
            .copied()
            .filter(|s| !sub.dispatched.contains(s))
            .filter(|&s| !self.router.comm.is_dead(1 + s))
            .find(|&s| self.router.admit(s))
    }

    /// An untried, live shard to fail over to (breaker-admitted
    /// preferred, but an open breaker is only advisory when it's the last
    /// option).
    fn failover_candidate(&self, sub: &SubQuery) -> Option<usize> {
        let alive: Vec<usize> = sub
            .chain
            .iter()
            .copied()
            .filter(|s| !sub.dispatched.contains(s))
            .filter(|&s| !self.router.comm.is_dead(1 + s))
            .collect();
        alive
            .iter()
            .copied()
            .find(|&s| self.router.admit(s))
            .or_else(|| alive.first().copied())
    }

    /// Produce the chunks of the slice's next leaf, pumping, failing
    /// over, and hedging as needed. `Ok(None)` means the leaf was skipped
    /// under degraded mode.
    fn merge_leaf(&self, sub: &mut SubQuery) -> Result<Option<Vec<Chunk>>, ShardQueryError> {
        if sub.skipped_at.is_some() {
            return Ok(None);
        }
        let leaf_start = Instant::now();
        loop {
            self.advance_lagging(sub);

            // A stream completed the merge leaf: it wins.
            if let Some(i) = sub
                .streams
                .iter()
                .position(|s| s.base == sub.next && !s.groups.is_empty())
            {
                let s = &mut sub.streams[i];
                let chunks = s.groups.pop_front().expect("non-empty groups");
                s.base += 1;
                if s.hedge {
                    bat_obs::counter_add("shard.hedge.won", 1);
                }
                sub.next += 1;
                let us = leaf_start.elapsed().as_micros().min(u64::MAX as u128) as u64;
                self.router.leaf_latency.record(us);
                bat_obs::observe("router.leaf_merge_us", us);
                return Ok(Some(chunks));
            }

            self.reap_failed(sub);

            // All streams gone: fail over, degrade, or surface the error.
            if sub.streams.is_empty() {
                match self.failover_candidate(sub) {
                    Some(shard) => {
                        let backoff = self
                            .router
                            .policy
                            .retry_backoff
                            .saturating_mul(1 << sub.attempts.min(4))
                            .min(Duration::from_millis(200))
                            .min(self.remaining_silence());
                        std::thread::sleep(backoff);
                        sub.attempts += 1;
                        let stream = self.dispatch(sub, shard, false);
                        sub.streams.push(stream);
                        bat_obs::counter_add("shard.failover", 1);
                        continue;
                    }
                    None => {
                        let err = sub.last_err.take().unwrap_or(ShardQueryError::Shard {
                            shard: sub.primary,
                            code: ERR_INTERNAL,
                            message: "replica chain exhausted".into(),
                        });
                        if self.q.allow_partial {
                            sub.skipped_at = Some(sub.next);
                            return Ok(None);
                        }
                        return Err(err);
                    }
                }
            }

            // Hedge: the merge leaf has waited past the latency budget
            // and a replica is available.
            let receivable = sub.streams.iter().filter(|s| s.receivable()).count();
            let mut hedge_in: Option<Duration> = None;
            if receivable == 1 && sub.streams.len() == 1 {
                if let Some(budget) = self.hedge_budget() {
                    let due = budget.saturating_sub(leaf_start.elapsed());
                    if due.is_zero() {
                        if let Some(shard) = self.hedge_candidate(sub) {
                            let stream = self.dispatch(sub, shard, true);
                            sub.streams.push(stream);
                            sub.dirty = true;
                            bat_obs::counter_add("shard.hedge.issued", 1);
                            continue;
                        }
                    } else if self.hedge_candidate_exists(sub) {
                        hedge_in = Some(due);
                    }
                }
            }

            // Pump: drain everything queued without blocking first.
            let mut progressed = false;
            for i in 0..sub.streams.len() {
                if !sub.streams[i].receivable() {
                    continue;
                }
                let (shard, tag) = (sub.streams[i].shard, sub.streams[i].tag);
                while let Some(m) = self.router.comm.try_recv_raw(Some(1 + shard), tag) {
                    progressed = true;
                    self.apply(sub, i, &m.payload);
                    if !sub.streams[i].receivable() {
                        break;
                    }
                }
            }
            if progressed {
                continue;
            }

            // Nothing queued: block (briefly when racing streams, fully
            // otherwise), bounded by the silence budget and the hedge
            // trigger.
            let silence = self.remaining_silence();
            if silence.is_zero() {
                // Harvest the real transport error per silent stream.
                for i in 0..sub.streams.len() {
                    let (shard, tag) = (sub.streams[i].shard, sub.streams[i].tag);
                    if !sub.streams[i].receivable() {
                        continue;
                    }
                    match self.router.comm.recv_timeout(
                        Some(1 + shard),
                        tag,
                        Duration::from_millis(1),
                    ) {
                        Ok(m) => self.apply(sub, i, &m.payload),
                        Err(error) => {
                            sub.streams[i].failed = Some(ShardQueryError::Comm { shard, error });
                        }
                    }
                }
                continue;
            }
            let racing = sub.streams.len() > 1;
            let mut slice = silence;
            if let Some(h) = hedge_in {
                slice = slice.min(h);
            }
            if racing {
                slice = slice.min(Duration::from_millis(5));
            }
            // Prefer the stream positioned on the merge leaf.
            let i = sub
                .streams
                .iter()
                .position(|s| s.receivable() && s.recv_pos() <= sub.next)
                .or_else(|| sub.streams.iter().position(|s| s.receivable()))
                .unwrap_or(0);
            if !sub.streams[i].receivable() {
                continue;
            }
            let (shard, tag) = (sub.streams[i].shard, sub.streams[i].tag);
            match self.router.comm.recv_timeout(Some(1 + shard), tag, slice) {
                Ok(m) => self.apply(sub, i, &m.payload),
                Err(CommError::Timeout { .. }) => {
                    // Hedge trigger or short race slice: loop and
                    // re-evaluate. True exhaustion is caught by
                    // remaining_silence above.
                }
                Err(error) => {
                    sub.streams[i].failed = Some(ShardQueryError::Comm { shard, error });
                }
            }
        }
    }

    /// Like [`RouterRun::hedge_candidate`] but without consuming a
    /// half-open probe slot (pure existence check).
    fn hedge_candidate_exists(&self, sub: &SubQuery) -> bool {
        sub.chain
            .iter()
            .any(|s| !sub.dispatched.contains(s) && !self.router.comm.is_dead(1 + s))
    }

    /// After the merge: strict `Done` accounting for clean slices (the
    /// original fabric's invariant), cancel-and-retire for everything
    /// touched by failover, hedging, or degradation.
    fn finalize(&self, subs: &mut [SubQuery], merged_points: u64) -> Result<(), ShardQueryError> {
        let all_clean = subs.iter().all(|s| !s.dirty && s.skipped_at.is_none());
        let mut confirmed = 0u64;
        for sub in subs.iter_mut() {
            let clean = !sub.dirty && sub.skipped_at.is_none();
            if clean {
                debug_assert_eq!(sub.streams.len(), 1);
                while !sub.streams[0].done {
                    let (shard, tag) = (sub.streams[0].shard, sub.streams[0].tag);
                    let wait = match self.expires {
                        Some(e) => (e + DEADLINE_GRACE).saturating_duration_since(Instant::now()),
                        None => shard_wait(),
                    };
                    let msg = self
                        .router
                        .comm
                        .recv_timeout(Some(1 + shard), tag, wait)
                        .map_err(|error| ShardQueryError::Comm { shard, error })?;
                    self.apply(sub, 0, &msg.payload);
                    if let Some(err) = sub.streams[0].failed.take() {
                        return Err(err);
                    }
                }
                confirmed += sub.streams[0].done_points;
                self.router.breaker_success(sub.streams[0].shard);
            } else {
                for s in &sub.streams {
                    if s.done {
                        self.router.breaker_success(s.shard);
                    } else {
                        self.router.cancel_and_retire(s.shard, s.tag);
                    }
                }
            }
        }
        // Every clean slice's terminal count must re-add to the merged
        // total or the merge dropped something. Only meaningful when no
        // slice was hedged, failed over, or skipped.
        if all_clean && confirmed != merged_points {
            return Err(ShardQueryError::Shard {
                shard: usize::MAX,
                code: ERR_INTERNAL,
                message: format!("shards report {confirmed} points, router merged {merged_points}"),
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Client-facing TCP front (the router's stream-protocol face)
// ---------------------------------------------------------------------------

/// A bound-but-not-running router front: speaks the same stream protocol
/// as [`crate::StreamServer`] to clients, but executes every request as a
/// shard fan-out. The bounded [`bat_serve::ServePool`] caps concurrent
/// fan-outs; a full queue surfaces as `Busy { retry_after }` exactly like
/// the single-process server. Degraded fan-outs (opted in via
/// [`Query::allow_partial`]) terminate with a `Partial` frame carrying
/// served/total leaf counts.
pub struct ShardFront {
    listener: std::net::TcpListener,
    router: Arc<ShardRouter>,
    options: bat_serve::ServeOptions,
}

struct FrontCtx {
    router: Arc<ShardRouter>,
    pool: bat_serve::ServePool,
    deadline: Option<Duration>,
}

enum FrontReply {
    Chunk(Chunk),
    Done {
        points: u64,
    },
    Partial {
        points: u64,
        served_leaves: u64,
        total_leaves: u64,
    },
    Failed {
        code: u32,
        message: String,
    },
}

impl ShardFront {
    /// Bind to `addr` (e.g. `"127.0.0.1:0"`).
    pub fn bind(
        addr: &str,
        router: Arc<ShardRouter>,
        options: bat_serve::ServeOptions,
    ) -> std::io::Result<ShardFront> {
        Ok(ShardFront {
            listener: std::net::TcpListener::bind(addr)?,
            router,
            options,
        })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Start accepting clients on a background thread; same lifecycle as
    /// [`crate::StreamServer::spawn`] (shutdown joins sessions and drains
    /// the pool, letting in-flight fan-outs finish).
    pub fn spawn(self) -> std::io::Result<crate::server::ServerHandle> {
        use std::sync::atomic::{AtomicBool, Ordering as AOrd};
        let stop = Arc::new(AtomicBool::new(false));
        let addr = self.local_addr()?;
        let stop2 = stop.clone();
        let ctx = Arc::new(FrontCtx {
            router: self.router,
            pool: bat_serve::ServePool::new(self.options.pool_config()),
            deadline: self.options.deadline,
        });
        let listener = self.listener;
        let thread = std::thread::spawn(move || {
            let mut sessions: Vec<std::thread::JoinHandle<()>> = Vec::new();
            while let Ok((stream, _)) = listener.accept() {
                if stop2.load(AOrd::Acquire) {
                    break;
                }
                let ctx = ctx.clone();
                sessions.push(std::thread::spawn(move || {
                    let _ = front_session(stream, &ctx);
                }));
                sessions.retain(|s| !s.is_finished());
            }
            for s in sessions {
                s.join().ok();
            }
        });
        Ok(crate::server::ServerHandle::new(stop, addr, thread))
    }
}

/// Serve one client session on the router: schema preamble, then
/// request → fan-out → merged stream cycles until disconnect.
fn front_session(stream: std::net::TcpStream, ctx: &FrontCtx) -> std::io::Result<()> {
    use crate::protocol::{read_frame, write_frame, Request, Schema, ServerMsg, ERR_SHARD};
    use std::io::Write;

    stream.set_nodelay(true).ok();
    let mut reader = stream.try_clone()?;
    let mut writer = std::io::BufWriter::new(stream);

    let ds = ctx.router.dataset();
    let schema = ServerMsg::Schema(Schema {
        descs: ds.descs().to_vec(),
        total_particles: ds.num_particles(),
    });
    write_frame(&mut writer, &schema.encode())?;
    writer.flush()?;

    while let Some(payload) = read_frame(&mut reader)? {
        let request = Request::decode(&payload)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        // The deadline covers queue wait + fan-out, like the
        // single-process server: the clock starts at submission.
        let expires = ctx.deadline.map(|d| Instant::now() + d);
        let (tx, rx) = std::sync::mpsc::sync_channel::<FrontReply>(4);
        let router = ctx.router.clone();
        let query = request.query.clone();
        let submitted = ctx.pool.submit(move || {
            let budget = expires.map(|e| e.saturating_duration_since(Instant::now()));
            let result = router.query(&query, budget, |c| {
                let _ = tx.send(FrontReply::Chunk(c));
            });
            let _ = match result {
                Ok(outcome) if outcome.is_partial() => tx.send(FrontReply::Partial {
                    points: outcome.points,
                    served_leaves: outcome.served_leaves,
                    total_leaves: outcome.total_leaves,
                }),
                Ok(outcome) => tx.send(FrontReply::Done {
                    points: outcome.points,
                }),
                Err(e) => {
                    let code = match &e {
                        ShardQueryError::Plan(ServeError::Query(_)) => ERR_BAD_QUERY,
                        ShardQueryError::Plan(ServeError::DeadlineExpired { .. }) => ERR_DEADLINE,
                        ShardQueryError::Plan(_) => ERR_INTERNAL,
                        ShardQueryError::Shard { code, .. } => *code,
                        ShardQueryError::Comm { .. } => ERR_SHARD,
                    };
                    tx.send(FrontReply::Failed {
                        code,
                        message: e.to_string(),
                    })
                }
            };
        });
        if let Err(rejected) = submitted {
            let retry_after_ms = rejected.retry_after.as_millis() as u64;
            write_frame(&mut writer, &ServerMsg::Busy { retry_after_ms }.encode())?;
            writer.flush()?;
            continue;
        }
        for reply in rx {
            let encoded = match reply {
                FrontReply::Chunk(c) => ServerMsg::Chunk(c).encode(),
                FrontReply::Done { points } => ServerMsg::Done { points }.encode(),
                FrontReply::Partial {
                    points,
                    served_leaves,
                    total_leaves,
                } => ServerMsg::Partial {
                    points,
                    served_leaves,
                    total_leaves,
                }
                .encode(),
                FrontReply::Failed { code, message } => ServerMsg::Error { code, message }.encode(),
            };
            write_frame(&mut writer, &encoded)?;
        }
        writer.flush()?;
        bat_obs::counter_add("router.sessions_requests", 1);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_contiguous_and_complete() {
        for (num_leaves, num_shards) in [(10, 4), (1, 1), (7, 7), (16, 3), (5, 8)] {
            let mut seen = Vec::new();
            for s in 0..num_shards {
                let owned = owned_leaves(s, num_leaves, num_shards);
                // Contiguous run.
                for w in owned.windows(2) {
                    assert_eq!(w[1], w[0] + 1);
                }
                for &l in &owned {
                    assert_eq!(shard_of(l, num_leaves, num_shards), s);
                }
                seen.extend(owned);
            }
            seen.sort_unstable();
            assert_eq!(seen, (0..num_leaves as u32).collect::<Vec<_>>());
        }
    }

    #[test]
    fn ctrl_roundtrip() {
        let c = Ctrl::Query {
            req_tag: 77,
            budget_ms: 1500,
            query: Query::new().with_quality(0.5),
            leaves: vec![3, 1, 9],
        };
        match Ctrl::decode(&c.encode()).unwrap() {
            Ctrl::Query {
                req_tag,
                budget_ms,
                leaves,
                ..
            } => {
                assert_eq!(req_tag, 77);
                assert_eq!(budget_ms, 1500);
                assert_eq!(leaves, vec![3, 1, 9]);
            }
            _ => panic!("wrong ctrl variant"),
        }
        assert!(matches!(
            Ctrl::decode(&Ctrl::Shutdown.encode()).unwrap(),
            Ctrl::Shutdown
        ));
    }

    #[test]
    fn shard_msg_roundtrip() {
        let msgs = [
            ShardMsg::Chunk(Chunk {
                positions: vec![bat_geom::Vec3::ONE],
                attrs: vec![2.5],
                num_attrs: 1,
            }),
            ShardMsg::LeafDone { leaf: 4 },
            ShardMsg::Done { points: 12 },
            ShardMsg::Failed {
                code: ERR_INTERNAL,
                message: "boom".into(),
            },
        ];
        for m in msgs {
            let rt = ShardMsg::decode(&m.encode()).unwrap();
            match (&m, &rt) {
                (ShardMsg::Chunk(a), ShardMsg::Chunk(b)) => assert_eq!(a, b),
                (ShardMsg::LeafDone { leaf: a }, ShardMsg::LeafDone { leaf: b }) => {
                    assert_eq!(a, b)
                }
                (ShardMsg::Done { points: a }, ShardMsg::Done { points: b }) => assert_eq!(a, b),
                (
                    ShardMsg::Failed {
                        code: a,
                        message: am,
                    },
                    ShardMsg::Failed {
                        code: b,
                        message: bm,
                    },
                ) => {
                    assert_eq!(a, b);
                    assert_eq!(am, bm);
                }
                _ => panic!("variant changed in roundtrip"),
            }
        }
    }

    #[test]
    fn heartbeat_and_cancel_roundtrip() {
        let hb = encode_heartbeat(HB_PING, 42);
        assert_eq!(decode_heartbeat(&hb), Some((HB_PING, 42)));
        let hb = encode_heartbeat(HB_PONG, u64::MAX);
        assert_eq!(decode_heartbeat(&hb), Some((HB_PONG, u64::MAX)));
        assert_eq!(decode_heartbeat(b""), None);
        assert_eq!(decode_cancel(&encode_cancel(99)), Some(99));
        assert_eq!(decode_cancel(b"x"), None);
    }

    #[test]
    fn cancel_set_is_bounded() {
        let mut set = CancelSet::new();
        for t in 0..300u32 {
            set.insert(t);
        }
        assert!(set.tags.len() <= 256);
        assert!(!set.contains(0), "oldest entries evicted");
        assert!(set.contains(299));
        assert!(set.remove(299));
        assert!(!set.contains(299));
        assert!(!set.remove(299));
    }

    #[test]
    fn breaker_lifecycle() {
        let cooldown = Duration::from_millis(20);
        let b = Breaker::default();
        assert!(b.admit(cooldown), "closed admits");
        assert_eq!(b.gauge(), 0.0);
        assert!(!b.failure(3));
        assert!(!b.failure(3));
        assert!(b.failure(3), "third consecutive failure opens");
        assert_eq!(b.gauge(), 1.0);
        assert!(!b.admit(cooldown), "open rejects during cooldown");
        std::thread::sleep(cooldown + Duration::from_millis(5));
        assert!(b.admit(cooldown), "half-open admits one probe");
        assert_eq!(b.gauge(), 2.0);
        assert!(!b.admit(cooldown), "second probe rejected");
        assert!(!b.failure(3), "probe failure re-opens, not newly");
        assert!(!b.admit(cooldown), "cooldown re-armed");
        std::thread::sleep(cooldown + Duration::from_millis(5));
        assert!(b.admit(cooldown));
        b.success();
        assert_eq!(b.gauge(), 0.0);
        assert!(b.admit(cooldown), "closed again after probe success");
    }

    #[test]
    fn hedge_knob_parses() {
        assert_eq!(Hedge::parse(None), Hedge::Auto);
        assert_eq!(Hedge::parse(Some("auto")), Hedge::Auto);
        assert_eq!(Hedge::parse(Some("")), Hedge::Auto);
        assert_eq!(Hedge::parse(Some("off")), Hedge::Off);
        assert_eq!(Hedge::parse(Some("0")), Hedge::Off);
        assert_eq!(
            Hedge::parse(Some("25")),
            Hedge::Fixed(Duration::from_millis(25))
        );
        assert_eq!(Hedge::parse(Some("bogus")), Hedge::Auto);
    }

    #[test]
    fn outcome_partial_flag() {
        let complete = QueryOutcome {
            points: 10,
            served_leaves: 4,
            total_leaves: 4,
        };
        assert!(!complete.is_partial());
        let partial = QueryOutcome {
            points: 7,
            served_leaves: 3,
            total_leaves: 4,
        };
        assert!(partial.is_partial());
    }
}
