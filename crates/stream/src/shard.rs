//! The shard fabric: one thin router process fanning queries out to N
//! shard processes over a `bat-comm` cluster (DESIGN.md §14).
//!
//! Each shard owns a contiguous slice of the aggregation tree's leaf
//! files ([`owned_leaves`]) and plans/executes queries against only its
//! slice ([`bat_serve::QueryPlan::for_leaves`]). The router computes the
//! *global* plan order (metadata only — no treelet pages), tells each
//! owning shard which of its leaves to run and in what order, then merges
//! the per-leaf result streams back into exactly the single-process
//! answer:
//!
//! ```text
//! router → shard   Ctrl::Query { req_tag, budget, query, leaves }   (tag TAG_CTRL)
//! shard  → router  Chunk { ≤ CHUNK_POINTS points }                  (tag req_tag, repeated)
//! shard  → router  LeafDone { leaf }                                (after each leaf)
//! shard  → router  Done { points } | Failed { code, message }       (end of request)
//! ```
//!
//! Correctness of the merge rests on two invariants: per-file planning is
//! independent of which other files exist (so a shard's restricted plan
//! equals the global plan's slice), and `bat-comm` guarantees per-(source,
//! tag) FIFO delivery (so one shard's frames arrive in emission order).
//! The router consumes frames leaf-by-leaf in global plan order; frames
//! from not-yet-merged shards simply wait in the mailbox.
//!
//! Failure semantics: every router receive is deadline-bounded, so a shard
//! killed mid-query surfaces as a typed [`ShardQueryError`] within the
//! wait budget — never a hang, and never partial bytes presented as a
//! complete result (the client sees `Error`, not `Done`).

use crate::protocol::{
    decode_chunk, encode_chunk, Chunk, CHUNK_POINTS, ERR_BAD_QUERY, ERR_DEADLINE, ERR_INTERNAL,
};
use bat_comm::{Comm, CommError, MAX_USER_TAG};
use bat_layout::Query;
use bat_serve::{QueryPlan, ServeError};
use bat_wire::{Decoder, Encoder, WireError, WireResult};
use bytes::Bytes;
use libbat::Dataset;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The router's rank in the shard cluster; shards are ranks `1..=N`.
pub const ROUTER_RANK: usize = 0;

/// Control tag (router → shard).
const TAG_CTRL: u32 = 1;
/// First per-query streaming tag; queries allocate tags round-robin above
/// this so concurrent fan-outs never share a (source, tag) stream.
const FIRST_REQ_TAG: u32 = 64;

/// How long the router waits on a silent shard when the query has no
/// deadline of its own (`BAT_SHARD_WAIT_MS`, default 30 s).
fn shard_wait() -> Duration {
    std::env::var("BAT_SHARD_WAIT_MS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .map(Duration::from_millis)
        .unwrap_or(Duration::from_secs(30))
}

// ---------------------------------------------------------------------------
// Leaf partition
// ---------------------------------------------------------------------------

/// Owner shard (0-based, contiguous equal slices) of `leaf`.
pub fn shard_of(leaf: u32, num_leaves: usize, num_shards: usize) -> usize {
    debug_assert!((leaf as usize) < num_leaves);
    ((leaf as usize + 1) * num_shards - 1) / num_leaves.max(1)
}

/// The sorted leaves shard `shard` owns out of `num_leaves`.
pub fn owned_leaves(shard: usize, num_leaves: usize, num_shards: usize) -> Vec<u32> {
    (0..num_leaves as u32)
        .filter(|&l| shard_of(l, num_leaves, num_shards) == shard)
        .collect()
}

// ---------------------------------------------------------------------------
// Wire messages (bat-wire encoded payloads inside bat-comm messages)
// ---------------------------------------------------------------------------

const CTRL_QUERY: u8 = 1;
const CTRL_SHUTDOWN: u8 = 2;

/// Router → shard control message.
enum Ctrl {
    Query {
        /// Tag the shard streams this request's frames on.
        req_tag: u32,
        /// Remaining deadline budget in ms (0 = unbounded).
        budget_ms: u64,
        query: Query,
        /// The shard's leaves to execute, in global plan order.
        leaves: Vec<u32>,
    },
    Shutdown,
}

impl Ctrl {
    fn encode(&self) -> Bytes {
        let mut enc = Encoder::new();
        match self {
            Ctrl::Query {
                req_tag,
                budget_ms,
                query,
                leaves,
            } => {
                enc.put_u8(CTRL_QUERY);
                enc.put_u32(*req_tag);
                enc.put_u64(*budget_ms);
                query.encode(&mut enc);
                enc.put_u64(leaves.len() as u64);
                for &l in leaves {
                    enc.put_u32(l);
                }
            }
            Ctrl::Shutdown => enc.put_u8(CTRL_SHUTDOWN),
        }
        Bytes::from(enc.finish())
    }

    fn decode(payload: &[u8]) -> WireResult<Ctrl> {
        let mut dec = Decoder::new(payload);
        match dec.get_u8("ctrl tag")? {
            CTRL_QUERY => {
                let req_tag = dec.get_u32("ctrl req tag")?;
                let budget_ms = dec.get_u64("ctrl budget")?;
                let query = Query::decode(&mut dec)?;
                let n = dec.get_usize("ctrl leaf count")?;
                if n > (1 << 24) {
                    return Err(WireError::BadLength {
                        what: "ctrl leaf count",
                        len: n as u64,
                        remaining: dec.remaining(),
                    });
                }
                let mut leaves = Vec::with_capacity(n);
                for _ in 0..n {
                    leaves.push(dec.get_u32("ctrl leaf")?);
                }
                Ok(Ctrl::Query {
                    req_tag,
                    budget_ms,
                    query,
                    leaves,
                })
            }
            CTRL_SHUTDOWN => Ok(Ctrl::Shutdown),
            tag => Err(WireError::BadTag {
                what: "ctrl tag",
                tag: tag as u64,
            }),
        }
    }
}

const SHARD_CHUNK: u8 = 1;
const SHARD_LEAF_DONE: u8 = 2;
const SHARD_DONE: u8 = 3;
const SHARD_FAILED: u8 = 4;

/// Shard → router frame on a request's streaming tag.
enum ShardMsg {
    Chunk(Chunk),
    LeafDone { leaf: u32 },
    Done { points: u64 },
    Failed { code: u32, message: String },
}

impl ShardMsg {
    fn encode(&self) -> Bytes {
        let mut enc = Encoder::new();
        match self {
            ShardMsg::Chunk(c) => {
                enc.put_u8(SHARD_CHUNK);
                encode_chunk(&mut enc, c);
            }
            ShardMsg::LeafDone { leaf } => {
                enc.put_u8(SHARD_LEAF_DONE);
                enc.put_u32(*leaf);
            }
            ShardMsg::Done { points } => {
                enc.put_u8(SHARD_DONE);
                enc.put_u64(*points);
            }
            ShardMsg::Failed { code, message } => {
                enc.put_u8(SHARD_FAILED);
                enc.put_u32(*code);
                enc.put_str(message);
            }
        }
        Bytes::from(enc.finish())
    }

    fn decode(payload: &[u8]) -> WireResult<ShardMsg> {
        let mut dec = Decoder::new(payload);
        match dec.get_u8("shard msg tag")? {
            SHARD_CHUNK => Ok(ShardMsg::Chunk(decode_chunk(&mut dec)?)),
            SHARD_LEAF_DONE => Ok(ShardMsg::LeafDone {
                leaf: dec.get_u32("shard leaf")?,
            }),
            SHARD_DONE => Ok(ShardMsg::Done {
                points: dec.get_u64("shard points")?,
            }),
            SHARD_FAILED => Ok(ShardMsg::Failed {
                code: dec.get_u32("shard err code")?,
                message: dec.get_str("shard err message")?,
            }),
            tag => Err(WireError::BadTag {
                what: "shard msg tag",
                tag: tag as u64,
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// Shard worker
// ---------------------------------------------------------------------------

/// Run a shard worker until the router shuts the cluster down (or dies).
/// `comm.rank()` must be in `1..=num_shards`; the worker serves queries
/// over its contiguous slice of `ds`'s leaves, streaming results back to
/// [`ROUTER_RANK`].
pub fn run_shard(comm: &dyn Comm, ds: &Dataset) -> std::io::Result<()> {
    assert!(comm.rank() != ROUTER_RANK, "the router is not a shard");
    loop {
        // A rank that abandoned the protocol (fault kill) can no longer
        // be sent a shutdown: stop serving on its behalf.
        if comm.is_dead(comm.rank()) {
            return Ok(());
        }
        // Poll with a bounded receive so a dead router ends the worker
        // instead of parking it forever.
        let msg = match comm.recv_timeout(Some(ROUTER_RANK), TAG_CTRL, Duration::from_secs(1)) {
            Ok(m) => m,
            Err(CommError::Timeout { .. }) => continue,
            Err(CommError::PeerDead { .. }) => return Ok(()),
            Err(e) => return Err(e.into()),
        };
        match Ctrl::decode(&msg.payload)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?
        {
            Ctrl::Shutdown => return Ok(()),
            Ctrl::Query {
                req_tag,
                budget_ms,
                query,
                leaves,
            } => {
                serve_one(comm, ds, req_tag, budget_ms, &query, &leaves);
                bat_obs::counter_add("shard.requests", 1);
            }
        }
    }
}

/// Execute one fanned-out request on a shard: plan the owned slice, run
/// each assigned leaf in the router's order, stream bounded chunks.
fn serve_one(
    comm: &dyn Comm,
    ds: &Dataset,
    req_tag: u32,
    budget_ms: u64,
    query: &Query,
    leaves: &[u32],
) {
    let deadline = (budget_ms > 0).then(|| Instant::now() + Duration::from_millis(budget_ms));
    let fail = |e: &ServeError| {
        let code = match e {
            ServeError::DeadlineExpired { .. } => ERR_DEADLINE,
            ServeError::Query(_) => ERR_BAD_QUERY,
            _ => ERR_INTERNAL,
        };
        comm.isend(
            ROUTER_RANK,
            req_tag,
            ShardMsg::Failed {
                code,
                message: e.to_string(),
            }
            .encode(),
        );
    };
    let mut sorted = leaves.to_vec();
    sorted.sort_unstable();
    let plan = match QueryPlan::for_leaves(ds, query, &sorted) {
        Ok(p) => p,
        Err(e) => return fail(&e),
    };
    let num_attrs = ds.descs().len();
    let mut points = 0u64;
    let mut chunk = Chunk {
        positions: Vec::with_capacity(CHUNK_POINTS),
        attrs: Vec::with_capacity(CHUNK_POINTS * num_attrs),
        num_attrs,
    };
    for &leaf in leaves {
        // The `shard.exec` failpoint: `delay:MS` makes this a slow shard
        // (the fault matrix's slow-peer case); `kill` abandons the
        // request mid-stream like a crash, with the rank marked dead so
        // the router fails fast instead of waiting out its deadline.
        if let Some(bat_faults::Fault::Kill) = bat_faults::fire("shard.exec") {
            comm.mark_dead();
            return;
        }
        let res = plan.execute_leaf(leaf, deadline, |p| {
            chunk.positions.push(p.position);
            chunk.attrs.extend_from_slice(p.attrs);
            if chunk.len() == CHUNK_POINTS {
                let full = std::mem::take(&mut chunk);
                chunk.num_attrs = num_attrs;
                points += full.len() as u64;
                comm.isend(ROUTER_RANK, req_tag, ShardMsg::Chunk(full).encode());
            }
        });
        if let Err(e) = res {
            return fail(&e);
        }
        // Flush the partial chunk at the leaf boundary: the router needs
        // every point of a leaf before the LeafDone marker so the merged
        // stream is leaf-contiguous in global plan order.
        if !chunk.is_empty() {
            let last = std::mem::take(&mut chunk);
            chunk.num_attrs = num_attrs;
            points += last.len() as u64;
            comm.isend(ROUTER_RANK, req_tag, ShardMsg::Chunk(last).encode());
        }
        comm.isend(ROUTER_RANK, req_tag, ShardMsg::LeafDone { leaf }.encode());
    }
    comm.isend(ROUTER_RANK, req_tag, ShardMsg::Done { points }.encode());
    bat_obs::counter_add("shard.points_sent", points);
}

// ---------------------------------------------------------------------------
// Router
// ---------------------------------------------------------------------------

/// Why a fanned-out query failed.
#[derive(Debug)]
pub enum ShardQueryError {
    /// Planning the global order failed locally (bad query, I/O).
    Plan(ServeError),
    /// A shard reported a typed execution failure (`ERR_*` codes).
    Shard {
        /// The failing shard (0-based).
        shard: usize,
        /// The `ERR_*` code it reported.
        code: u32,
        /// Its message.
        message: String,
    },
    /// A shard went silent or died mid-query; the wait was bounded.
    Comm {
        /// The shard the router was waiting on (0-based).
        shard: usize,
        /// The transport-level error.
        error: CommError,
    },
}

impl std::fmt::Display for ShardQueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardQueryError::Plan(e) => write!(f, "shard fan-out planning: {e}"),
            ShardQueryError::Shard {
                shard,
                code,
                message,
            } => {
                write!(f, "shard {shard} failed (code {code}): {message}")
            }
            ShardQueryError::Comm { shard, error } => {
                write!(f, "shard {shard} unreachable: {error}")
            }
        }
    }
}

impl std::error::Error for ShardQueryError {}

impl From<ServeError> for ShardQueryError {
    fn from(e: ServeError) -> ShardQueryError {
        ShardQueryError::Plan(e)
    }
}

/// The router: plans globally, fans out to owning shards, merges streams.
/// Shareable across session threads (receives use per-query tags, so
/// concurrent fan-outs never steal each other's frames).
pub struct ShardRouter {
    comm: Box<dyn Comm>,
    ds: Arc<Dataset>,
    next_tag: AtomicU32,
}

impl ShardRouter {
    /// Wrap the router rank's communicator (`comm.rank()` must be
    /// [`ROUTER_RANK`]; shards are the other `comm.size() - 1` ranks).
    pub fn new(comm: Box<dyn Comm>, ds: Arc<Dataset>) -> ShardRouter {
        assert_eq!(comm.rank(), ROUTER_RANK, "the router must be rank 0");
        assert!(comm.size() >= 2, "a shard cluster needs at least one shard");
        ShardRouter {
            comm,
            ds,
            next_tag: AtomicU32::new(0),
        }
    }

    /// Number of shard processes behind this router.
    pub fn num_shards(&self) -> usize {
        self.comm.size() - 1
    }

    /// The dataset served (for session schema preambles).
    pub fn dataset(&self) -> &Arc<Dataset> {
        &self.ds
    }

    /// Tell every shard to exit its serve loop, then tear down the
    /// router's own transport (idempotent; frames already written are
    /// flushed before connections close).
    pub fn shutdown(&self) {
        for shard in 0..self.num_shards() {
            self.comm
                .isend(1 + shard, TAG_CTRL, Ctrl::Shutdown.encode());
        }
        self.comm.shutdown();
    }

    /// Fan `q` out to the owning shards and merge the result streams in
    /// global plan order, handing each merged chunk to `sink`. Returns the
    /// total points streamed. Every receive is bounded by the remaining
    /// `deadline` (plus a relay grace period) or `BAT_SHARD_WAIT_MS`, so a
    /// killed or wedged shard yields a typed error, never a hang — and
    /// chunks already sunk are explicitly partial (`Err`, not `Ok`).
    pub fn query(
        &self,
        q: &Query,
        deadline: Option<Duration>,
        mut sink: impl FnMut(Chunk),
    ) -> Result<u64, ShardQueryError> {
        let num_leaves = self.ds.meta().leaves.len();
        let num_shards = self.num_shards();
        let expires = deadline.map(|d| Instant::now() + d);

        // Global plan: metadata + file heads only; execution happens on
        // the shards. Its file order is the merge order.
        let plan = QueryPlan::new(&self.ds, q)?;
        let order: Vec<u32> = plan.file_order().collect();
        let mut assigned: Vec<Vec<u32>> = vec![Vec::new(); num_shards];
        for &leaf in &order {
            assigned[shard_of(leaf, num_leaves, num_shards)].push(leaf);
        }

        let seq = self.next_tag.fetch_add(1, Ordering::Relaxed);
        let req_tag = FIRST_REQ_TAG + seq % (MAX_USER_TAG - FIRST_REQ_TAG);
        let budget_ms = deadline.map_or(0, |d| d.as_millis().max(1) as u64);
        let participants: Vec<usize> = (0..num_shards)
            .filter(|&s| !assigned[s].is_empty())
            .collect();
        for &s in &participants {
            self.comm.isend(
                1 + s,
                TAG_CTRL,
                Ctrl::Query {
                    req_tag,
                    budget_ms,
                    query: q.clone(),
                    leaves: std::mem::take(&mut assigned[s]),
                }
                .encode(),
            );
        }

        // Merge leaf-by-leaf in global order. Per-(source, tag) FIFO means
        // each shard's frames arrive in emission order; frames from shards
        // later in the merge wait in the mailbox.
        let recv = |shard: usize| -> Result<ShardMsg, ShardQueryError> {
            let wait = match expires {
                // Grace on top of the shard's own budget, so the shard's
                // typed DeadlineExpired beats the router's Timeout.
                Some(e) => e.saturating_duration_since(Instant::now()) + Duration::from_secs(2),
                None => shard_wait(),
            };
            let msg = self
                .comm
                .recv_timeout(Some(1 + shard), req_tag, wait)
                .map_err(|error| ShardQueryError::Comm { shard, error })?;
            ShardMsg::decode(&msg.payload).map_err(|e| ShardQueryError::Shard {
                shard,
                code: ERR_INTERNAL,
                message: format!("undecodable shard frame: {e}"),
            })
        };

        let mut points = 0u64;
        for &leaf in &order {
            let shard = shard_of(leaf, num_leaves, num_shards);
            loop {
                match recv(shard)? {
                    ShardMsg::Chunk(c) => {
                        points += c.len() as u64;
                        sink(c);
                    }
                    ShardMsg::LeafDone { leaf: l } => {
                        if l != leaf {
                            return Err(ShardQueryError::Shard {
                                shard,
                                code: ERR_INTERNAL,
                                message: format!("shard finished leaf {l}, router expected {leaf}"),
                            });
                        }
                        break;
                    }
                    ShardMsg::Done { .. } => {
                        return Err(ShardQueryError::Shard {
                            shard,
                            code: ERR_INTERNAL,
                            message: format!("shard done before finishing leaf {leaf}"),
                        })
                    }
                    ShardMsg::Failed { code, message } => {
                        return Err(ShardQueryError::Shard {
                            shard,
                            code,
                            message,
                        })
                    }
                }
            }
        }
        // Every participant's terminal frame; their per-shard counts must
        // re-add to the merged total or the merge dropped something.
        let mut confirmed = 0u64;
        for &s in &participants {
            match recv(s)? {
                ShardMsg::Done { points: p } => confirmed += p,
                ShardMsg::Failed { code, message } => {
                    return Err(ShardQueryError::Shard {
                        shard: s,
                        code,
                        message,
                    })
                }
                _ => {
                    return Err(ShardQueryError::Shard {
                        shard: s,
                        code: ERR_INTERNAL,
                        message: "unexpected frame after the last leaf".into(),
                    })
                }
            }
        }
        if confirmed != points {
            return Err(ShardQueryError::Shard {
                shard: usize::MAX,
                code: ERR_INTERNAL,
                message: format!("shards report {confirmed} points, router merged {points}"),
            });
        }
        bat_obs::counter_add("router.requests", 1);
        bat_obs::counter_add("router.points_merged", points);
        Ok(points)
    }
}

// ---------------------------------------------------------------------------
// Client-facing TCP front (the router's stream-protocol face)
// ---------------------------------------------------------------------------

/// A bound-but-not-running router front: speaks the same stream protocol
/// as [`crate::StreamServer`] to clients, but executes every request as a
/// shard fan-out. The bounded [`bat_serve::ServePool`] caps concurrent
/// fan-outs; a full queue surfaces as `Busy { retry_after }` exactly like
/// the single-process server.
pub struct ShardFront {
    listener: std::net::TcpListener,
    router: Arc<ShardRouter>,
    options: bat_serve::ServeOptions,
}

struct FrontCtx {
    router: Arc<ShardRouter>,
    pool: bat_serve::ServePool,
    deadline: Option<Duration>,
}

enum FrontReply {
    Chunk(Chunk),
    Done { points: u64 },
    Failed { code: u32, message: String },
}

impl ShardFront {
    /// Bind to `addr` (e.g. `"127.0.0.1:0"`).
    pub fn bind(
        addr: &str,
        router: Arc<ShardRouter>,
        options: bat_serve::ServeOptions,
    ) -> std::io::Result<ShardFront> {
        Ok(ShardFront {
            listener: std::net::TcpListener::bind(addr)?,
            router,
            options,
        })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Start accepting clients on a background thread; same lifecycle as
    /// [`crate::StreamServer::spawn`] (shutdown joins sessions and drains
    /// the pool, letting in-flight fan-outs finish).
    pub fn spawn(self) -> std::io::Result<crate::server::ServerHandle> {
        use std::sync::atomic::{AtomicBool, Ordering as AOrd};
        let stop = Arc::new(AtomicBool::new(false));
        let addr = self.local_addr()?;
        let stop2 = stop.clone();
        let ctx = Arc::new(FrontCtx {
            router: self.router,
            pool: bat_serve::ServePool::new(self.options.pool_config()),
            deadline: self.options.deadline,
        });
        let listener = self.listener;
        let thread = std::thread::spawn(move || {
            let mut sessions: Vec<std::thread::JoinHandle<()>> = Vec::new();
            while let Ok((stream, _)) = listener.accept() {
                if stop2.load(AOrd::Acquire) {
                    break;
                }
                let ctx = ctx.clone();
                sessions.push(std::thread::spawn(move || {
                    let _ = front_session(stream, &ctx);
                }));
                sessions.retain(|s| !s.is_finished());
            }
            for s in sessions {
                s.join().ok();
            }
        });
        Ok(crate::server::ServerHandle::new(stop, addr, thread))
    }
}

/// Serve one client session on the router: schema preamble, then
/// request → fan-out → merged stream cycles until disconnect.
fn front_session(stream: std::net::TcpStream, ctx: &FrontCtx) -> std::io::Result<()> {
    use crate::protocol::{read_frame, write_frame, Request, Schema, ServerMsg, ERR_SHARD};
    use std::io::Write;

    stream.set_nodelay(true).ok();
    let mut reader = stream.try_clone()?;
    let mut writer = std::io::BufWriter::new(stream);

    let ds = ctx.router.dataset();
    let schema = ServerMsg::Schema(Schema {
        descs: ds.descs().to_vec(),
        total_particles: ds.num_particles(),
    });
    write_frame(&mut writer, &schema.encode())?;
    writer.flush()?;

    while let Some(payload) = read_frame(&mut reader)? {
        let request = Request::decode(&payload)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        // The deadline covers queue wait + fan-out, like the
        // single-process server: the clock starts at submission.
        let expires = ctx.deadline.map(|d| Instant::now() + d);
        let (tx, rx) = std::sync::mpsc::sync_channel::<FrontReply>(4);
        let router = ctx.router.clone();
        let query = request.query.clone();
        let submitted = ctx.pool.submit(move || {
            let budget = expires.map(|e| e.saturating_duration_since(Instant::now()));
            let result = router.query(&query, budget, |c| {
                let _ = tx.send(FrontReply::Chunk(c));
            });
            let _ = match result {
                Ok(points) => tx.send(FrontReply::Done { points }),
                Err(e) => {
                    let code = match &e {
                        ShardQueryError::Plan(ServeError::Query(_)) => ERR_BAD_QUERY,
                        ShardQueryError::Plan(ServeError::DeadlineExpired { .. }) => ERR_DEADLINE,
                        ShardQueryError::Plan(_) => ERR_INTERNAL,
                        ShardQueryError::Shard { code, .. } => *code,
                        ShardQueryError::Comm { .. } => ERR_SHARD,
                    };
                    tx.send(FrontReply::Failed {
                        code,
                        message: e.to_string(),
                    })
                }
            };
        });
        if let Err(rejected) = submitted {
            let retry_after_ms = rejected.retry_after.as_millis() as u64;
            write_frame(&mut writer, &ServerMsg::Busy { retry_after_ms }.encode())?;
            writer.flush()?;
            continue;
        }
        for reply in rx {
            let encoded = match reply {
                FrontReply::Chunk(c) => ServerMsg::Chunk(c).encode(),
                FrontReply::Done { points } => ServerMsg::Done { points }.encode(),
                FrontReply::Failed { code, message } => ServerMsg::Error { code, message }.encode(),
            };
            write_frame(&mut writer, &encoded)?;
        }
        writer.flush()?;
        bat_obs::counter_add("router.sessions_requests", 1);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_contiguous_and_complete() {
        for (num_leaves, num_shards) in [(10, 4), (1, 1), (7, 7), (16, 3), (5, 8)] {
            let mut seen = Vec::new();
            for s in 0..num_shards {
                let owned = owned_leaves(s, num_leaves, num_shards);
                // Contiguous run.
                for w in owned.windows(2) {
                    assert_eq!(w[1], w[0] + 1);
                }
                for &l in &owned {
                    assert_eq!(shard_of(l, num_leaves, num_shards), s);
                }
                seen.extend(owned);
            }
            seen.sort_unstable();
            assert_eq!(seen, (0..num_leaves as u32).collect::<Vec<_>>());
        }
    }

    #[test]
    fn ctrl_roundtrip() {
        let c = Ctrl::Query {
            req_tag: 77,
            budget_ms: 1500,
            query: Query::new().with_quality(0.5),
            leaves: vec![3, 1, 9],
        };
        match Ctrl::decode(&c.encode()).unwrap() {
            Ctrl::Query {
                req_tag,
                budget_ms,
                leaves,
                ..
            } => {
                assert_eq!(req_tag, 77);
                assert_eq!(budget_ms, 1500);
                assert_eq!(leaves, vec![3, 1, 9]);
            }
            _ => panic!("wrong ctrl variant"),
        }
        assert!(matches!(
            Ctrl::decode(&Ctrl::Shutdown.encode()).unwrap(),
            Ctrl::Shutdown
        ));
    }

    #[test]
    fn shard_msg_roundtrip() {
        let msgs = [
            ShardMsg::Chunk(Chunk {
                positions: vec![bat_geom::Vec3::ONE],
                attrs: vec![2.5],
                num_attrs: 1,
            }),
            ShardMsg::LeafDone { leaf: 4 },
            ShardMsg::Done { points: 12 },
            ShardMsg::Failed {
                code: ERR_INTERNAL,
                message: "boom".into(),
            },
        ];
        for m in msgs {
            let rt = ShardMsg::decode(&m.encode()).unwrap();
            match (&m, &rt) {
                (ShardMsg::Chunk(a), ShardMsg::Chunk(b)) => assert_eq!(a, b),
                (ShardMsg::LeafDone { leaf: a }, ShardMsg::LeafDone { leaf: b }) => {
                    assert_eq!(a, b)
                }
                (ShardMsg::Done { points: a }, ShardMsg::Done { points: b }) => assert_eq!(a, b),
                (
                    ShardMsg::Failed {
                        code: a,
                        message: am,
                    },
                    ShardMsg::Failed {
                        code: b,
                        message: bm,
                    },
                ) => {
                    assert_eq!(a, b);
                    assert_eq!(am, bm);
                }
                _ => panic!("variant changed in roundtrip"),
            }
        }
    }
}
