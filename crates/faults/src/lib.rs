//! Deterministic fault injection for the write/read pipeline.
//!
//! A *failpoint* is a named site in the code (`"write.leaf"`,
//! `"comm.send"`, …) where a configured fault can trigger. Sites are
//! compiled in only with the `failpoints` cargo feature; without it every
//! entry point here is an inline no-op, so hot paths and golden byte
//! hashes are untouched (the fast path with the feature *on* but no
//! faults configured is a single relaxed atomic load).
//!
//! Faults are configured programmatically ([`configure_site`]) or from the
//! `BAT_FAULTS` environment variable ([`init_from_env`], grammar below),
//! and trigger deterministically: a per-site hit counter (optionally
//! filtered to one rank) decides which hit fires. There is no randomness —
//! a given configuration fails the same way every run.
//!
//! ## `BAT_FAULTS` grammar
//!
//! ```text
//! BAT_FAULTS = spec *( ";" spec )
//! spec       = site "=" action [ ":" arg ] *( "@" key "=" value )
//! action     = "error" | "torn" | "kill" | "delay"
//! key        = "nth" | "every" | "rank" | "limit"
//! ```
//!
//! Examples:
//!
//! ```text
//! BAT_FAULTS="write.leaf=torn:4096@nth=1"      # 1st leaf write torn after 4 KiB
//! BAT_FAULTS="write.shuffle.recv=kill@rank=2"  # rank 2 dies entering the shuffle
//! BAT_FAULTS="comm.send=error@every=3@limit=2" # every 3rd send fails, twice
//! BAT_FAULTS="comm.recv=delay:50"              # every recv sleeps 50 ms first
//! ```
//!
//! Actions:
//! - `error` — the site reports an injected [`std::io::Error`].
//! - `torn:N` — a write site truncates after `N` bytes (see [`TornWriter`]).
//! - `kill` — the rank at the site "dies": it marks itself dead to the
//!   communicator and unwinds with an error, never completing the
//!   collective protocol. Survivors must rely on receive deadlines.
//! - `delay:MS` — the site sleeps `MS` milliseconds, then proceeds
//!   normally ([`fire`] performs the sleep itself and reports no fault).
//!
//! Every triggered fault increments the `faults.triggered` obs counter and
//! the process-wide [`triggered_total`].

use std::io;

/// A fault a site must act on. `Delay` is handled inside [`fire`] (the
/// sleep happens there), so call sites only ever see these three.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Fail the operation with an injected I/O error.
    Error,
    /// Truncate the write after this many bytes, then fail.
    Torn(u64),
    /// The rank dies here: mark it dead and abandon the protocol.
    Kill,
}

/// The action configured for a site (the four-verb surface of the
/// `BAT_FAULTS` grammar; `Delay` never escapes [`fire`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    Error,
    Torn(u64),
    Kill,
    Delay(u64),
}

/// The injected-error constructor every site uses, so tests and operators
/// can recognize injected failures by message.
pub fn injected_error(site: &str, what: &str) -> io::Error {
    io::Error::other(format!("injected fault at {site}: {what}"))
}

/// An `io::Write` adapter that forwards the first `n` bytes and then fails
/// every subsequent write — the on-disk effect of a crash mid-write.
pub struct TornWriter<W: io::Write> {
    inner: W,
    remaining: u64,
    site: &'static str,
}

impl<W: io::Write> TornWriter<W> {
    pub fn new(inner: W, after_bytes: u64, site: &'static str) -> TornWriter<W> {
        TornWriter {
            inner,
            remaining: after_bytes,
            site,
        }
    }
}

impl<W: io::Write> io::Write for TornWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.remaining == 0 {
            return Err(injected_error(self.site, "torn write"));
        }
        let take = buf.len().min(self.remaining as usize);
        let written = self.inner.write(&buf[..take])?;
        self.remaining -= written as u64;
        Ok(written)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(feature = "failpoints")]
mod imp {
    use super::{Fault, FaultAction};
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Mutex, OnceLock};

    #[derive(Debug, Clone)]
    struct FaultPoint {
        action: FaultAction,
        /// Fire only on the `nth` (1-based) hit.
        nth: Option<u64>,
        /// Fire on every `every`-th hit (ignored when `nth` is set).
        every: Option<u64>,
        /// Fire only on this rank (requires [`set_rank`] on the thread).
        rank: Option<u32>,
        /// Stop firing after this many triggers.
        limit: Option<u64>,
        hits: u64,
        fired: u64,
    }

    impl FaultPoint {
        fn should_fire(&mut self, current_rank: Option<usize>) -> bool {
            if let Some(r) = self.rank {
                if current_rank != Some(r as usize) {
                    return false;
                }
            }
            self.hits += 1;
            if let Some(limit) = self.limit {
                if self.fired >= limit {
                    return false;
                }
            }
            let due = match (self.nth, self.every) {
                (Some(n), _) => self.hits == n,
                (None, Some(k)) => k != 0 && self.hits.is_multiple_of(k),
                (None, None) => true,
            };
            if due {
                self.fired += 1;
            }
            due
        }
    }

    static ENABLED: AtomicBool = AtomicBool::new(false);
    static TRIGGERED: AtomicU64 = AtomicU64::new(0);

    fn registry() -> &'static Mutex<HashMap<String, FaultPoint>> {
        static REG: OnceLock<Mutex<HashMap<String, FaultPoint>>> = OnceLock::new();
        REG.get_or_init(|| Mutex::new(HashMap::new()))
    }

    thread_local! {
        static RANK: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
    }

    pub fn compiled() -> bool {
        true
    }

    pub fn enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    pub fn set_rank(rank: Option<usize>) {
        RANK.with(|r| r.set(rank));
    }

    pub fn current_rank() -> Option<usize> {
        RANK.with(|r| r.get())
    }

    pub fn reset() {
        ENABLED.store(false, Ordering::Relaxed);
        registry().lock().unwrap().clear();
    }

    pub fn configure_site(
        site: &str,
        action: FaultAction,
        nth: Option<u64>,
        every: Option<u64>,
        rank: Option<u32>,
        limit: Option<u64>,
    ) {
        registry().lock().unwrap().insert(
            site.to_string(),
            FaultPoint {
                action,
                nth,
                every,
                rank,
                limit,
                hits: 0,
                fired: 0,
            },
        );
        ENABLED.store(true, Ordering::Relaxed);
    }

    /// Parse one `site=action[:arg][@key=val]…` spec.
    fn parse_spec(spec: &str) -> Result<(), String> {
        let (site, rest) = spec
            .split_once('=')
            .ok_or_else(|| format!("fault spec {spec:?}: missing '='"))?;
        let mut parts = rest.split('@');
        let action_str = parts.next().unwrap_or("");
        let (verb, arg) = match action_str.split_once(':') {
            Some((v, a)) => (v, Some(a)),
            None => (action_str, None),
        };
        let num = |what: &str, s: Option<&str>| -> Result<u64, String> {
            s.ok_or_else(|| format!("fault spec {spec:?}: {what} needs a numeric argument"))?
                .parse::<u64>()
                .map_err(|_| format!("fault spec {spec:?}: bad {what} argument"))
        };
        let action = match verb {
            "error" => FaultAction::Error,
            "torn" => FaultAction::Torn(num("torn", arg)?),
            "kill" => FaultAction::Kill,
            "delay" => FaultAction::Delay(num("delay", arg)?),
            other => return Err(format!("fault spec {spec:?}: unknown action {other:?}")),
        };
        let (mut nth, mut every, mut rank, mut limit) = (None, None, None, None);
        for kv in parts {
            let (k, v) = kv
                .split_once('=')
                .ok_or_else(|| format!("fault spec {spec:?}: bad trigger {kv:?}"))?;
            let v: u64 = v
                .parse()
                .map_err(|_| format!("fault spec {spec:?}: bad value in {kv:?}"))?;
            match k {
                "nth" => nth = Some(v),
                "every" => every = Some(v),
                "rank" => rank = Some(v as u32),
                "limit" => limit = Some(v),
                other => return Err(format!("fault spec {spec:?}: unknown trigger {other:?}")),
            }
        }
        configure_site(site.trim(), action, nth, every, rank, limit);
        Ok(())
    }

    pub fn configure(specs: &str) -> Result<(), String> {
        for spec in specs.split(';') {
            let spec = spec.trim();
            if !spec.is_empty() {
                parse_spec(spec)?;
            }
        }
        Ok(())
    }

    /// Read `BAT_FAULTS` once per process; later calls are no-ops.
    pub fn init_from_env() {
        static INIT: OnceLock<()> = OnceLock::new();
        INIT.get_or_init(|| {
            if let Ok(spec) = std::env::var("BAT_FAULTS") {
                if let Err(e) = configure(&spec) {
                    eprintln!("warning: ignoring BAT_FAULTS: {e}");
                }
            }
        });
    }

    pub fn fire(site: &str) -> Option<Fault> {
        if !enabled() {
            return None;
        }
        let action = {
            let mut reg = registry().lock().unwrap();
            let point = reg.get_mut(site)?;
            if !point.should_fire(current_rank()) {
                return None;
            }
            point.action
        };
        TRIGGERED.fetch_add(1, Ordering::Relaxed);
        bat_obs::counter_add("faults.triggered", 1);
        match action {
            FaultAction::Error => Some(Fault::Error),
            FaultAction::Torn(n) => Some(Fault::Torn(n)),
            FaultAction::Kill => Some(Fault::Kill),
            FaultAction::Delay(ms) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                None
            }
        }
    }

    pub fn triggered_total() -> u64 {
        TRIGGERED.load(Ordering::Relaxed)
    }

    pub fn hits(site: &str) -> u64 {
        registry().lock().unwrap().get(site).map_or(0, |p| p.hits)
    }
}

#[cfg(not(feature = "failpoints"))]
mod imp {
    //! The production build: every entry point is an inline no-op the
    //! optimizer deletes, so instrumented call sites cost nothing.
    use super::{Fault, FaultAction};

    #[inline(always)]
    pub fn compiled() -> bool {
        false
    }

    #[inline(always)]
    pub fn enabled() -> bool {
        false
    }

    #[inline(always)]
    pub fn set_rank(_rank: Option<usize>) {}

    #[inline(always)]
    pub fn current_rank() -> Option<usize> {
        None
    }

    #[inline(always)]
    pub fn reset() {}

    #[inline(always)]
    pub fn configure_site(
        _site: &str,
        _action: FaultAction,
        _nth: Option<u64>,
        _every: Option<u64>,
        _rank: Option<u32>,
        _limit: Option<u64>,
    ) {
    }

    #[inline(always)]
    pub fn configure(_specs: &str) -> Result<(), String> {
        Err("bat-faults was built without the `failpoints` feature".into())
    }

    #[inline(always)]
    pub fn init_from_env() {}

    #[inline(always)]
    pub fn fire(_site: &str) -> Option<Fault> {
        None
    }

    #[inline(always)]
    pub fn triggered_total() -> u64 {
        0
    }

    #[inline(always)]
    pub fn hits(_site: &str) -> u64 {
        0
    }
}

pub use imp::{
    compiled, configure, configure_site, current_rank, enabled, fire, hits, init_from_env, reset,
    set_rank, triggered_total,
};

/// Fire a site whose only meaningful actions are `Error`/`Delay`; `Torn`
/// and `Kill` configured here degrade to a plain injected error.
pub fn fire_io(site: &str) -> io::Result<()> {
    match fire(site) {
        None => Ok(()),
        Some(Fault::Error) => Err(injected_error(site, "I/O error")),
        Some(Fault::Torn(_)) => Err(injected_error(site, "torn write")),
        Some(Fault::Kill) => Err(injected_error(site, "rank killed")),
    }
}

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;
    use std::sync::{Mutex, OnceLock};

    /// The registry is process-global; serialize tests that mutate it.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_registry_fires_nothing() {
        let _guard = serial();
        reset();
        assert!(!enabled());
        assert_eq!(fire("write.leaf"), None);
    }

    #[test]
    fn nth_trigger_fires_exactly_once() {
        let _guard = serial();
        reset();
        configure("write.leaf=error@nth=2").unwrap();
        assert_eq!(fire("write.leaf"), None);
        assert_eq!(fire("write.leaf"), Some(Fault::Error));
        assert_eq!(fire("write.leaf"), None);
        assert_eq!(hits("write.leaf"), 3);
        reset();
    }

    #[test]
    fn every_and_limit_compose() {
        let _guard = serial();
        reset();
        configure("comm.send=error@every=2@limit=2").unwrap();
        let fired: Vec<bool> = (0..8).map(|_| fire("comm.send").is_some()).collect();
        assert_eq!(
            fired,
            vec![false, true, false, true, false, false, false, false]
        );
        reset();
    }

    #[test]
    fn rank_filter_requires_matching_thread_rank() {
        let _guard = serial();
        reset();
        configure("write.shuffle.recv=kill@rank=2").unwrap();
        set_rank(Some(1));
        assert_eq!(fire("write.shuffle.recv"), None);
        set_rank(Some(2));
        assert_eq!(fire("write.shuffle.recv"), Some(Fault::Kill));
        set_rank(None);
        reset();
    }

    #[test]
    fn parse_errors_are_reported_not_panicked() {
        let _guard = serial();
        reset();
        assert!(configure("no-equals-sign").is_err());
        assert!(configure("site=explode").is_err());
        assert!(configure("site=torn").is_err()); // torn needs :N
        assert!(configure("site=error@nth=x").is_err());
        reset();
    }

    #[test]
    fn torn_writer_truncates_at_the_configured_byte() {
        use std::io::Write;
        let mut out = Vec::new();
        let mut w = TornWriter::new(&mut out, 10, "test.site");
        assert!(w.write_all(&[0xAB; 7]).is_ok());
        assert!(w.write_all(&[0xCD; 7]).is_err());
        assert_eq!(out.len(), 10);
    }
}
