//! C API for libbat (paper §III, §IV: "We provide a C API to ease
//! integration of our proposed I/O strategy into simulations written in a
//! range of programming languages").
//!
//! The interface follows the array-based attribute storage model of
//! HDF5/ADIOS/Silo, as the paper does: a write context accumulates named
//! attribute arrays plus positions, then a collective `bat_write` call runs
//! the two-phase pipeline. Reads come in two forms: the collective restart
//! read, and the single-process visualization query with a point callback
//! (mirroring §V: "The user also provides a callback that is called for
//! each point contained in the query").
//!
//! All functions return 0 on success and a negative error code otherwise;
//! out-parameters are written only on success. Handles are opaque pointers
//! owned by the library; every `*_create`/`*_open` has a matching
//! `*_destroy`/`*_close`.
//!
//! # Safety
//!
//! This is an FFI surface: callers must pass valid pointers and respect
//! handle lifetimes, exactly as with any C library. The Rust side checks
//! for NULL where possible and never unwinds across the boundary.

use bat_geom::{Aabb, Vec3};
use bat_layout::{AttributeDesc, AttributeType, BatFile, ParticleSet, Query};
use bat_wire::Block;
use libbat::write::{write_particles, WriteConfig};
use libbat::Dataset;
use std::ffi::{c_char, c_double, c_float, c_int, c_void, CStr};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Success.
pub const BAT_OK: c_int = 0;
/// A required pointer was NULL.
pub const BAT_ERR_NULL: c_int = -1;
/// A string was not valid UTF-8.
pub const BAT_ERR_UTF8: c_int = -2;
/// An I/O or decode error occurred.
pub const BAT_ERR_IO: c_int = -3;
/// An argument was out of range (bad attribute index, bad type tag...).
pub const BAT_ERR_ARG: c_int = -4;
/// A panic was caught at the boundary (a bug; report it).
pub const BAT_ERR_PANIC: c_int = -5;

/// Attribute type tag for `bat_writer_add_attribute`: 32-bit float.
pub const BAT_TYPE_F32: c_int = 0;
/// Attribute type tag for `bat_writer_add_attribute`: 64-bit float.
pub const BAT_TYPE_F64: c_int = 1;

fn guard(f: impl FnOnce() -> c_int) -> c_int {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(code) => code,
        Err(_) => BAT_ERR_PANIC,
    }
}

unsafe fn cstr<'a>(p: *const c_char) -> Result<&'a str, c_int> {
    if p.is_null() {
        return Err(BAT_ERR_NULL);
    }
    CStr::from_ptr(p).to_str().map_err(|_| BAT_ERR_UTF8)
}

// ---------------------------------------------------------------------------
// Write context
// ---------------------------------------------------------------------------

/// Opaque write context: schema + accumulated local particles.
pub struct BatWriter {
    descs: Vec<AttributeDesc>,
    set: Option<ParticleSet>,
    bounds: Aabb,
    target_bytes: u64,
}

/// Create a write context. Attributes are declared before pushing data.
///
/// # Safety
/// `out` must be a valid pointer to receive the handle.
#[no_mangle]
pub unsafe extern "C" fn bat_writer_create(out: *mut *mut BatWriter) -> c_int {
    guard(|| {
        if out.is_null() {
            return BAT_ERR_NULL;
        }
        let w = Box::new(BatWriter {
            descs: Vec::new(),
            set: None,
            bounds: Aabb::empty(),
            target_bytes: 0, // auto by default (§VII target-size selection)
        });
        *out = Box::into_raw(w);
        BAT_OK
    })
}

/// Declare an attribute (`BAT_TYPE_F32` or `BAT_TYPE_F64`). Must be called
/// before any `bat_writer_push`.
///
/// # Safety
/// `writer` must be a live handle; `name` a NUL-terminated string.
#[no_mangle]
pub unsafe extern "C" fn bat_writer_add_attribute(
    writer: *mut BatWriter,
    name: *const c_char,
    dtype: c_int,
) -> c_int {
    guard(|| {
        let Some(w) = writer.as_mut() else {
            return BAT_ERR_NULL;
        };
        if w.set.is_some() {
            return BAT_ERR_ARG; // schema is frozen once data arrives
        }
        let name = match cstr(name) {
            Ok(s) => s,
            Err(e) => return e,
        };
        let dtype = match dtype {
            0 => AttributeType::F32,
            1 => AttributeType::F64,
            _ => return BAT_ERR_ARG,
        };
        w.descs.push(AttributeDesc::new(name, dtype));
        BAT_OK
    })
}

/// Set this rank's bounds in the simulation domain.
///
/// # Safety
/// `writer` must be a live handle; `min`/`max` point to 3 floats each.
#[no_mangle]
pub unsafe extern "C" fn bat_writer_set_bounds(
    writer: *mut BatWriter,
    min: *const c_float,
    max: *const c_float,
) -> c_int {
    guard(|| {
        let Some(w) = writer.as_mut() else {
            return BAT_ERR_NULL;
        };
        if min.is_null() || max.is_null() {
            return BAT_ERR_NULL;
        }
        let mn = std::slice::from_raw_parts(min, 3);
        let mx = std::slice::from_raw_parts(max, 3);
        w.bounds = Aabb::new(
            Vec3::new(mn[0], mn[1], mn[2]),
            Vec3::new(mx[0], mx[1], mx[2]),
        );
        BAT_OK
    })
}

/// Set the target file size in bytes (0 = automatic, the default).
///
/// # Safety
/// `writer` must be a live handle.
#[no_mangle]
pub unsafe extern "C" fn bat_writer_set_target_size(writer: *mut BatWriter, bytes: u64) -> c_int {
    guard(|| {
        let Some(w) = writer.as_mut() else {
            return BAT_ERR_NULL;
        };
        w.target_bytes = bytes;
        BAT_OK
    })
}

/// Append `n` particles: `positions` is `n × 3` floats (xyzxyz...), and
/// `attrs` is one pointer per declared attribute to `n` doubles (values are
/// narrowed for f32 attributes).
///
/// # Safety
/// `writer` live; `positions` holds `3n` floats; `attrs` holds one valid
/// array pointer of `n` doubles per declared attribute.
#[no_mangle]
pub unsafe extern "C" fn bat_writer_push(
    writer: *mut BatWriter,
    n: usize,
    positions: *const c_float,
    attrs: *const *const c_double,
) -> c_int {
    guard(|| {
        let Some(w) = writer.as_mut() else {
            return BAT_ERR_NULL;
        };
        if n > 0 && positions.is_null() {
            return BAT_ERR_NULL;
        }
        if !w.descs.is_empty() && n > 0 && attrs.is_null() {
            return BAT_ERR_NULL;
        }
        let set = w
            .set
            .get_or_insert_with(|| ParticleSet::new(w.descs.clone()));
        let pos = std::slice::from_raw_parts(positions, 3 * n);
        let na = w.descs.len();
        let attr_ptrs: &[*const c_double] = if na > 0 {
            std::slice::from_raw_parts(attrs, na)
        } else {
            &[]
        };
        let mut values = vec![0.0f64; na];
        for i in 0..n {
            for (a, v) in values.iter_mut().enumerate() {
                let ptr = attr_ptrs[a];
                if ptr.is_null() {
                    return BAT_ERR_NULL;
                }
                *v = *ptr.add(i);
            }
            set.push(
                Vec3::new(pos[3 * i], pos[3 * i + 1], pos[3 * i + 2]),
                &values,
            );
        }
        BAT_OK
    })
}

/// Destroy a write context without writing.
///
/// # Safety
/// `writer` must be a handle from `bat_writer_create`, not yet destroyed.
#[no_mangle]
pub unsafe extern "C" fn bat_writer_destroy(writer: *mut BatWriter) {
    if !writer.is_null() {
        drop(Box::from_raw(writer));
    }
}

// ---------------------------------------------------------------------------
// Virtual cluster + collective write/read
// ---------------------------------------------------------------------------

/// Opaque per-rank communicator handle (wraps a `bat_comm::Comm` transport).
pub struct BatComm {
    comm: Box<dyn bat_comm::Comm>,
}

/// Run `ranks` virtual ranks; `body(rank, comm, user)` is invoked on each
/// rank thread with its communicator. This stands in for `MPI_Init` +
/// communicator plumbing on systems without MPI (see DESIGN.md §2).
///
/// # Safety
/// `body` must be a valid function pointer, safe to call from multiple
/// threads; `user` must be valid for the duration of the call on all
/// threads.
#[no_mangle]
pub unsafe extern "C" fn bat_cluster_run(
    ranks: usize,
    body: Option<extern "C" fn(rank: usize, comm: *mut BatComm, user: *mut c_void)>,
    user: *mut c_void,
) -> c_int {
    guard(|| {
        let Some(body) = body else {
            return BAT_ERR_NULL;
        };
        if ranks == 0 {
            return BAT_ERR_ARG;
        }
        struct SendPtr(*mut c_void);
        unsafe impl Send for SendPtr {}
        unsafe impl Sync for SendPtr {}
        let user = SendPtr(user);
        let user_ref = &user;
        bat_comm::Cluster::run(ranks, move |comm| {
            let rank = comm.rank();
            let mut handle = BatComm { comm };
            body(rank, &mut handle as *mut BatComm, user_ref.0);
        });
        BAT_OK
    })
}

/// Collectively write the accumulated particles of `writer` as dataset
/// `basename` in `dir`. Consumes the writer's data (the context can be
/// reused for the next timestep). `files_out` (optional) receives the leaf
/// file count.
///
/// # Safety
/// `comm` and `writer` live handles; `dir`/`basename` NUL-terminated.
#[no_mangle]
pub unsafe extern "C" fn bat_write(
    comm: *mut BatComm,
    writer: *mut BatWriter,
    dir: *const c_char,
    basename: *const c_char,
    files_out: *mut u64,
) -> c_int {
    guard(|| {
        let Some(c) = comm.as_mut() else {
            return BAT_ERR_NULL;
        };
        let Some(w) = writer.as_mut() else {
            return BAT_ERR_NULL;
        };
        let dir = match cstr(dir) {
            Ok(s) => s,
            Err(e) => return e,
        };
        let basename = match cstr(basename) {
            Ok(s) => s,
            Err(e) => return e,
        };
        let set = w
            .set
            .take()
            .unwrap_or_else(|| ParticleSet::new(w.descs.clone()));
        let bounds = if w.bounds.is_empty() {
            set.bounds()
        } else {
            w.bounds
        };
        let cfg = WriteConfig::with_target_size(w.target_bytes, set.bytes_per_particle() as u64);
        match write_particles(&*c.comm, set, bounds, &cfg, dir.as_ref(), basename) {
            Ok(report) => {
                if !files_out.is_null() {
                    *files_out = report.files as u64;
                }
                BAT_OK
            }
            Err(_) => BAT_ERR_IO,
        }
    })
}

/// Collectively read back every particle overlapping `[min, max]` from
/// dataset `basename` in `dir`. The result is delivered through `cb`, one
/// call per particle (positions as 3 floats, attributes widened to f64).
///
/// # Safety
/// `comm` live; strings NUL-terminated; `min`/`max` point to 3 floats; `cb`
/// valid; `user` valid for the duration of the call.
#[no_mangle]
pub unsafe extern "C" fn bat_read(
    comm: *mut BatComm,
    dir: *const c_char,
    basename: *const c_char,
    min: *const c_float,
    max: *const c_float,
    cb: Option<
        extern "C" fn(
            pos: *const c_float,
            attrs: *const c_double,
            n_attrs: usize,
            user: *mut c_void,
        ),
    >,
    user: *mut c_void,
) -> c_int {
    guard(|| {
        let Some(c) = comm.as_mut() else {
            return BAT_ERR_NULL;
        };
        let Some(cb) = cb else { return BAT_ERR_NULL };
        let dir = match cstr(dir) {
            Ok(s) => s,
            Err(e) => return e,
        };
        let basename = match cstr(basename) {
            Ok(s) => s,
            Err(e) => return e,
        };
        if min.is_null() || max.is_null() {
            return BAT_ERR_NULL;
        }
        let mn = std::slice::from_raw_parts(min, 3);
        let mx = std::slice::from_raw_parts(max, 3);
        let bounds = Aabb::new(
            Vec3::new(mn[0], mn[1], mn[2]),
            Vec3::new(mx[0], mx[1], mx[2]),
        );
        match libbat::read::read_particles(&*c.comm, bounds, dir.as_ref(), basename) {
            Ok(set) => {
                let na = set.num_attrs();
                let mut attrs = vec![0.0f64; na];
                for i in 0..set.len() {
                    let p = set.positions[i];
                    let pos = [p.x, p.y, p.z];
                    for (a, v) in attrs.iter_mut().enumerate() {
                        *v = set.value(a, i);
                    }
                    cb(pos.as_ptr(), attrs.as_ptr(), na, user);
                }
                BAT_OK
            }
            Err(_) => BAT_ERR_IO,
        }
    })
}

// ---------------------------------------------------------------------------
// Visualization reads (single process, no cluster)
// ---------------------------------------------------------------------------

/// Opaque dataset handle for postprocess visualization reads.
pub struct BatDataset {
    ds: Dataset,
}

/// Open dataset `basename` in `dir` for visualization queries.
///
/// # Safety
/// Strings NUL-terminated; `out` valid.
#[no_mangle]
pub unsafe extern "C" fn bat_dataset_open(
    dir: *const c_char,
    basename: *const c_char,
    out: *mut *mut BatDataset,
) -> c_int {
    guard(|| {
        if out.is_null() {
            return BAT_ERR_NULL;
        }
        let dir = match cstr(dir) {
            Ok(s) => s,
            Err(e) => return e,
        };
        let basename = match cstr(basename) {
            Ok(s) => s,
            Err(e) => return e,
        };
        match Dataset::open(dir, basename) {
            Ok(ds) => {
                *out = Box::into_raw(Box::new(BatDataset { ds }));
                BAT_OK
            }
            Err(_) => BAT_ERR_IO,
        }
    })
}

/// Total particle count of the dataset.
///
/// # Safety
/// `ds` live; `out` valid.
#[no_mangle]
pub unsafe extern "C" fn bat_dataset_num_particles(ds: *const BatDataset, out: *mut u64) -> c_int {
    guard(|| {
        let Some(d) = ds.as_ref() else {
            return BAT_ERR_NULL;
        };
        if out.is_null() {
            return BAT_ERR_NULL;
        }
        *out = d.ds.num_particles();
        BAT_OK
    })
}

/// Number of attributes in the schema.
///
/// # Safety
/// `ds` live; `out` valid.
#[no_mangle]
pub unsafe extern "C" fn bat_dataset_num_attributes(
    ds: *const BatDataset,
    out: *mut usize,
) -> c_int {
    guard(|| {
        let Some(d) = ds.as_ref() else {
            return BAT_ERR_NULL;
        };
        if out.is_null() {
            return BAT_ERR_NULL;
        }
        *out = d.ds.descs().len();
        BAT_OK
    })
}

/// One attribute range filter for [`bat_dataset_query`].
#[repr(C)]
pub struct BatFilter {
    /// Attribute index in the dataset schema.
    pub attr: usize,
    /// Inclusive lower bound.
    pub lo: c_double,
    /// Inclusive upper bound.
    pub hi: c_double,
}

/// Run a visualization query (paper §V): quality level in `[0, 1]`, a
/// previously loaded quality for progressive reads, an optional bounding
/// box (`min`/`max` may be NULL for the whole domain), and optional
/// attribute filters. `cb` is invoked per matching point.
///
/// # Safety
/// `ds` live; box pointers NULL or 3 floats; `filters` holds `n_filters`
/// entries; `cb` valid; `user` valid for the call.
#[no_mangle]
pub unsafe extern "C" fn bat_dataset_query(
    ds: *const BatDataset,
    quality: c_double,
    prev_quality: c_double,
    min: *const c_float,
    max: *const c_float,
    filters: *const BatFilter,
    n_filters: usize,
    cb: Option<
        extern "C" fn(
            pos: *const c_float,
            attrs: *const c_double,
            n_attrs: usize,
            user: *mut c_void,
        ),
    >,
    user: *mut c_void,
) -> c_int {
    guard(|| {
        let Some(d) = ds.as_ref() else {
            return BAT_ERR_NULL;
        };
        let Some(cb) = cb else { return BAT_ERR_NULL };
        let mut q = Query::new()
            .with_quality(quality)
            .with_prev_quality(prev_quality);
        if !min.is_null() && !max.is_null() {
            let mn = std::slice::from_raw_parts(min, 3);
            let mx = std::slice::from_raw_parts(max, 3);
            q = q.with_bounds(Aabb::new(
                Vec3::new(mn[0], mn[1], mn[2]),
                Vec3::new(mx[0], mx[1], mx[2]),
            ));
        }
        if n_filters > 0 {
            if filters.is_null() {
                return BAT_ERR_NULL;
            }
            for f in std::slice::from_raw_parts(filters, n_filters) {
                q = q.with_filter(f.attr, f.lo, f.hi);
            }
        }
        let result = d.ds.query(&q, |p| {
            let pos = [p.position.x, p.position.y, p.position.z];
            cb(pos.as_ptr(), p.attrs.as_ptr(), p.attrs.len(), user);
        });
        match result {
            Ok(_) => BAT_OK,
            Err(_) => BAT_ERR_IO,
        }
    })
}

/// Close a dataset handle.
///
/// # Safety
/// `ds` must be a handle from `bat_dataset_open`, not yet closed.
#[no_mangle]
pub unsafe extern "C" fn bat_dataset_close(ds: *mut BatDataset) {
    if !ds.is_null() {
        drop(Box::from_raw(ds));
    }
}

// ---------------------------------------------------------------------------
// Single-file in-memory reads (zero-copy over a caller-owned buffer)
// ---------------------------------------------------------------------------

/// A caller-owned byte range used as a [`bat_wire::Block`] backing. The
/// caller guarantees the buffer outlives the handle (see
/// [`bat_file_open_buffer`]), which makes the shared-reference reads sound.
struct ExternBuffer {
    ptr: *const u8,
    len: usize,
}

// SAFETY: the buffer is read-only for the lifetime of the handle and the
// caller keeps it alive and unmodified; shared reads from any thread are
// therefore safe.
unsafe impl Send for ExternBuffer {}
unsafe impl Sync for ExternBuffer {}

impl AsRef<[u8]> for ExternBuffer {
    fn as_ref(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        // SAFETY: upheld by the bat_file_open_buffer contract.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

/// Opaque handle to a single compacted BAT file viewed in place.
pub struct BatFileHandle {
    file: BatFile,
}

/// Open one compacted BAT file directly from memory, without copying:
/// queries read positions and attribute columns straight out of the
/// caller's buffer, exactly as the mmap-backed [`bat_dataset_open`] path
/// reads pages from disk. Use this to serve queries over a file received
/// from the network or embedded in another container format.
///
/// # Safety
/// `data` must point to `len` readable bytes that stay alive and unmodified
/// until [`bat_file_close`]; `out` must be a valid pointer.
#[no_mangle]
pub unsafe extern "C" fn bat_file_open_buffer(
    data: *const u8,
    len: usize,
    out: *mut *mut BatFileHandle,
) -> c_int {
    guard(|| {
        if out.is_null() || (len > 0 && data.is_null()) {
            return BAT_ERR_NULL;
        }
        let block = Block::from_arc(std::sync::Arc::new(ExternBuffer { ptr: data, len }));
        match BatFile::from_block(block) {
            Ok(file) => {
                *out = Box::into_raw(Box::new(BatFileHandle { file }));
                BAT_OK
            }
            Err(_) => BAT_ERR_IO,
        }
    })
}

/// Particle count of an in-memory BAT file.
///
/// # Safety
/// `f` live; `out` valid.
#[no_mangle]
pub unsafe extern "C" fn bat_file_num_particles(f: *const BatFileHandle, out: *mut u64) -> c_int {
    guard(|| {
        let Some(f) = f.as_ref() else {
            return BAT_ERR_NULL;
        };
        if out.is_null() {
            return BAT_ERR_NULL;
        }
        *out = f.file.num_particles();
        BAT_OK
    })
}

/// Run a visualization query against an in-memory BAT file. Parameters and
/// callback match [`bat_dataset_query`].
///
/// # Safety
/// `f` live; box pointers NULL or 3 floats; `filters` holds `n_filters`
/// entries; `cb` valid; `user` valid for the call.
#[no_mangle]
pub unsafe extern "C" fn bat_file_query(
    f: *const BatFileHandle,
    quality: c_double,
    prev_quality: c_double,
    min: *const c_float,
    max: *const c_float,
    filters: *const BatFilter,
    n_filters: usize,
    cb: Option<
        extern "C" fn(
            pos: *const c_float,
            attrs: *const c_double,
            n_attrs: usize,
            user: *mut c_void,
        ),
    >,
    user: *mut c_void,
) -> c_int {
    guard(|| {
        let Some(f) = f.as_ref() else {
            return BAT_ERR_NULL;
        };
        let Some(cb) = cb else { return BAT_ERR_NULL };
        let mut q = Query::new()
            .with_quality(quality)
            .with_prev_quality(prev_quality);
        if !min.is_null() && !max.is_null() {
            let mn = std::slice::from_raw_parts(min, 3);
            let mx = std::slice::from_raw_parts(max, 3);
            q = q.with_bounds(Aabb::new(
                Vec3::new(mn[0], mn[1], mn[2]),
                Vec3::new(mx[0], mx[1], mx[2]),
            ));
        }
        if n_filters > 0 {
            if filters.is_null() {
                return BAT_ERR_NULL;
            }
            for flt in std::slice::from_raw_parts(filters, n_filters) {
                q = q.with_filter(flt.attr, flt.lo, flt.hi);
            }
        }
        let result = f.file.query(&q, |p| {
            let pos = [p.position.x, p.position.y, p.position.z];
            cb(pos.as_ptr(), p.attrs.as_ptr(), p.attrs.len(), user);
        });
        match result {
            Ok(_) => BAT_OK,
            Err(_) => BAT_ERR_IO,
        }
    })
}

/// Close an in-memory file handle. The caller's buffer may be freed after
/// this returns.
///
/// # Safety
/// `f` must be a handle from `bat_file_open_buffer`, not yet closed.
#[no_mangle]
pub unsafe extern "C" fn bat_file_close(f: *mut BatFileHandle) {
    if !f.is_null() {
        drop(Box::from_raw(f));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::ffi::CString;

    struct Ctx {
        dir: CString,
        count: u64,
    }

    extern "C" fn count_cb(
        _pos: *const c_float,
        _attrs: *const c_double,
        n_attrs: usize,
        user: *mut c_void,
    ) {
        assert_eq!(n_attrs, 2);
        let ctx = unsafe { &mut *(user as *mut Ctx) };
        ctx.count += 1;
    }

    extern "C" fn rank_body(rank: usize, comm: *mut BatComm, user: *mut c_void) {
        let ctx = unsafe { &*(user as *const Ctx) };
        unsafe {
            let mut writer: *mut BatWriter = std::ptr::null_mut();
            assert_eq!(bat_writer_create(&mut writer), BAT_OK);
            let mass = CString::new("mass").unwrap();
            let temp = CString::new("temp").unwrap();
            assert_eq!(
                bat_writer_add_attribute(writer, mass.as_ptr(), BAT_TYPE_F64),
                BAT_OK
            );
            assert_eq!(
                bat_writer_add_attribute(writer, temp.as_ptr(), BAT_TYPE_F32),
                BAT_OK
            );

            // This rank's slab of the unit cube.
            let lo = rank as f32 * 0.25;
            let min = [lo, 0.0, 0.0];
            let max = [lo + 0.25, 1.0, 1.0];
            assert_eq!(
                bat_writer_set_bounds(writer, min.as_ptr(), max.as_ptr()),
                BAT_OK
            );

            // 100 particles strictly inside the slab.
            let n = 100;
            let mut positions = Vec::with_capacity(3 * n);
            let mut mass_v = Vec::with_capacity(n);
            let mut temp_v = Vec::with_capacity(n);
            for i in 0..n {
                let t = (i as f32 + 0.5) / n as f32;
                positions.extend_from_slice(&[lo + t * 0.25, t, 0.5]);
                mass_v.push(i as f64);
                temp_v.push(300.0 + i as f64);
            }
            let attr_ptrs = [mass_v.as_ptr(), temp_v.as_ptr()];
            assert_eq!(
                bat_writer_push(writer, n, positions.as_ptr(), attr_ptrs.as_ptr()),
                BAT_OK
            );

            let base = CString::new("capi").unwrap();
            let mut files = 0u64;
            assert_eq!(
                bat_write(comm, writer, ctx.dir.as_ptr(), base.as_ptr(), &mut files),
                BAT_OK
            );
            assert!(files >= 1);
            bat_writer_destroy(writer);

            // Collective read back of this rank's slab.
            let mut readback = Ctx {
                dir: ctx.dir.clone(),
                count: 0,
            };
            assert_eq!(
                bat_read(
                    comm,
                    ctx.dir.as_ptr(),
                    base.as_ptr(),
                    min.as_ptr(),
                    max.as_ptr(),
                    Some(count_cb),
                    &mut readback as *mut Ctx as *mut c_void,
                ),
                BAT_OK
            );
            assert_eq!(readback.count, 100, "rank {rank} restart");
        }
    }

    #[test]
    fn full_c_roundtrip() {
        let dir = std::env::temp_dir().join(format!("bat-capi-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ctx = Ctx {
            dir: CString::new(dir.to_str().unwrap()).unwrap(),
            count: 0,
        };
        unsafe {
            assert_eq!(
                bat_cluster_run(4, Some(rank_body), &ctx as *const Ctx as *mut c_void),
                BAT_OK
            );

            // Postprocess visualization query through the C dataset API.
            let base = CString::new("capi").unwrap();
            let mut ds: *mut BatDataset = std::ptr::null_mut();
            assert_eq!(
                bat_dataset_open(ctx.dir.as_ptr(), base.as_ptr(), &mut ds),
                BAT_OK
            );
            let mut total = 0u64;
            assert_eq!(bat_dataset_num_particles(ds, &mut total), BAT_OK);
            assert_eq!(total, 400);
            let mut na = 0usize;
            assert_eq!(bat_dataset_num_attributes(ds, &mut na), BAT_OK);
            assert_eq!(na, 2);

            // Full query.
            let mut counter = Ctx {
                dir: ctx.dir.clone(),
                count: 0,
            };
            assert_eq!(
                bat_dataset_query(
                    ds,
                    1.0,
                    0.0,
                    std::ptr::null(),
                    std::ptr::null(),
                    std::ptr::null(),
                    0,
                    Some(count_cb),
                    &mut counter as *mut Ctx as *mut c_void,
                ),
                BAT_OK
            );
            assert_eq!(counter.count, 400);

            // Filtered query: mass in [0, 49] on each rank → 50 × 4.
            let filter = BatFilter {
                attr: 0,
                lo: 0.0,
                hi: 49.0,
            };
            let mut counter = Ctx {
                dir: ctx.dir.clone(),
                count: 0,
            };
            assert_eq!(
                bat_dataset_query(
                    ds,
                    1.0,
                    0.0,
                    std::ptr::null(),
                    std::ptr::null(),
                    &filter,
                    1,
                    Some(count_cb),
                    &mut counter as *mut Ctx as *mut c_void,
                ),
                BAT_OK
            );
            assert_eq!(counter.count, 200);

            bat_dataset_close(ds);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn null_safety() {
        unsafe {
            assert_eq!(bat_writer_create(std::ptr::null_mut()), BAT_ERR_NULL);
            assert_eq!(
                bat_writer_add_attribute(std::ptr::null_mut(), std::ptr::null(), 0),
                BAT_ERR_NULL
            );
            let mut w: *mut BatWriter = std::ptr::null_mut();
            assert_eq!(bat_writer_create(&mut w), BAT_OK);
            assert_eq!(
                bat_writer_add_attribute(w, std::ptr::null(), 0),
                BAT_ERR_NULL
            );
            let name = CString::new("x").unwrap();
            assert_eq!(bat_writer_add_attribute(w, name.as_ptr(), 99), BAT_ERR_ARG);
            bat_writer_destroy(w);
            // Double-safe destroy of NULL.
            bat_writer_destroy(std::ptr::null_mut());
            bat_dataset_close(std::ptr::null_mut());
            // Opening a missing dataset is an IO error, not a crash.
            let dir = CString::new("/nonexistent-path").unwrap();
            let base = CString::new("nope").unwrap();
            let mut ds: *mut BatDataset = std::ptr::null_mut();
            assert_eq!(
                bat_dataset_open(dir.as_ptr(), base.as_ptr(), &mut ds),
                BAT_ERR_IO
            );
        }
    }

    extern "C" fn tally_cb(
        _pos: *const c_float,
        _attrs: *const c_double,
        _n_attrs: usize,
        user: *mut c_void,
    ) {
        unsafe { *(user as *mut u64) += 1 };
    }

    #[test]
    fn in_memory_file_query_is_zero_copy_over_caller_bytes() {
        use bat_layout::{BatBuilder, BatConfig};
        let mut set = ParticleSet::new(vec![AttributeDesc::f64("m")]);
        let n = 500usize;
        for i in 0..n {
            let t = (i as f32 + 0.5) / n as f32;
            set.push(Vec3::new(t, 1.0 - t, 0.5), &[i as f64]);
        }
        let bytes = BatBuilder::new(BatConfig::default())
            .build(set, Aabb::unit())
            .to_bytes();
        unsafe {
            let mut f: *mut BatFileHandle = std::ptr::null_mut();
            assert_eq!(
                bat_file_open_buffer(bytes.as_ptr(), bytes.len(), &mut f),
                BAT_OK
            );
            let mut total = 0u64;
            assert_eq!(bat_file_num_particles(f, &mut total), BAT_OK);
            assert_eq!(total, n as u64);
            let mut count = 0u64;
            assert_eq!(
                bat_file_query(
                    f,
                    1.0,
                    0.0,
                    std::ptr::null(),
                    std::ptr::null(),
                    std::ptr::null(),
                    0,
                    Some(tally_cb),
                    &mut count as *mut u64 as *mut c_void,
                ),
                BAT_OK
            );
            assert_eq!(count, n as u64);
            // A filter that halves the ids halves the hits.
            let filter = BatFilter {
                attr: 0,
                lo: 0.0,
                hi: (n / 2 - 1) as f64,
            };
            let mut count = 0u64;
            assert_eq!(
                bat_file_query(
                    f,
                    1.0,
                    0.0,
                    std::ptr::null(),
                    std::ptr::null(),
                    &filter,
                    1,
                    Some(tally_cb),
                    &mut count as *mut u64 as *mut c_void,
                ),
                BAT_OK
            );
            assert_eq!(count, (n / 2) as u64);
            bat_file_close(f);

            // Truncated/corrupt buffers fail cleanly with BAT_ERR_IO.
            let mut bad: *mut BatFileHandle = std::ptr::null_mut();
            assert_eq!(
                bat_file_open_buffer(bytes.as_ptr(), 10, &mut bad),
                BAT_ERR_IO
            );
            assert_eq!(
                bat_file_open_buffer(std::ptr::null(), 8, &mut bad),
                BAT_ERR_NULL
            );
            assert_eq!(
                bat_file_open_buffer(std::ptr::null(), 0, &mut bad),
                BAT_ERR_IO
            );
            bat_file_close(std::ptr::null_mut());
        }
    }

    #[test]
    fn schema_frozen_after_push() {
        unsafe {
            let mut w: *mut BatWriter = std::ptr::null_mut();
            assert_eq!(bat_writer_create(&mut w), BAT_OK);
            let name = CString::new("a").unwrap();
            assert_eq!(
                bat_writer_add_attribute(w, name.as_ptr(), BAT_TYPE_F64),
                BAT_OK
            );
            let pos = [0.5f32, 0.5, 0.5];
            let vals = [1.0f64];
            let ptrs = [vals.as_ptr()];
            assert_eq!(bat_writer_push(w, 1, pos.as_ptr(), ptrs.as_ptr()), BAT_OK);
            // Adding attributes after data exists must fail.
            let late = CString::new("late").unwrap();
            assert_eq!(
                bat_writer_add_attribute(w, late.as_ptr(), BAT_TYPE_F64),
                BAT_ERR_ARG
            );
            bat_writer_destroy(w);
        }
    }
}
