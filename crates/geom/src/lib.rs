//! Geometry primitives shared across the libbat workspace.
//!
//! This crate provides the small, dependency-free building blocks used by the
//! aggregation tree, the Binned Attribute Tree layout, and the workload
//! generators:
//!
//! - [`Vec3`]: a 3-component `f32` vector (particle positions are single
//!   precision, matching the paper's data model of three single-precision
//!   coordinates per particle).
//! - [`Aabb`]: axis-aligned bounding boxes with the split/partition helpers
//!   required by k-d tree construction.
//! - [`morton`]: 63-bit (21 bits per axis) Morton codes used by the
//!   Karras-style bottom-up shallow-tree build.
//! - [`rng`]: small deterministic PRNGs (SplitMix64, xoshiro256**) so every
//!   workload, sample, and test in the workspace is reproducible without
//!   external dependencies.
//! - [`sampling`]: the stratified sampling used to pick LOD particles for
//!   treelet inner nodes (paper §III-C2).

pub mod aabb;
pub mod morton;
pub mod rng;
pub mod sampling;
pub mod vec3;

pub use aabb::Aabb;
pub use vec3::{Axis, Vec3};
