//! 3-component single-precision vector and spatial axis labels.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Index, IndexMut, Mul, Neg, Sub};

/// One of the three spatial axes. Used to label k-d tree split planes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Axis {
    /// The x axis.
    X = 0,
    /// The y axis.
    Y = 1,
    /// The z axis.
    Z = 2,
}

impl Axis {
    /// All axes in order, for iteration over candidate split axes.
    pub const ALL: [Axis; 3] = [Axis::X, Axis::Y, Axis::Z];

    /// Convert a `0..3` index to an axis. Panics on out-of-range input.
    #[inline]
    pub fn from_index(i: usize) -> Axis {
        match i {
            0 => Axis::X,
            1 => Axis::Y,
            2 => Axis::Z,
            _ => panic!("axis index out of range: {i}"),
        }
    }

    /// The `0..3` index of this axis.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Axis::X => write!(f, "x"),
            Axis::Y => write!(f, "y"),
            Axis::Z => write!(f, "z"),
        }
    }
}

/// A 3-component `f32` vector.
///
/// Particle positions in the paper's data model are three single-precision
/// floats; all spatial bookkeeping in the workspace uses this type.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// x component.
    pub x: f32,
    /// y component.
    pub y: f32,
    /// z component.
    pub z: f32,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    /// All components one.
    pub const ONE: Vec3 = Vec3 {
        x: 1.0,
        y: 1.0,
        z: 1.0,
    };

    /// Construct from components.
    #[inline]
    pub const fn new(x: f32, y: f32, z: f32) -> Vec3 {
        Vec3 { x, y, z }
    }

    /// All three components set to `v`.
    #[inline]
    pub const fn splat(v: f32) -> Vec3 {
        Vec3 { x: v, y: v, z: v }
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.min(o.x), self.y.min(o.y), self.z.min(o.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.max(o.x), self.y.max(o.y), self.z.max(o.z))
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, o: Vec3) -> f32 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Euclidean length.
    #[inline]
    pub fn length(self) -> f32 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean length (avoids the sqrt when comparing distances).
    #[inline]
    pub fn length_squared(self) -> f32 {
        self.dot(self)
    }

    /// The axis along which the vector has its largest component.
    #[inline]
    pub fn largest_axis(self) -> Axis {
        if self.x >= self.y && self.x >= self.z {
            Axis::X
        } else if self.y >= self.z {
            Axis::Y
        } else {
            Axis::Z
        }
    }

    /// Component-wise clamp of each component into `[lo, hi]`.
    #[inline]
    pub fn clamp(self, lo: Vec3, hi: Vec3) -> Vec3 {
        self.max(lo).min(hi)
    }

    /// True when every component is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// View as a fixed-size array (x, y, z).
    #[inline]
    pub fn to_array(self) -> [f32; 3] {
        [self.x, self.y, self.z]
    }

    /// Build from a fixed-size array (x, y, z).
    #[inline]
    pub fn from_array(a: [f32; 3]) -> Vec3 {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl Index<Axis> for Vec3 {
    type Output = f32;
    #[inline]
    fn index(&self, a: Axis) -> &f32 {
        match a {
            Axis::X => &self.x,
            Axis::Y => &self.y,
            Axis::Z => &self.z,
        }
    }
}

impl IndexMut<Axis> for Vec3 {
    #[inline]
    fn index_mut(&mut self, a: Axis) -> &mut f32 {
        match a {
            Axis::X => &mut self.x,
            Axis::Y => &mut self.y,
            Axis::Z => &mut self.z,
        }
    }
}

impl Index<usize> for Vec3 {
    type Output = f32;
    #[inline]
    fn index(&self, i: usize) -> &f32 {
        self.index(Axis::from_index(i))
    }
}

impl IndexMut<usize> for Vec3 {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f32 {
        self.index_mut(Axis::from_index(i))
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl Mul<f32> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f32) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f32 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl Mul<Vec3> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x * o.x, self.y * o.y, self.z * o.z)
    }
}

impl Div<f32> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f32) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Div<Vec3> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x / o.x, self.y / o.y, self.z / o.z)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_roundtrip() {
        for i in 0..3 {
            assert_eq!(Axis::from_index(i).index(), i);
        }
    }

    #[test]
    #[should_panic]
    fn axis_out_of_range_panics() {
        let _ = Axis::from_index(3);
    }

    #[test]
    fn arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(b / 2.0, Vec3::new(2.0, 2.5, 3.0));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
        assert_eq!(a.dot(b), 32.0);
        assert_eq!(a * b, Vec3::new(4.0, 10.0, 18.0));
        assert_eq!(b / a, Vec3::new(4.0, 2.5, 2.0));
    }

    #[test]
    fn min_max_clamp() {
        let a = Vec3::new(1.0, 5.0, 3.0);
        let b = Vec3::new(2.0, 4.0, 3.0);
        assert_eq!(a.min(b), Vec3::new(1.0, 4.0, 3.0));
        assert_eq!(a.max(b), Vec3::new(2.0, 5.0, 3.0));
        assert_eq!(
            Vec3::new(-1.0, 0.5, 9.0).clamp(Vec3::ZERO, Vec3::ONE),
            Vec3::new(0.0, 0.5, 1.0)
        );
    }

    #[test]
    fn largest_axis_picks_dominant_component() {
        assert_eq!(Vec3::new(3.0, 1.0, 2.0).largest_axis(), Axis::X);
        assert_eq!(Vec3::new(1.0, 3.0, 2.0).largest_axis(), Axis::Y);
        assert_eq!(Vec3::new(1.0, 2.0, 3.0).largest_axis(), Axis::Z);
        // Ties break toward the earlier axis, deterministically.
        assert_eq!(Vec3::splat(1.0).largest_axis(), Axis::X);
    }

    #[test]
    fn indexing() {
        let mut v = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(v[Axis::Y], 2.0);
        assert_eq!(v[2], 3.0);
        v[Axis::Z] = 7.0;
        assert_eq!(v.z, 7.0);
        v[0] = -1.0;
        assert_eq!(v.x, -1.0);
    }

    #[test]
    fn length() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(v.length(), 5.0);
        assert_eq!(v.length_squared(), 25.0);
    }

    #[test]
    fn array_roundtrip() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(Vec3::from_array(v.to_array()), v);
    }

    #[test]
    fn finiteness() {
        assert!(Vec3::ONE.is_finite());
        assert!(!Vec3::new(f32::NAN, 0.0, 0.0).is_finite());
        assert!(!Vec3::new(0.0, f32::INFINITY, 0.0).is_finite());
    }
}
