//! Axis-aligned bounding boxes.

use crate::vec3::{Axis, Vec3};

/// An axis-aligned bounding box `[min, max]` (inclusive on both ends).
///
/// Rank bounds, aggregation-tree node bounds, treelet node bounds, and query
/// boxes are all `Aabb`s. An *empty* box (as produced by [`Aabb::empty`]) has
/// `min > max` and unions as the identity element.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    /// Minimum corner.
    pub min: Vec3,
    /// Maximum corner.
    pub max: Vec3,
}

impl Aabb {
    /// The empty box: identity for [`Aabb::union`], contains nothing.
    #[inline]
    pub fn empty() -> Aabb {
        Aabb {
            min: Vec3::splat(f32::INFINITY),
            max: Vec3::splat(f32::NEG_INFINITY),
        }
    }

    /// Box spanning `min..=max`. Does not require `min <= max`; degenerate
    /// input is allowed and treated as empty by [`Aabb::is_empty`].
    #[inline]
    pub const fn new(min: Vec3, max: Vec3) -> Aabb {
        Aabb { min, max }
    }

    /// The unit cube `[0,1]^3`.
    #[inline]
    pub const fn unit() -> Aabb {
        Aabb::new(Vec3::ZERO, Vec3::ONE)
    }

    /// True when the box contains no points (some `min > max`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y || self.min.z > self.max.z
    }

    /// Smallest box containing both operands.
    #[inline]
    pub fn union(&self, o: &Aabb) -> Aabb {
        Aabb::new(self.min.min(o.min), self.max.max(o.max))
    }

    /// Grow to include a point.
    #[inline]
    pub fn extend(&mut self, p: Vec3) {
        self.min = self.min.min(p);
        self.max = self.max.max(p);
    }

    /// Intersection of two boxes (may be empty).
    #[inline]
    pub fn intersection(&self, o: &Aabb) -> Aabb {
        Aabb::new(self.min.max(o.min), self.max.min(o.max))
    }

    /// True when the point lies inside (inclusive bounds).
    #[inline]
    pub fn contains_point(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// True when `o` is entirely inside `self` (inclusive).
    #[inline]
    pub fn contains_box(&self, o: &Aabb) -> bool {
        !o.is_empty()
            && self.min.x <= o.min.x
            && self.min.y <= o.min.y
            && self.min.z <= o.min.z
            && self.max.x >= o.max.x
            && self.max.y >= o.max.y
            && self.max.z >= o.max.z
    }

    /// True when the boxes share any point (inclusive touch counts).
    #[inline]
    pub fn overlaps(&self, o: &Aabb) -> bool {
        !self.is_empty()
            && !o.is_empty()
            && self.min.x <= o.max.x
            && self.max.x >= o.min.x
            && self.min.y <= o.max.y
            && self.max.y >= o.min.y
            && self.min.z <= o.max.z
            && self.max.z >= o.min.z
    }

    /// Box center.
    #[inline]
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// Per-axis extent (`max - min`), zero vector for empty boxes.
    #[inline]
    pub fn extent(&self) -> Vec3 {
        if self.is_empty() {
            Vec3::ZERO
        } else {
            self.max - self.min
        }
    }

    /// The axis with the largest extent — the k-d split axis heuristic used
    /// by both the aggregation tree and treelet builds (paper §III-A, §III-C2).
    #[inline]
    pub fn longest_axis(&self) -> Axis {
        self.extent().largest_axis()
    }

    /// Volume of the box; zero when empty.
    #[inline]
    pub fn volume(&self) -> f64 {
        let e = self.extent();
        e.x as f64 * e.y as f64 * e.z as f64
    }

    /// Surface area of the box; zero when empty.
    #[inline]
    pub fn surface_area(&self) -> f64 {
        let e = self.extent();
        2.0 * (e.x as f64 * e.y as f64 + e.y as f64 * e.z as f64 + e.z as f64 * e.x as f64)
    }

    /// Split at `pos` along `axis`, returning `(left, right)` half-boxes.
    /// `pos` is clamped into the box's range on that axis.
    #[inline]
    pub fn split(&self, axis: Axis, pos: f32) -> (Aabb, Aabb) {
        let pos = pos.clamp(self.min[axis], self.max[axis]);
        let mut left = *self;
        let mut right = *self;
        left.max[axis] = pos;
        right.min[axis] = pos;
        (left, right)
    }

    /// Normalize a point into `[0,1]^3` relative to this box. Degenerate axes
    /// (zero extent) map to 0.5 so all such points share a Morton cell.
    #[inline]
    pub fn normalize(&self, p: Vec3) -> Vec3 {
        let e = self.extent();
        let f = |v: f32, lo: f32, ext: f32| {
            if ext > 0.0 {
                ((v - lo) / ext).clamp(0.0, 1.0)
            } else {
                0.5
            }
        };
        Vec3::new(
            f(p.x, self.min.x, e.x),
            f(p.y, self.min.y, e.y),
            f(p.z, self.min.z, e.z),
        )
    }

    /// Smallest box containing a set of points; empty for an empty slice.
    pub fn from_points(points: &[Vec3]) -> Aabb {
        let mut b = Aabb::empty();
        for &p in points {
            b.extend(p);
        }
        b
    }
}

impl Default for Aabb {
    fn default() -> Aabb {
        Aabb::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_behaves_as_identity() {
        let e = Aabb::empty();
        assert!(e.is_empty());
        let b = Aabb::new(Vec3::ZERO, Vec3::ONE);
        assert_eq!(e.union(&b), b);
        assert_eq!(b.union(&e), b);
        assert!(!e.overlaps(&b));
        assert!(!b.overlaps(&e));
        assert_eq!(e.volume(), 0.0);
        assert_eq!(e.extent(), Vec3::ZERO);
    }

    #[test]
    fn union_and_extend() {
        let mut b = Aabb::empty();
        b.extend(Vec3::new(1.0, -1.0, 0.0));
        b.extend(Vec3::new(-1.0, 2.0, 3.0));
        assert_eq!(b.min, Vec3::new(-1.0, -1.0, 0.0));
        assert_eq!(b.max, Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn containment() {
        let b = Aabb::new(Vec3::ZERO, Vec3::splat(2.0));
        assert!(b.contains_point(Vec3::ONE));
        assert!(b.contains_point(Vec3::ZERO)); // inclusive
        assert!(b.contains_point(Vec3::splat(2.0))); // inclusive
        assert!(!b.contains_point(Vec3::splat(2.1)));
        assert!(b.contains_box(&Aabb::new(Vec3::splat(0.5), Vec3::ONE)));
        assert!(!b.contains_box(&Aabb::new(Vec3::splat(0.5), Vec3::splat(3.0))));
        assert!(!b.contains_box(&Aabb::empty()));
    }

    #[test]
    fn overlap_inclusive_touch() {
        let a = Aabb::new(Vec3::ZERO, Vec3::ONE);
        let b = Aabb::new(Vec3::new(1.0, 0.0, 0.0), Vec3::new(2.0, 1.0, 1.0));
        let c = Aabb::new(Vec3::new(1.5, 0.0, 0.0), Vec3::new(2.0, 1.0, 1.0));
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert_eq!(a.intersection(&b).volume(), 0.0);
        assert!(a.intersection(&c).is_empty());
    }

    #[test]
    fn split_halves() {
        let b = Aabb::new(Vec3::ZERO, Vec3::splat(4.0));
        let (l, r) = b.split(Axis::Y, 1.0);
        assert_eq!(l.max.y, 1.0);
        assert_eq!(r.min.y, 1.0);
        assert_eq!(l.min, b.min);
        assert_eq!(r.max, b.max);
        // Out-of-range positions clamp.
        let (l2, _) = b.split(Axis::X, -5.0);
        assert_eq!(l2.max.x, 0.0);
    }

    #[test]
    fn longest_axis() {
        let b = Aabb::new(Vec3::ZERO, Vec3::new(1.0, 5.0, 2.0));
        assert_eq!(b.longest_axis(), Axis::Y);
    }

    #[test]
    fn normalize_maps_into_unit_cube() {
        let b = Aabb::new(Vec3::new(-2.0, 0.0, 10.0), Vec3::new(2.0, 4.0, 10.0));
        let n = b.normalize(Vec3::new(0.0, 1.0, 10.0));
        assert_eq!(n, Vec3::new(0.5, 0.25, 0.5)); // degenerate z -> 0.5
                                                  // Out-of-bounds points clamp.
        let n2 = b.normalize(Vec3::new(100.0, -5.0, 10.0));
        assert_eq!(n2.x, 1.0);
        assert_eq!(n2.y, 0.0);
    }

    #[test]
    fn from_points() {
        let pts = [Vec3::new(1.0, 2.0, 3.0), Vec3::new(-1.0, 0.0, 5.0)];
        let b = Aabb::from_points(&pts);
        assert_eq!(b.min, Vec3::new(-1.0, 0.0, 3.0));
        assert_eq!(b.max, Vec3::new(1.0, 2.0, 5.0));
        assert!(Aabb::from_points(&[]).is_empty());
    }

    #[test]
    fn measures() {
        let b = Aabb::new(Vec3::ZERO, Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(b.volume(), 6.0);
        assert_eq!(b.surface_area(), 22.0);
        assert_eq!(b.center(), Vec3::new(0.5, 1.0, 1.5));
    }
}
