//! Stratified sampling used to select LOD particles (paper §III-C2).
//!
//! When a treelet inner node is created, a fixed number of representative
//! particles is *set aside* from the node's particle range — no duplication,
//! no synthesized representatives. Stratified selection (one pick per equal
//! stratum of the Morton-sorted range) keeps the coarse subset spatially
//! spread across the node.

use crate::rng::SplitMix64;

/// Choose `k` indices from `0..n` by stratified sampling: the range is cut
/// into `k` equal strata and one index is drawn uniformly from each.
///
/// Returns the indices in ascending order. When `k >= n`, returns all of
/// `0..n` (every element is its own stratum).
pub fn stratified_indices(n: usize, k: usize, rng: &mut SplitMix64) -> Vec<usize> {
    if k == 0 || n == 0 {
        return Vec::new();
    }
    if k >= n {
        return (0..n).collect();
    }
    let mut out = Vec::with_capacity(k);
    for s in 0..k {
        // Stratum s covers [s*n/k, (s+1)*n/k).
        let lo = s * n / k;
        let hi = (s + 1) * n / k;
        debug_assert!(hi > lo);
        let pick = lo + rng.next_below((hi - lo) as u64) as usize;
        out.push(pick);
    }
    out
}

/// Partition `items` in place so the elements at `selected` (ascending,
/// unique) occupy the front `selected.len()` positions, preserving the
/// relative order of the selected elements. Returns the number moved.
///
/// Treelet construction uses this to carve each inner node's LOD particles
/// off the front of its range before recursing on the remainder.
pub fn partition_selected<T>(items: &mut [T], selected: &[usize]) -> usize {
    debug_assert!(selected.windows(2).all(|w| w[0] < w[1]));
    debug_assert!(selected.last().is_none_or(|&l| l < items.len()));
    for (dst, &src) in selected.iter().enumerate() {
        items.swap(dst, src);
    }
    selected.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cases() {
        let mut rng = SplitMix64::new(1);
        assert!(stratified_indices(0, 4, &mut rng).is_empty());
        assert!(stratified_indices(10, 0, &mut rng).is_empty());
    }

    #[test]
    fn oversample_returns_all() {
        let mut rng = SplitMix64::new(1);
        assert_eq!(stratified_indices(3, 8, &mut rng), vec![0, 1, 2]);
        assert_eq!(stratified_indices(3, 3, &mut rng), vec![0, 1, 2]);
    }

    #[test]
    fn one_pick_per_stratum() {
        let mut rng = SplitMix64::new(42);
        let n = 1000;
        let k = 10;
        let picks = stratified_indices(n, k, &mut rng);
        assert_eq!(picks.len(), k);
        for (s, &p) in picks.iter().enumerate() {
            assert!(
                p >= s * n / k && p < (s + 1) * n / k,
                "stratum {s} pick {p}"
            );
        }
        // Ascending and unique follow from the strata being disjoint.
        assert!(picks.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn uneven_strata_all_nonempty() {
        let mut rng = SplitMix64::new(7);
        // 7 into 3 strata: sizes 2,3,2 — all valid.
        let picks = stratified_indices(7, 3, &mut rng);
        assert_eq!(picks.len(), 3);
        assert!(picks.windows(2).all(|w| w[0] < w[1]));
        assert!(picks.iter().all(|&p| p < 7));
    }

    #[test]
    fn partition_moves_selected_to_front() {
        let mut v: Vec<i32> = (0..10).collect();
        let sel = [1, 4, 7];
        let k = partition_selected(&mut v, &sel);
        assert_eq!(k, 3);
        assert_eq!(&v[..3], &[1, 4, 7]);
        // Remainder is a permutation of the unselected elements.
        let mut rest: Vec<i32> = v[3..].to_vec();
        rest.sort();
        assert_eq!(rest, vec![0, 2, 3, 5, 6, 8, 9]);
    }

    #[test]
    fn partition_selected_at_front_is_noop() {
        let mut v: Vec<i32> = (0..5).collect();
        partition_selected(&mut v, &[0, 1]);
        assert_eq!(v, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn sampling_is_deterministic() {
        let a = stratified_indices(500, 16, &mut SplitMix64::new(99));
        let b = stratified_indices(500, 16, &mut SplitMix64::new(99));
        assert_eq!(a, b);
    }
}
