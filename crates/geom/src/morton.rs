//! 63-bit Morton (Z-order) codes: 21 bits per axis, interleaved x-y-z.
//!
//! The BAT shallow tree (paper §III-C1) sorts particles by Morton code and
//! runs Karras's bottom-up radix-tree construction over the sorted codes. We
//! use 21 bits per axis so the full code fits a `u64` with the top bit clear,
//! which also gives the radix build a sentinel-free 63-bit key space.

use crate::aabb::Aabb;
use crate::vec3::Vec3;

/// Bits of resolution per axis.
pub const BITS_PER_AXIS: u32 = 21;

/// Total significant bits in a code (`3 * BITS_PER_AXIS`).
pub const CODE_BITS: u32 = 3 * BITS_PER_AXIS;

/// Number of cells per axis (`2^21`).
pub const GRID_DIM: u32 = 1 << BITS_PER_AXIS;

/// Spread the lower 21 bits of `v` so each lands 3 positions apart.
///
/// Standard magic-number bit spreading for 21-bit inputs.
#[inline]
pub fn expand_bits(v: u32) -> u64 {
    let mut x = v as u64 & 0x1f_ffff; // 21 bits
    x = (x | (x << 32)) & 0x1f00000000ffff;
    x = (x | (x << 16)) & 0x1f0000ff0000ff;
    x = (x | (x << 8)) & 0x100f00f00f00f00f;
    x = (x | (x << 4)) & 0x10c30c30c30c30c3;
    x = (x | (x << 2)) & 0x1249249249249249;
    x
}

/// Inverse of [`expand_bits`]: collect every third bit back into 21 bits.
#[inline]
pub fn compact_bits(mut x: u64) -> u32 {
    x &= 0x1249249249249249;
    x = (x ^ (x >> 2)) & 0x10c30c30c30c30c3;
    x = (x ^ (x >> 4)) & 0x100f00f00f00f00f;
    x = (x ^ (x >> 8)) & 0x1f0000ff0000ff;
    x = (x ^ (x >> 16)) & 0x1f00000000ffff;
    x = (x ^ (x >> 32)) & 0x1f_ffff;
    x as u32
}

/// Interleave three 21-bit grid coordinates into a 63-bit Morton code.
///
/// Bit layout (LSB first): x0 y0 z0 x1 y1 z1 ... so the *most significant*
/// interleaved bit belongs to x, matching the k-d interpretation where the
/// first split is on x.
#[inline]
pub fn encode_grid(x: u32, y: u32, z: u32) -> u64 {
    debug_assert!(x < GRID_DIM && y < GRID_DIM && z < GRID_DIM);
    (expand_bits(x) << 2) | (expand_bits(y) << 1) | expand_bits(z)
}

/// Recover the three 21-bit grid coordinates from a Morton code.
#[inline]
pub fn decode_grid(code: u64) -> (u32, u32, u32) {
    (
        compact_bits(code >> 2),
        compact_bits(code >> 1),
        compact_bits(code),
    )
}

/// Quantize a point in `bounds` to 21-bit grid coordinates.
#[inline]
pub fn quantize(p: Vec3, bounds: &Aabb) -> (u32, u32, u32) {
    let n = bounds.normalize(p);
    let q = |v: f32| -> u32 {
        // Scale into [0, GRID_DIM) with the top edge mapping into the last cell.
        let s = (v as f64 * GRID_DIM as f64) as u64;
        (s.min(GRID_DIM as u64 - 1)) as u32
    };
    (q(n.x), q(n.y), q(n.z))
}

/// Morton code of a point relative to `bounds`.
#[inline]
pub fn encode_point(p: Vec3, bounds: &Aabb) -> u64 {
    let (x, y, z) = quantize(p, bounds);
    encode_grid(x, y, z)
}

/// Center of the grid cell a code names, mapped back into `bounds`.
pub fn cell_center(code: u64, bounds: &Aabb) -> Vec3 {
    let (x, y, z) = decode_grid(code);
    let e = bounds.extent();
    let f = |c: u32, lo: f32, ext: f32| lo + ((c as f32 + 0.5) / GRID_DIM as f32) * ext;
    Vec3::new(
        f(x, bounds.min.x, e.x),
        f(y, bounds.min.y, e.y),
        f(z, bounds.min.z, e.z),
    )
}

/// The `bits`-long most-significant subprefix of a code, right-aligned.
///
/// The shallow tree (paper §III-C1) is built over merged subprefixes; 12 bits
/// is the paper's default.
#[inline]
pub fn subprefix(code: u64, bits: u32) -> u64 {
    debug_assert!(bits <= CODE_BITS);
    if bits == 0 {
        0
    } else {
        code >> (CODE_BITS - bits)
    }
}

/// The axis-aligned box covered by a subprefix of `bits` bits inside the
/// normalized unit cube of `bounds`.
///
/// Each bit of the prefix halves the box along successive axes (x, y, z, x,
/// ...), exactly the k-d interpretation of the radix tree.
pub fn subprefix_bounds(prefix: u64, bits: u32, bounds: &Aabb) -> Aabb {
    let mut b = *bounds;
    for i in 0..bits {
        let bit = (prefix >> (bits - 1 - i)) & 1;
        let axis = crate::vec3::Axis::from_index((i % 3) as usize);
        let mid = 0.5 * (b.min[axis] + b.max[axis]);
        if bit == 0 {
            b.max[axis] = mid;
        } else {
            b.min[axis] = mid;
        }
    }
    b
}

/// Sort `codes` (with parallel payload `idx`) by code. Stable, out of place.
///
/// Returns the permutation applied, i.e. `perm[i]` is the original index of
/// the element now at position `i`.
pub fn sort_by_code(codes: &mut Vec<u64>) -> Vec<u32> {
    let n = codes.len();
    let mut perm: Vec<u32> = (0..n as u32).collect();
    perm.sort_by_key(|&i| codes[i as usize]);
    let sorted: Vec<u64> = perm.iter().map(|&i| codes[i as usize]).collect();
    *codes = sorted;
    perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    #[test]
    fn expand_compact_roundtrip() {
        for v in [0u32, 1, 2, 0x15_5555, 0x0a_aaaa, 0x1f_ffff] {
            assert_eq!(compact_bits(expand_bits(v)), v);
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..1000 {
            let x = (rng.next_u64() % GRID_DIM as u64) as u32;
            let y = (rng.next_u64() % GRID_DIM as u64) as u32;
            let z = (rng.next_u64() % GRID_DIM as u64) as u32;
            assert_eq!(decode_grid(encode_grid(x, y, z)), (x, y, z));
        }
    }

    #[test]
    fn top_bit_clear() {
        let c = encode_grid(GRID_DIM - 1, GRID_DIM - 1, GRID_DIM - 1);
        assert_eq!(c >> CODE_BITS, 0);
        assert_eq!(c, (1u64 << CODE_BITS) - 1);
    }

    #[test]
    fn x_is_most_significant() {
        // A point in the right half (x high) must compare greater than any
        // point in the left half, regardless of y/z.
        let right = encode_grid(GRID_DIM / 2, 0, 0);
        let left = encode_grid(GRID_DIM / 2 - 1, GRID_DIM - 1, GRID_DIM - 1);
        assert!(right > left);
    }

    #[test]
    fn quantize_edges() {
        let b = Aabb::unit();
        assert_eq!(quantize(Vec3::ZERO, &b), (0, 0, 0));
        let (x, y, z) = quantize(Vec3::ONE, &b);
        assert_eq!((x, y, z), (GRID_DIM - 1, GRID_DIM - 1, GRID_DIM - 1));
    }

    #[test]
    fn cell_center_within_bounds() {
        let b = Aabb::new(Vec3::new(-1.0, 0.0, 2.0), Vec3::new(3.0, 1.0, 4.0));
        let mut rng = SplitMix64::new(3);
        for _ in 0..100 {
            let p = Vec3::new(
                -1.0 + 4.0 * rng.next_f32(),
                rng.next_f32(),
                2.0 + 2.0 * rng.next_f32(),
            );
            let c = encode_point(p, &b);
            let q = cell_center(c, &b);
            assert!(b.contains_point(q));
            // The cell center must be close to the original point.
            assert!((q - p).length() < 1e-3, "{q:?} vs {p:?}");
        }
    }

    #[test]
    fn morton_order_respects_space() {
        // Points sharing a half-space on x sort together at the top level.
        let b = Aabb::unit();
        let lo = encode_point(Vec3::new(0.25, 0.9, 0.9), &b);
        let hi = encode_point(Vec3::new(0.75, 0.1, 0.1), &b);
        assert!(lo < hi);
    }

    #[test]
    fn subprefix_extraction() {
        let c = encode_grid(GRID_DIM - 1, 0, 0);
        // x bits are at positions 62, 59, 56... so the top 3 bits are 100.
        assert_eq!(subprefix(c, 3), 0b100);
        assert_eq!(subprefix(c, 0), 0);
        assert_eq!(subprefix(c, CODE_BITS), c);
    }

    #[test]
    fn subprefix_bounds_nest() {
        let b = Aabb::unit();
        let p = Vec3::new(0.8, 0.3, 0.6);
        let code = encode_point(p, &b);
        let mut prev = b;
        for bits in 1..=12 {
            let sb = subprefix_bounds(subprefix(code, bits), bits, &b);
            assert!(prev.contains_box(&sb), "bits={bits}");
            assert!(sb.contains_point(p), "bits={bits}");
            prev = sb;
        }
    }

    #[test]
    fn sort_by_code_returns_permutation() {
        let mut codes = vec![5u64, 1, 9, 3];
        let perm = sort_by_code(&mut codes);
        assert_eq!(codes, vec![1, 3, 5, 9]);
        assert_eq!(perm, vec![1, 3, 0, 2]);
    }
}
