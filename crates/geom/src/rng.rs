//! Small deterministic PRNGs.
//!
//! Every random choice in the workspace — workload generation, LOD stratified
//! sampling, benchmark data — must be reproducible across runs and platforms,
//! so we implement SplitMix64 and xoshiro256** from their reference
//! definitions instead of depending on an external RNG whose stream may
//! change between versions.

/// SplitMix64: tiny, fast, passes BigCrush; ideal for seeding and for
/// low-volume sampling decisions.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seed the generator.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform integer in `[0, n)`. `n` must be nonzero.
    #[inline]
    pub fn next_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift; bias is negligible for n << 2^64 and irrelevant for
        // workload generation.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// xoshiro256**: the general-purpose generator used by workload generators
/// that draw many values.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seed via SplitMix64, per the reference implementation's advice.
    pub fn new(seed: u64) -> Xoshiro256 {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256 {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform `f32` in `[lo, hi)`.
    #[inline]
    pub fn uniform_f32(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.next_f32()
    }

    /// Uniform integer in `[0, n)`. `n` must be nonzero.
    #[inline]
    pub fn next_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Standard normal via Box-Muller (one value per call; simple and exact
    /// enough for turbulence/jitter models).
    pub fn normal(&mut self) -> f64 {
        loop {
            let u1 = self.next_f64();
            if u1 > 1e-300 {
                let u2 = self.next_f64();
                return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            }
        }
    }

    /// Normal with the given mean and standard deviation.
    #[inline]
    pub fn normal_with(&mut self, mean: f64, stddev: f64) -> f64 {
        mean + stddev * self.normal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // First outputs for seed 0 from the public reference implementation.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xe220a8397b1dcdaf);
        assert_eq!(r.next_u64(), 0x6e789e6aa1b965f4);
        assert_eq!(r.next_u64(), 0x06c45d188009454f);
    }

    #[test]
    fn deterministic_streams() {
        let mut a = Xoshiro256::new(42);
        let mut b = Xoshiro256::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Xoshiro256::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = Xoshiro256::new(1);
        for _ in 0..10_000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
            let g = r.next_f32();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = Xoshiro256::new(5);
        for _ in 0..10_000 {
            let v = r.uniform(-3.0, 7.0);
            assert!((-3.0..7.0).contains(&v));
        }
    }

    #[test]
    fn next_below_in_range_and_covers() {
        let mut r = Xoshiro256::new(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.next_below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn normal_moments() {
        let mut r = Xoshiro256::new(11);
        let n = 100_000;
        let mut sum = 0.0;
        let mut sq = 0.0;
        for _ in 0..n {
            let v = r.normal();
            sum += v;
            sq += v * v;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }
}
